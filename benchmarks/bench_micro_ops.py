"""Micro-benchmarks for the store's hot paths.

Not tied to a paper claim — these are the operational numbers a downstream
adopter asks about first: ingest throughput, materialization cost,
point-in-time join cost, online read/write rates, and index build/query
costs. pytest-benchmark reports ops/sec for each.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clock import SimClock
from repro.core import (
    ColumnRef,
    Feature,
    FeatureSetSpec,
    FeatureStore,
    FeatureView,
    WindowAggregate,
)
from repro.datagen import RideEventConfig, generate_ride_events
from repro.index import HNSWIndex, IVFFlatIndex
from repro.storage import TableSchema

N_EVENTS = 20_000
N_ENTITIES = 500


@pytest.fixture(scope="module")
def events():
    return generate_ride_events(
        RideEventConfig(n_events=N_EVENTS, n_entities=N_ENTITIES, n_days=3), seed=0
    )


@pytest.fixture(scope="module")
def loaded_store(events):
    store = FeatureStore(clock=SimClock())
    store.create_source_table(
        "rides",
        TableSchema(columns={"trip_km": "float", "fare": "float",
                             "rating": "float", "wait_minutes": "float",
                             "city": "int", "vehicle_type": "int"}),
    )
    store.register_entity("driver")
    store.ingest("rides", events.rows())
    store.publish_view(
        FeatureView(
            name="stats",
            source_table="rides",
            entity="driver",
            features=(
                Feature("last_fare", "float", ColumnRef("fare")),
                Feature("fare_24h", "float", WindowAggregate("fare", "sum", 86400.0)),
            ),
            cadence=3600.0,
        )
    )
    for day in (1, 2, 3):
        store.materialize("stats", as_of=day * 86400.0)
    store.create_feature_set(
        FeatureSetSpec(name="fs", features=("stats:last_fare", "stats:fare_24h"))
    )
    return store


def test_micro_ingest_1k_rows(benchmark, events):
    rows = events.rows()[:1000]
    counter = {"n": 0}

    def setup():
        store = FeatureStore(clock=SimClock())
        store.create_source_table(
            "rides",
            TableSchema(columns={"trip_km": "float", "fare": "float",
                                 "rating": "float", "wait_minutes": "float",
                                 "city": "int", "vehicle_type": "int"}),
        )
        counter["n"] += 1
        return (store,), {}

    def ingest(store):
        return store.ingest("rides", rows)

    result = benchmark.pedantic(ingest, setup=setup, rounds=10)
    assert result == 1000


def test_micro_materialize_full(benchmark, loaded_store):
    active_entities = len(loaded_store.offline.table("rides").entity_ids())
    result = benchmark(
        loaded_store.materialize, "stats", 3 * 86400.0 + 1.0
    )
    # Zipfian activity: some of the N_ENTITIES drivers never had an event.
    assert result.entities_written == active_entities


def test_micro_pit_join_100_labels(benchmark, loaded_store):
    rng = np.random.default_rng(0)
    labels = [
        (int(e), float(t), 1.0)
        for e, t in zip(
            rng.integers(0, N_ENTITIES, size=100),
            rng.uniform(86400.0, 3 * 86400.0, size=100),
        )
    ]
    training = benchmark(loaded_store.build_training_set, labels, "fs")
    assert len(training) == 100


def test_micro_online_write(benchmark, loaded_store):
    namespace = loaded_store.registry.view("stats").online_namespace
    benchmark(
        loaded_store.online.write, namespace, 1, {"last_fare": 1.0}, 1e9
    )


def test_micro_online_read(benchmark, loaded_store):
    [got] = benchmark(loaded_store.get_online_features, "stats", [5])
    assert got is not None


def test_micro_ivf_build_5k(benchmark):
    rng = np.random.default_rng(0)
    vectors = rng.normal(size=(5000, 32))

    def build():
        index = IVFFlatIndex(n_cells=64, n_probes=4, seed=0)
        index.build(vectors)
        return index

    index = benchmark(build)
    assert index.size == 5000


def test_micro_hnsw_query(benchmark):
    rng = np.random.default_rng(0)
    vectors = rng.normal(size=(5000, 32))
    index = HNSWIndex(m=8, ef_construction=64, ef_search=48, seed=0)
    index.build(vectors)
    result = benchmark(index.query, vectors[0], 10)
    assert result.ids[0] == 0


# -- telemetry overhead -------------------------------------------------------
#
# The unified runtime routes every plane's metrics through one
# MetricsRegistry. The facades hold direct references to their primitives
# (the registry lookup happens once, at construction), so the steady-state
# cost is the primitive itself; the numbers below quantify what a facade
# would pay if it looked its series up per call instead — the design
# argument for caching the handle.

_N_OPS = 200_000


def _ns_per_op(fn, n=_N_OPS):
    import time as _time

    start = _time.perf_counter()
    fn(n)
    return (_time.perf_counter() - start) / n * 1e9


def test_micro_metrics_overhead(report):
    import json
    import pathlib

    from repro.runtime import Counter, LatencyHistogram, MetricsRegistry

    registry = MetricsRegistry()
    raw_counter = Counter()
    cached = registry.counter("bench_ops_total", plane="serving")
    histogram = registry.histogram("bench_latency_seconds")

    def loop_raw(n):
        inc = raw_counter.inc
        for __ in range(n):
            inc()

    def loop_cached(n):
        inc = cached.inc
        for __ in range(n):
            inc()

    def loop_lookup(n):
        counter = registry.counter
        for __ in range(n):
            counter("bench_ops_total", plane="serving").inc()

    def loop_histogram(n):
        record = histogram.record
        for __ in range(n):
            record(0.000123)

    def loop_snapshot(n):
        for __ in range(max(n // 1000, 1)):
            registry.snapshot()

    results = {
        "raw_counter_inc_ns": _ns_per_op(loop_raw),
        "registry_cached_inc_ns": _ns_per_op(loop_cached),
        "registry_lookup_inc_ns": _ns_per_op(loop_lookup),
        "histogram_record_ns": _ns_per_op(loop_histogram),
        "registry_snapshot_us": _ns_per_op(loop_snapshot, n=max(_N_OPS // 1000, 1))
        / 1000.0,
        "n_ops": _N_OPS,
    }

    report.line("telemetry overhead (one op = one metric update)")
    report.line()
    report.table(
        ["variant", "ns/op"],
        [
            ["raw Counter.inc", results["raw_counter_inc_ns"]],
            ["registry-cached inc", results["registry_cached_inc_ns"]],
            ["lookup-per-call inc", results["registry_lookup_inc_ns"]],
            ["histogram record", results["histogram_record_ns"]],
        ],
        width=22,
    )
    report.line()
    report.line(
        f"registry.snapshot() with {len(registry)} series: "
        f"{results['registry_snapshot_us']:.1f} us"
    )

    out = pathlib.Path(__file__).parent / "results" / "BENCH_telemetry_overhead.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")

    # The cached path must not regress to lookup-per-call territory: the
    # registry indirection is construction-time only.
    assert results["registry_cached_inc_ns"] < results["registry_lookup_inc_ns"]
    # Histogram record is O(1) (log-bucket math, one lock): same order of
    # magnitude as a counter bump, not a per-sample allocation.
    assert results["histogram_record_ns"] < results["raw_counter_inc_ns"] * 40
