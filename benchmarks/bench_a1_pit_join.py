"""A1 (ablation) — point-in-time joins vs naive latest-value joins.

DESIGN.md calls point-in-time correctness a load-bearing design decision:
"training joins must never see feature values from the future". This
ablation quantifies what the naive alternative costs.

Protocol: a feature is *leaky* — after a label's event time it becomes
almost perfectly informative about that label (the label causally updates
the feature), while before the label time it is only weakly informative.
The naive join reads each entity's latest materialized value regardless of
label time; the point-in-time join reads the latest value at-or-before the
label. We compare offline (training-time) accuracy against what the model
actually achieves at serving time, when the future is genuinely unavailable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clock import SimClock
from repro.core import ColumnRef, Feature, FeatureSetSpec, FeatureStore, FeatureView
from repro.models import LogisticRegression
from repro.storage import TableSchema

N_ENTITIES = 800
LABEL_TIME = 1000.0
SERVE_TIME = 3000.0


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(0)
    store = FeatureStore(clock=SimClock())
    store.create_source_table("signals", TableSchema(columns={"score": "float"}))
    store.register_entity("user")
    store.publish_view(
        FeatureView(
            name="signals_view",
            source_table="signals",
            entity="user",
            features=(Feature("score", "float", ColumnRef("score")),),
            cadence=100.0,
        )
    )

    labels = rng.integers(0, 2, size=N_ENTITIES)
    # Before the label: weak signal. After: the label leaks into the score.
    before = labels * 0.6 + rng.normal(0.0, 1.0, size=N_ENTITIES)
    after = labels * 4.0 + rng.normal(0.0, 0.3, size=N_ENTITIES)
    rows = []
    for entity in range(N_ENTITIES):
        rows.append({"entity_id": entity, "timestamp": 500.0,
                     "score": float(before[entity])})
        rows.append({"entity_id": entity, "timestamp": 2000.0,
                     "score": float(after[entity])})
    store.ingest("signals", rows)
    store.materialize("signals_view", as_of=600.0)    # pre-label snapshot
    store.materialize("signals_view", as_of=2500.0)   # post-label snapshot
    store.create_feature_set(
        FeatureSetSpec(name="fs", features=("signals_view:score",))
    )
    return store, labels, before


def naive_latest_join(store, entities):
    """The leaky join: latest materialized value, label time ignored."""
    view = store.registry.view("signals_view")
    table = store.offline.table(view.materialized_table)
    out = np.empty(len(entities))
    for i, entity in enumerate(entities):
        row = table.latest_before(int(entity), float("inf"))
        out[i] = float(row["score"])
    return out.reshape(-1, 1)


def test_a1_pit_vs_naive_join(benchmark, world, report):
    store, labels, before = world
    entities = np.arange(N_ENTITIES)
    label_rows = [(int(e), LABEL_TIME, float(labels[e])) for e in entities]

    benchmark(store.build_training_set, label_rows, "fs")

    # Training matrices under the two join semantics.
    pit = store.build_training_set(label_rows, "fs").features
    naive = naive_latest_join(store, entities)

    cut = N_ENTITIES // 2
    y = labels.astype(np.int64)
    pit_model = LogisticRegression(epochs=200).fit(pit[:cut], y[:cut])
    naive_model = LogisticRegression(epochs=200).fit(naive[:cut], y[:cut])

    pit_offline = float(np.mean(pit_model.predict(pit[cut:]) == y[cut:]))
    naive_offline = float(np.mean(naive_model.predict(naive[cut:]) == y[cut:]))

    # At serving time, the *future relative to the label* does not exist
    # yet for new entities: both models receive pre-label-style features.
    serving = before.reshape(-1, 1)
    pit_online = float(np.mean(pit_model.predict(serving[cut:]) == y[cut:]))
    naive_online = float(np.mean(naive_model.predict(serving[cut:]) == y[cut:]))

    report.line("A1: point-in-time join vs naive latest-value join")
    report.table(
        ["join", "offline_acc", "online_acc", "gap"],
        [
            ["point-in-time", pit_offline, pit_online, pit_offline - pit_online],
            ["naive latest", naive_offline, naive_online,
             naive_offline - naive_online],
        ],
        width=16,
    )
    report.line("the naive join's offline estimate is fiction: the leaked "
                "future evaporates at serving time")

    # Naive looks great offline (leakage), PIT is honest.
    assert naive_offline > pit_offline + 0.15
    # But online reality: PIT holds its estimate; naive collapses.
    assert abs(pit_offline - pit_online) < 0.08
    assert naive_offline - naive_online > 0.15
    assert pit_online >= naive_online - 0.02
