"""Feature-set selection and repair.

Paper section 2.2.3: "Once an error is discovered, engineers can use the FS
metrics to detect the offending set of features and select a more optimal
feature set for serving (or retraining)." Two tools built on the store's
own quality metrics:

* :func:`select_features_mrmr` — greedy maximum-relevance /
  minimum-redundancy selection using the store's mutual-information metric
  (relevance = MI with the label, redundancy = MI with already-selected
  features).
* :func:`exclude_offending_features` — given a training/serving skew
  report, return the feature subset that is still trustworthy at serving
  time, so a model can be retrained without the drifted inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ValidationError
from repro.quality.metrics import mutual_information

if TYPE_CHECKING:  # pragma: no cover - annotation only (avoids a cycle:
    # monitoring.skew itself imports repro.quality.profile)
    from repro.monitoring import SkewReport


@dataclass(frozen=True)
class SelectionResult:
    """Ranked feature selection with per-step scores."""

    selected: tuple[int, ...]
    relevance: dict[int, float]
    scores: tuple[float, ...]

    def names(self, feature_names: list[str]) -> list[str]:
        return [feature_names[i] for i in self.selected]


def rank_features_by_relevance(
    features: np.ndarray, labels: np.ndarray, bins: int = 10
) -> dict[int, float]:
    """Mutual information of every feature column with the label."""
    if features.ndim != 2 or len(features) != len(labels):
        raise ValidationError(
            f"bad shapes: features {features.shape}, labels {np.shape(labels)}"
        )
    labels = np.asarray(labels, dtype=np.int64)
    return {
        j: mutual_information(features[:, j], labels, bins=bins)
        for j in range(features.shape[1])
    }


def select_features_mrmr(
    features: np.ndarray,
    labels: np.ndarray,
    k: int,
    bins: int = 10,
    redundancy_weight: float = 1.0,
) -> SelectionResult:
    """Greedy mRMR: maximize MI(feature, label) − mean MI(feature, selected).

    Picks ``k`` columns. The first pick is the most label-relevant feature;
    each later pick trades relevance against redundancy with the already
    selected set, so near-duplicate features are not selected twice.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1 ({k=})")
    if redundancy_weight < 0:
        raise ValidationError(f"redundancy_weight must be >= 0 ({redundancy_weight=})")
    relevance = rank_features_by_relevance(features, labels, bins=bins)
    n_features = features.shape[1]
    k = min(k, n_features)

    selected: list[int] = []
    scores: list[float] = []
    remaining = set(range(n_features))
    pairwise: dict[tuple[int, int], float] = {}

    def redundancy(candidate: int) -> float:
        if not selected:
            return 0.0
        total = 0.0
        for chosen in selected:
            key = (min(candidate, chosen), max(candidate, chosen))
            if key not in pairwise:
                pairwise[key] = mutual_information(
                    features[:, key[0]], features[:, key[1]], bins=bins
                )
            total += pairwise[key]
        return total / len(selected)

    for __ in range(k):
        best, best_score = None, -np.inf
        for candidate in sorted(remaining):
            score = relevance[candidate] - redundancy_weight * redundancy(candidate)
            if score > best_score:
                best, best_score = candidate, score
        assert best is not None
        selected.append(best)
        scores.append(best_score)
        remaining.discard(best)

    return SelectionResult(
        selected=tuple(selected), relevance=relevance, scores=tuple(scores)
    )


def exclude_offending_features(
    feature_names: list[str], skew_report: SkewReport
) -> tuple[list[str], list[str]]:
    """Split features into ``(trustworthy, offending)`` using a skew report.

    Features absent from the report are considered trustworthy (they were
    not monitored, or serving produced no window for them).
    """
    offending = set(skew_report.skewed_columns)
    keep = [name for name in feature_names if name not in offending]
    dropped = [name for name in feature_names if name in offending]
    if not keep:
        raise ValidationError(
            "every feature is skewed; retraining needs at least one "
            "trustworthy input"
        )
    return keep, dropped
