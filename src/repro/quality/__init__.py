"""Feature quality metrics.

Paper section 2.2.2: "FSs must support feature quality metrics to support
the detection and mitigation of feature errors. For example, FSs measure
feature freshness, null counts, and mutual information across features."

* :mod:`repro.quality.metrics` — the individual metric functions.
* :mod:`repro.quality.profile` — column profiles and profile comparison
  (the inputs to training/serving skew checks).
"""

from repro.quality.feature_selection import (
    SelectionResult,
    exclude_offending_features,
    rank_features_by_relevance,
    select_features_mrmr,
)
from repro.quality.metrics import (
    categorical_entropy,
    distribution_summary,
    freshness_seconds,
    mutual_information,
    null_count,
    null_fraction,
)
from repro.quality.profile import ColumnProfile, TableProfile, profile_table

__all__ = [
    "ColumnProfile",
    "SelectionResult",
    "TableProfile",
    "categorical_entropy",
    "distribution_summary",
    "exclude_offending_features",
    "freshness_seconds",
    "mutual_information",
    "null_count",
    "null_fraction",
    "profile_table",
    "rank_features_by_relevance",
    "select_features_mrmr",
]
