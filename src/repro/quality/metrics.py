"""Individual feature quality metrics.

Conventions: numeric columns are float arrays with ``NaN`` as NULL;
categorical columns are integer arrays with ``-1`` as NULL (matching
:mod:`repro.datagen.tabular` and the offline store's ``column_array``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.storage.offline import OfflineTable


def _null_mask(values: np.ndarray) -> np.ndarray:
    if values.dtype.kind == "f":
        return np.isnan(values)
    if values.dtype.kind in "iu":
        return values == -1
    return np.array([v is None for v in values])


def null_count(values: np.ndarray) -> int:
    """Number of NULL entries in a column."""
    return int(_null_mask(values).sum())


def null_fraction(values: np.ndarray) -> float:
    """Fraction of NULL entries (0.0 for an empty column)."""
    if len(values) == 0:
        return 0.0
    return float(_null_mask(values).mean())


def freshness_seconds(
    table: OfflineTable, now: float, entity_ids: list[int] | None = None
) -> dict[int, float]:
    """Per-entity feature freshness: seconds since each entity's last event.

    Entities with no events are omitted. This is the "feature freshness"
    metric the paper names; the monitoring layer alerts when it exceeds the
    view's cadence by a configured factor.
    """
    entities = entity_ids if entity_ids is not None else table.entity_ids()
    out: dict[int, float] = {}
    for entity_id in entities:
        latest = table.latest_before(entity_id, now)
        if latest is not None:
            out[entity_id] = now - float(latest["timestamp"])  # type: ignore[arg-type]
    return out


@dataclass(frozen=True)
class DistributionSummary:
    """Moment and quantile summary of a numeric column (NULLs excluded)."""

    count: int
    null_fraction: float
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float


def distribution_summary(values: np.ndarray) -> DistributionSummary:
    """Summarize a numeric column. Raises if no non-NULL values exist."""
    finite = values[~_null_mask(values)].astype(float)
    if len(finite) == 0:
        raise ValidationError("cannot summarize a column with no non-null values")
    q25, q50, q75 = np.quantile(finite, [0.25, 0.5, 0.75])
    return DistributionSummary(
        count=int(len(finite)),
        null_fraction=null_fraction(values),
        mean=float(finite.mean()),
        std=float(finite.std()),
        minimum=float(finite.min()),
        p25=float(q25),
        median=float(q50),
        p75=float(q75),
        maximum=float(finite.max()),
    )


def _discretize(values: np.ndarray, bins: int) -> np.ndarray:
    """Quantile-bin a numeric column into integer codes (NULLs -> -1)."""
    mask = _null_mask(values)
    codes = np.full(len(values), -1, dtype=np.int64)
    finite = values[~mask].astype(float)
    if len(finite) == 0:
        return codes
    edges = np.quantile(finite, np.linspace(0, 1, bins + 1)[1:-1])
    codes[~mask] = np.digitize(finite, np.unique(edges))
    return codes


def mutual_information(
    x: np.ndarray, y: np.ndarray, bins: int = 10
) -> float:
    """Mutual information (nats) between two columns.

    Numeric columns are quantile-binned into ``bins`` codes first;
    categorical (integer) columns are used as-is. Rows where either value is
    NULL are dropped. Returns 0.0 when fewer than 2 joint observations
    remain.

    The paper lists "mutual information across features" as a core feature
    quality metric: near-zero MI against the label flags dead features, and
    near-maximal MI between two features flags redundancy.
    """
    if len(x) != len(y):
        raise ValidationError(f"length mismatch: {len(x)} vs {len(y)}")
    if bins < 2:
        raise ValidationError(f"bins must be >= 2 ({bins=})")

    cx = _discretize(x, bins) if x.dtype.kind == "f" else x.astype(np.int64)
    cy = _discretize(y, bins) if y.dtype.kind == "f" else y.astype(np.int64)
    keep = (cx >= 0) & (cy >= 0)
    cx, cy = cx[keep], cy[keep]
    if len(cx) < 2:
        return 0.0

    x_codes, cx = np.unique(cx, return_inverse=True)
    y_codes, cy = np.unique(cy, return_inverse=True)
    joint = np.zeros((len(x_codes), len(y_codes)))
    np.add.at(joint, (cx, cy), 1.0)
    joint /= joint.sum()
    px = joint.sum(axis=1, keepdims=True)
    py = joint.sum(axis=0, keepdims=True)
    nonzero = joint > 0
    mi = float(np.sum(joint[nonzero] * np.log(joint[nonzero] / (px @ py)[nonzero])))
    return max(0.0, mi)


def categorical_entropy(values: np.ndarray) -> float:
    """Shannon entropy (nats) of a categorical column, NULLs excluded.

    A collapse in entropy (all rows suddenly one category) is a common
    upstream failure signature.
    """
    finite = values[values >= 0]
    if len(finite) == 0:
        return 0.0
    counts = np.bincount(finite)
    probs = counts[counts > 0] / len(finite)
    return float(-(probs * np.log(probs)).sum())
