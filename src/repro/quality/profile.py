"""Column and table profiles.

A *profile* is the statistical snapshot the monitoring layer compares
against: the training-serving skew check (paper section 2.2.3) is "profile
of the data the model trained on" vs "profile of what serving sees now".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.quality.metrics import (
    DistributionSummary,
    categorical_entropy,
    distribution_summary,
    null_fraction,
)
from repro.storage.offline import OfflineTable


@dataclass(frozen=True)
class ColumnProfile:
    """Profile of one column: summary stats plus a normalized histogram.

    For numeric columns the histogram is over ``bin_edges``; for categorical
    columns it is over category codes (``bin_edges`` is None).
    """

    name: str
    kind: str  # "numeric" | "categorical"
    row_count: int
    null_fraction: float
    summary: DistributionSummary | None
    histogram: np.ndarray
    bin_edges: np.ndarray | None
    entropy: float | None = None


def profile_numeric(name: str, values: np.ndarray, bins: int = 20) -> ColumnProfile:
    """Profile a numeric column (NaN = NULL)."""
    finite = values[~np.isnan(values)]
    if len(finite) == 0:
        raise ValidationError(f"column {name!r} has no non-null values to profile")
    edges = np.histogram_bin_edges(finite, bins=bins)
    counts, __ = np.histogram(finite, bins=edges)
    histogram = counts / counts.sum()
    return ColumnProfile(
        name=name,
        kind="numeric",
        row_count=len(values),
        null_fraction=null_fraction(values),
        summary=distribution_summary(values),
        histogram=histogram,
        bin_edges=edges,
    )


def profile_categorical(
    name: str, values: np.ndarray, cardinality: int | None = None
) -> ColumnProfile:
    """Profile a categorical column (-1 = NULL)."""
    finite = values[values >= 0]
    if len(finite) == 0:
        raise ValidationError(f"column {name!r} has no non-null values to profile")
    size = cardinality if cardinality is not None else int(finite.max()) + 1
    counts = np.bincount(finite, minlength=size).astype(float)
    return ColumnProfile(
        name=name,
        kind="categorical",
        row_count=len(values),
        null_fraction=null_fraction(values),
        summary=None,
        histogram=counts / counts.sum(),
        bin_edges=None,
        entropy=categorical_entropy(values),
    )


@dataclass(frozen=True)
class TableProfile:
    """Profiles for a set of columns captured over one time window."""

    columns: dict[str, ColumnProfile]
    start: float | None = None
    end: float | None = None
    metadata: dict[str, object] = field(default_factory=dict)

    def column(self, name: str) -> ColumnProfile:
        if name not in self.columns:
            raise KeyError(f"profile has no column {name!r}; have {sorted(self.columns)}")
        return self.columns[name]


def profile_table(
    table: OfflineTable,
    start: float | None = None,
    end: float | None = None,
    bins: int = 20,
) -> TableProfile:
    """Profile every declared column of an offline table over a time range.

    Column kinds come from the table schema: ``float`` -> numeric,
    ``int`` -> categorical; ``string`` columns are skipped (profile them via
    an explicit integer coding if needed).
    """
    profiles: dict[str, ColumnProfile] = {}
    for name, kind in table.schema.columns.items():
        if kind == "string":
            continue
        values = table.column_array(name, start=start, end=end)
        if len(values) == 0:
            continue
        if kind == "float":
            profiles[name] = profile_numeric(name, values, bins=bins)
        else:
            profiles[name] = profile_categorical(name, values)
    return TableProfile(columns=profiles, start=start, end=end)


def histogram_on_edges(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Re-bin a numeric column onto an existing profile's edges.

    Values outside the reference range are clamped into the end bins, so the
    comparison still accounts for mass that drifted out of range.
    """
    finite = values[~np.isnan(values)]
    if len(finite) == 0:
        raise ValidationError("no non-null values to histogram")
    clipped = np.clip(finite, edges[0], edges[-1])
    counts, __ = np.histogram(clipped, bins=edges)
    return counts / counts.sum()
