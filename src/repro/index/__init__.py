"""Vector indexes for embedding similarity search.

Paper section 4: "Users need tools for searching and querying these
embeddings ... performing these operations at industrial scale will be
non-trivial". Four index families cover the standard recall/latency
trade-off space (experiment E10):

* :class:`BruteForceIndex` — exact search, the recall=1.0 baseline.
* :class:`LSHIndex` — random-hyperplane locality-sensitive hashing.
* :class:`IVFFlatIndex` — inverted file over k-means cells with probing.
* :class:`HNSWIndex` — hierarchical navigable small-world graph.

All share the :class:`VectorIndex` interface and count the number of
candidate distance evaluations, so benchmarks can report work saved
alongside recall.
"""

from repro.index.base import RWLock, SearchResult, VectorIndex, recall_at_k
from repro.index.brute import BruteForceIndex
from repro.index.hnsw import HNSWIndex
from repro.index.ivf import IVFFlatIndex
from repro.index.lsh import LSHIndex

__all__ = [
    "BruteForceIndex",
    "HNSWIndex",
    "IVFFlatIndex",
    "LSHIndex",
    "RWLock",
    "SearchResult",
    "VectorIndex",
    "recall_at_k",
]
