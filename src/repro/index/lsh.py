"""Random-hyperplane LSH index.

Each of ``n_tables`` hash tables assigns a vector the sign pattern of
``n_bits`` random hyperplane projections. Queries probe their own bucket in
every table (optionally plus all Hamming-distance-1 buckets) and exactly
re-rank the union of candidates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.index.base import SearchResult, VectorIndex


class LSHIndex(VectorIndex):
    """Sign-random-projection LSH for cosine similarity."""

    def __init__(
        self,
        n_tables: int = 8,
        n_bits: int = 12,
        probe_neighbors: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_tables <= 0 or n_bits <= 0:
            raise ValidationError("n_tables and n_bits must be positive")
        if n_bits > 30:
            raise ValidationError(f"n_bits too large ({n_bits}); keys are ints")
        self.n_tables = n_tables
        self.n_bits = n_bits
        self.probe_neighbors = probe_neighbors
        self.seed = seed
        self._planes: np.ndarray | None = None
        self._tables: list[dict[int, list[int]]] = []

    def _hash(self, table: int, vectors: np.ndarray) -> np.ndarray:
        assert self._planes is not None
        projections = vectors @ self._planes[table].T  # (n, n_bits)
        bits = (projections > 0).astype(np.int64)
        weights = 1 << np.arange(self.n_bits, dtype=np.int64)
        return bits @ weights

    def _build(self, normalized: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        dim = normalized.shape[1]
        self._planes = rng.normal(size=(self.n_tables, self.n_bits, dim))
        self._tables = [{} for __ in range(self.n_tables)]
        for table in range(self.n_tables):
            keys = self._hash(table, normalized)
            buckets = self._tables[table]
            for index, key in enumerate(keys.tolist()):
                buckets.setdefault(key, []).append(index)

    def _add(self, normalized: np.ndarray, ids: np.ndarray) -> None:
        for table in range(self.n_tables):
            keys = self._hash(table, normalized)
            buckets = self._tables[table]
            for index, key in zip(ids.tolist(), keys.tolist()):
                buckets.setdefault(key, []).append(index)

    def _query(self, normalized_query: np.ndarray, k: int) -> SearchResult:
        candidates: set[int] = set()
        for table in range(self.n_tables):
            key = int(self._hash(table, normalized_query[None, :])[0])
            buckets = self._tables[table]
            candidates.update(buckets.get(key, ()))
            if self.probe_neighbors:
                for bit in range(self.n_bits):
                    candidates.update(buckets.get(key ^ (1 << bit), ()))
        if not candidates:
            # Degenerate query (e.g. empty buckets): fall back to exact.
            candidate_ids = np.arange(self.size, dtype=np.int64)
        else:
            candidate_ids = np.fromiter(candidates, dtype=np.int64)
        return self._rank_candidates(normalized_query, candidate_ids, k)
