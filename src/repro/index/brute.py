"""Exact brute-force search: the recall-1.0 / highest-latency baseline."""

from __future__ import annotations

import numpy as np

from repro.index.base import SearchResult, VectorIndex


class BruteForceIndex(VectorIndex):
    """Scores every indexed vector against the query."""

    def _build(self, normalized: np.ndarray) -> None:
        pass  # nothing beyond the normalized matrix itself

    def _add(self, normalized: np.ndarray, ids: np.ndarray) -> None:
        pass  # the appended matrix is already everything brute force needs

    def _query(self, normalized_query: np.ndarray, k: int) -> SearchResult:
        candidates = np.arange(self.size, dtype=np.int64)
        return self._rank_candidates(normalized_query, candidates, k)
