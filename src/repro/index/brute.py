"""Exact brute-force search: the recall-1.0 / highest-latency baseline."""

from __future__ import annotations

import numpy as np

from repro.index.base import SearchResult, VectorIndex


class BruteForceIndex(VectorIndex):
    """Scores every indexed vector against the query."""

    def _build(self, normalized: np.ndarray) -> None:
        pass  # nothing beyond the normalized matrix itself

    def _add(self, normalized: np.ndarray, ids: np.ndarray) -> None:
        pass  # the appended matrix is already everything brute force needs

    def _on_update(self, ids: np.ndarray) -> None:
        pass  # overwritten rows are scored in place; nothing to rebuild

    def _query(self, normalized_query: np.ndarray, k: int) -> SearchResult:
        candidates = np.arange(self.size, dtype=np.int64)
        return self._rank_candidates(normalized_query, candidates, k)

    def _query_batch(
        self, normalized: np.ndarray, k: int
    ) -> list[SearchResult]:
        """One GIL-releasing matmul scores the whole batch at once."""
        assert self._vectors is not None
        scores = self._vectors @ normalized.T  # (n, q)
        self.distance_evaluations += scores.size
        k = min(k, self.size)
        top = np.argpartition(-scores, kth=k - 1, axis=0)[:k]  # (k, q)
        out = []
        for column in range(scores.shape[1]):
            rows = top[:, column]
            column_scores = scores[rows, column]
            order = np.argsort(-column_scores)
            keep = rows[order]
            out.append(
                SearchResult(
                    ids=keep.astype(np.int64), scores=column_scores[order]
                )
            )
        return out
