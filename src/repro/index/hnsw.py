"""HNSW: hierarchical navigable small-world graph index.

A faithful (laptop-scale, pure-Python) implementation of Malkov & Yashunin's
algorithm: nodes get a geometric random level; each layer is a proximity
graph with at most ``m`` (``m0`` at layer 0) neighbours per node; queries
greedily descend from the top layer, then run a best-first beam search of
width ``ef_search`` at layer 0.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import ValidationError
from repro.index.base import SearchResult, VectorIndex


class HNSWIndex(VectorIndex):
    """Hierarchical navigable small-world index (cosine similarity)."""

    def __init__(
        self,
        m: int = 8,
        ef_construction: int = 64,
        ef_search: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if m <= 0 or ef_construction <= 0 or ef_search <= 0:
            raise ValidationError("m, ef_construction and ef_search must be positive")
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.seed = seed
        self._levels: np.ndarray | None = None
        self._graphs: list[dict[int, list[int]]] = []
        self._entry_point: int = 0

    # -- construction -------------------------------------------------------

    def _build(self, normalized: np.ndarray) -> None:
        n = len(normalized)
        rng = np.random.default_rng(self.seed)
        self._rng = rng  # reused by incremental _add level draws
        level_mult = 1.0 / np.log(max(2.0, float(self.m)))
        self._level_mult = level_mult
        self._levels = np.floor(
            -np.log(rng.uniform(1e-12, 1.0, size=n)) * level_mult
        ).astype(np.int64)
        max_level = int(self._levels.max())
        self._graphs = [dict() for __ in range(max_level + 1)]
        self._entry_point = int(np.argmax(self._levels))

        order = rng.permutation(n)
        initialized = False
        for node in order.tolist():
            if not initialized:
                for layer in range(int(self._levels[node]) + 1):
                    self._graphs[layer][node] = []
                self._entry_point = node
                initialized = True
                continue
            self._insert(node, normalized)

    def _add(self, normalized: np.ndarray, ids: np.ndarray) -> None:
        """Insert new nodes with the standard HNSW insertion routine."""
        assert self._levels is not None
        new_levels = np.floor(
            -np.log(self._rng.uniform(1e-12, 1.0, size=len(ids)))
            * self._level_mult
        ).astype(np.int64)
        self._levels = np.concatenate([self._levels, new_levels])
        max_level = int(self._levels.max())
        while len(self._graphs) <= max_level:
            self._graphs.append({})
        for node in ids.tolist():
            self._insert(node, self._vectors)  # type: ignore[arg-type]

    def _similarity(self, a: int, vector: np.ndarray) -> float:
        assert self._vectors is not None
        self.distance_evaluations += 1
        return float(self._vectors[a] @ vector)

    def _insert(self, node: int, vectors: np.ndarray) -> None:
        assert self._levels is not None
        level = int(self._levels[node])
        query = vectors[node]
        entry = self._entry_point
        top = int(self._levels[self._entry_point])

        # Greedy descent through layers above the node's level.
        for layer in range(top, level, -1):
            entry = self._greedy_closest(query, entry, layer)

        # Beam insertion on layers <= level.
        for layer in range(min(level, top), -1, -1):
            candidates = self._search_layer(query, entry, layer, self.ef_construction)
            max_degree = self.m0 if layer == 0 else self.m
            neighbors = self._select_neighbors(node, candidates, max_degree)
            self._graphs[layer][node] = list(neighbors)
            for neighbor in neighbors:
                links = self._graphs[layer].setdefault(neighbor, [])
                links.append(node)
                if len(links) > max_degree:
                    scores = self._vectors[links] @ self._vectors[neighbor]  # type: ignore[index]
                    self.distance_evaluations += len(links)
                    ranked = sorted(zip(scores.tolist(), links), reverse=True)
                    self._graphs[layer][neighbor] = self._select_neighbors(
                        neighbor, ranked, max_degree
                    )
            if candidates:
                entry = candidates[0][1]

        for layer in range(top + 1, level + 1):
            self._graphs[layer][node] = []
        if level > top:
            self._entry_point = node

    def _select_neighbors(
        self, base: int, candidates: list[tuple[float, int]], max_degree: int
    ) -> list[int]:
        """Diversity-aware neighbour selection (Malkov & Yashunin, alg. 4).

        Iterating candidates best-first, a candidate is linked only if it is
        more similar to ``base`` than to any already-selected neighbour.
        Plain keep-the-closest pruning collapses clustered data into
        intra-cluster cliques and disconnects the graph; this heuristic
        preserves the long-range edges greedy search needs.
        """
        assert self._vectors is not None
        selected: list[int] = []
        for sim_to_base, candidate in sorted(candidates, reverse=True):
            if candidate == base:
                continue
            if len(selected) >= max_degree:
                break
            if selected:
                sims = self._vectors[selected] @ self._vectors[candidate]
                self.distance_evaluations += len(selected)
                if float(sims.max()) > sim_to_base:
                    continue
            selected.append(candidate)
        if not selected and candidates:
            # Degenerate fallback: link the single best candidate.
            best = max(candidates)[1]
            if best != base:
                selected.append(best)
        return selected

    # -- search ----------------------------------------------------------------

    def _greedy_closest(self, query: np.ndarray, entry: int, layer: int) -> int:
        current = entry
        current_sim = self._similarity(current, query)
        improved = True
        while improved:
            improved = False
            for neighbor in self._graphs[layer].get(current, ()):
                sim = self._similarity(neighbor, query)
                if sim > current_sim:
                    current, current_sim = neighbor, sim
                    improved = True
        return current

    def _search_layer(
        self, query: np.ndarray, entry: int, layer: int, ef: int
    ) -> list[tuple[float, int]]:
        """Best-first beam search; returns (similarity, id) best-first."""
        entry_sim = self._similarity(entry, query)
        visited = {entry}
        # Max-heap of frontier (negated sim), min-heap of current best set.
        frontier = [(-entry_sim, entry)]
        best: list[tuple[float, int]] = [(entry_sim, entry)]
        heapq.heapify(best)

        while frontier:
            negative_sim, node = heapq.heappop(frontier)
            if -negative_sim < best[0][0] and len(best) >= ef:
                break
            for neighbor in self._graphs[layer].get(node, ()):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                sim = self._similarity(neighbor, query)
                if len(best) < ef or sim > best[0][0]:
                    heapq.heappush(frontier, (-sim, neighbor))
                    heapq.heappush(best, (sim, neighbor))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted(best, reverse=True)

    def _query(self, normalized_query: np.ndarray, k: int) -> SearchResult:
        assert self._levels is not None
        entry = self._entry_point
        for layer in range(int(self._levels[self._entry_point]), 0, -1):
            entry = self._greedy_closest(normalized_query, entry, layer)
        ef = max(self.ef_search, k)
        results = self._search_layer(normalized_query, entry, 0, ef)[:k]
        return SearchResult(
            ids=np.array([node for __, node in results], dtype=np.int64),
            scores=np.array([sim for sim, __ in results]),
        )
