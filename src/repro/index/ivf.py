"""IVF-Flat: inverted file over k-means cells.

Vectors are partitioned into ``n_cells`` clusters at build time; a query
scores only the vectors in the ``n_probes`` nearest cells. The classic
recall knob: more probes = higher recall, more work.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.index.base import SearchResult, VectorIndex


class IVFFlatIndex(VectorIndex):
    """k-means inverted-file index with exact in-cell scoring."""

    def __init__(
        self,
        n_cells: int = 32,
        n_probes: int = 4,
        n_iterations: int = 15,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_cells <= 0 or n_probes <= 0 or n_iterations <= 0:
            raise ValidationError("n_cells, n_probes and n_iterations must be positive")
        self.n_cells = n_cells
        self.n_probes = min(n_probes, n_cells)
        self.n_iterations = n_iterations
        self.seed = seed
        self._centroids: np.ndarray | None = None
        self._cells: list[np.ndarray] = []

    def _build(self, normalized: np.ndarray) -> None:
        n = len(normalized)
        n_cells = min(self.n_cells, n)
        rng = np.random.default_rng(self.seed)
        centroids = normalized[rng.choice(n, size=n_cells, replace=False)].copy()

        assignments = np.zeros(n, dtype=np.int64)
        for __ in range(self.n_iterations):
            similarities = normalized @ centroids.T
            new_assignments = similarities.argmax(axis=1)
            if np.array_equal(new_assignments, assignments):
                break
            assignments = new_assignments
            for cell in range(n_cells):
                members = normalized[assignments == cell]
                if len(members):
                    mean = members.mean(axis=0)
                    norm = np.linalg.norm(mean)
                    centroids[cell] = mean / norm if norm > 0 else mean

        self._centroids = centroids
        self._cells = [
            np.flatnonzero(assignments == cell).astype(np.int64)
            for cell in range(n_cells)
        ]

    def _add(self, normalized: np.ndarray, ids: np.ndarray) -> None:
        """Assign new vectors to their nearest existing cell (no re-clustering).

        Centroids stay frozen, so heavy additions can skew cell balance;
        callers doing bulk loads should rebuild instead.
        """
        assert self._centroids is not None
        assignments = (normalized @ self._centroids.T).argmax(axis=1)
        for cell in np.unique(assignments):
            members = ids[assignments == cell]
            self._cells[cell] = np.concatenate([self._cells[cell], members])

    def _query(self, normalized_query: np.ndarray, k: int) -> SearchResult:
        assert self._centroids is not None
        cell_scores = self._centroids @ normalized_query
        probes = min(self.n_probes, len(self._centroids))
        nearest_cells = np.argpartition(-cell_scores, kth=probes - 1)[:probes]
        candidate_lists = [self._cells[c] for c in nearest_cells if len(self._cells[c])]
        if candidate_lists:
            candidates = np.concatenate(candidate_lists)
        else:
            candidates = np.arange(self.size, dtype=np.int64)
        return self._rank_candidates(normalized_query, candidates, k)
