"""The vector index interface.

Indexes operate on cosine similarity: vectors are L2-normalized at build
time, and queries are normalized on entry, so inner product equals cosine.

Thread safety: every index carries an internal readers/writer lock
(:class:`RWLock`). ``query`` holds the read side, the mutators (``build``,
``add``, ``update``, ``remove``) hold the write side — so concurrent
readers never observe a partially-appended matrix or a half-rebuilt graph
while the serving tier hammers the same index from a worker pool. The only
deliberately unguarded state is ``distance_evaluations``, a best-effort
work counter (lost increments under contention are acceptable; corruption
is not possible on a Python int).

Mutability: beyond append-only :meth:`VectorIndex.add`, indexes support
the two operations a *serving* delta plane needs (``repro.vecserve``):

* :meth:`VectorIndex.remove` — tombstone rows. Removed ids stay in the
  backing structures (graphs keep their nodes as navigation waypoints)
  but are filtered out of every query result; ``query`` widens its
  internal fetch by the tombstone count so callers still receive ``k``
  live results whenever that many exist.
* :meth:`VectorIndex.update` — overwrite rows in place (id-stable
  upsert). The default hook rebuilds the index-specific structure;
  brute force overrides it with a no-op because the matrix *is* the
  index.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError


class RWLock:
    """A readers/writer lock with writer preference.

    Many readers may hold the lock simultaneously; writers are exclusive.
    A waiting writer blocks *new* readers, so a steady query stream cannot
    starve index mutations. Not reentrant — internal index hooks
    (``_build``/``_add``/``_query``) are called with the lock already
    held and must not re-acquire it.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read_locked(self):
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write_locked(self):
        with self._cond:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


@dataclass(frozen=True)
class SearchResult:
    """Top-k result for one query: parallel id and score arrays."""

    ids: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return len(self.ids)


def _normalize_rows(vectors: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return vectors / norms


class VectorIndex(ABC):
    """Approximate (or exact) nearest-neighbour index over row vectors."""

    def __init__(self) -> None:
        self._vectors: np.ndarray | None = None
        self._removed: set[int] = set()
        self._guard = RWLock()
        self.distance_evaluations = 0

    @property
    def size(self) -> int:
        """Total indexed rows, including tombstoned ones."""
        return 0 if self._vectors is None else len(self._vectors)

    @property
    def live_size(self) -> int:
        """Rows that queries may return (``size`` minus tombstones)."""
        return self.size - len(self._removed)

    @property
    def is_built(self) -> bool:
        return self._vectors is not None

    @property
    def matrix(self) -> np.ndarray | None:
        """The normalized backing matrix (read-only by convention).

        Exposed so sealed-snapshot machinery (``repro.vecserve``) can run
        exact oracle scans and generation rebuilds without re-normalizing;
        mutating it directly bypasses the lock and the index structures.
        """
        return self._vectors

    def build(self, vectors: np.ndarray) -> None:
        """Index an ``(n, d)`` matrix (replaces any previous contents)."""
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2 or len(vectors) == 0:
            raise ValidationError(
                f"build expects a non-empty (n, d) matrix, got shape {vectors.shape}"
            )
        normalized = _normalize_rows(vectors)
        with self._guard.write_locked():
            self._vectors = normalized
            self._removed = set()
            self.distance_evaluations = 0
            self._build(self._vectors)

    @abstractmethod
    def _build(self, normalized: np.ndarray) -> None:
        """Index-specific construction over the normalized matrix."""

    def add(self, vectors: np.ndarray) -> np.ndarray:
        """Incrementally index new vectors; returns their assigned ids.

        Embedding stores grow (new entities, new vocabulary); rebuilding the
        whole index per addition is wasteful. The default implementation
        appends to the stored matrix and delegates to :meth:`_add`; ids are
        assigned contiguously after the existing rows.
        """
        if self._vectors is None:
            raise ValidationError("index not built; call build() first")
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2 or vectors.shape[1] != self._vectors.shape[1]:
            raise ValidationError(
                f"add expects (n, {self._vectors.shape[1]}) vectors, "
                f"got {vectors.shape}"
            )
        normalized = _normalize_rows(vectors)
        with self._guard.write_locked():
            start = len(self._vectors)
            self._vectors = np.vstack([self._vectors, normalized])
            new_ids = np.arange(start, start + len(normalized), dtype=np.int64)
            self._add(normalized, new_ids)
        return new_ids

    def _add(self, normalized: np.ndarray, ids: np.ndarray) -> None:
        """Index-specific incremental insertion (default: full rebuild)."""
        self._build(self._vectors)  # type: ignore[arg-type]

    def remove(self, ids: np.ndarray) -> int:
        """Tombstone rows so queries can no longer return them.

        Rows are *not* physically deleted — graph indexes keep them as
        navigation waypoints — but every query filters them out. Returns
        the number of rows newly tombstoned (already-removed ids are
        counted as zero, out-of-range ids raise).
        """
        if self._vectors is None:
            raise ValidationError("index not built; call build() first")
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) and (ids.min() < 0 or ids.max() >= self.size):
            raise ValidationError(
                f"remove ids out of range [0, {self.size}) "
                f"(got min={ids.min()}, max={ids.max()})"
            )
        with self._guard.write_locked():
            before = len(self._removed)
            self._removed.update(int(i) for i in ids)
            newly = len(self._removed) - before
            if newly:
                self._on_remove(ids)
            return newly

    def _on_remove(self, ids: np.ndarray) -> None:
        """Index-specific reaction to tombstones (default: none needed —
        filtering happens generically in :meth:`query`)."""

    def update(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        """Overwrite existing rows in place (id-stable upsert).

        Updated ids lose any tombstone (an overwrite resurrects the row).
        The default :meth:`_on_update` rebuilds the index-specific
        structure over the patched matrix; exact indexes override it with
        a no-op.
        """
        if self._vectors is None:
            raise ValidationError("index not built; call build() first")
        ids = np.asarray(ids, dtype=np.int64)
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2 or vectors.shape[1] != self._vectors.shape[1]:
            raise ValidationError(
                f"update expects (n, {self._vectors.shape[1]}) vectors, "
                f"got {vectors.shape}"
            )
        if len(ids) != len(vectors):
            raise ValidationError(
                f"update got {len(ids)} ids for {len(vectors)} vectors"
            )
        if len(ids) == 0:
            return
        if ids.min() < 0 or ids.max() >= self.size:
            raise ValidationError(
                f"update ids out of range [0, {self.size}) "
                f"(got min={ids.min()}, max={ids.max()})"
            )
        normalized = _normalize_rows(vectors)
        with self._guard.write_locked():
            self._vectors[ids] = normalized
            self._removed.difference_update(int(i) for i in ids)
            self._on_update(ids)

    def _on_update(self, ids: np.ndarray) -> None:
        """Index-specific reaction to overwrites (default: full rebuild)."""
        self._build(self._vectors)  # type: ignore[arg-type]

    def query(self, vector: np.ndarray, k: int) -> SearchResult:
        """Top-k most similar *live* indexed vectors to ``vector``."""
        if self._vectors is None:
            raise ValidationError("index not built; call build() first")
        if k <= 0:
            raise ValidationError(f"k must be positive ({k=})")
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self._vectors.shape[1],):
            raise ValidationError(
                f"query dim {vector.shape} != index dim ({self._vectors.shape[1]},)"
            )
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector = vector / norm
        with self._guard.read_locked():
            if self.live_size == 0:
                raise ValidationError("index has no live vectors (all removed)")
            k = min(k, self.live_size)
            # Widen the internal fetch so tombstone filtering still leaves
            # k live results whenever that many exist.
            fetch = min(k + len(self._removed), self.size)
            result = self._query(vector, fetch)
            if self._removed:
                keep = [
                    position
                    for position, row in enumerate(result.ids.tolist())
                    if row not in self._removed
                ]
                keep = keep[:k]
                result = SearchResult(
                    ids=result.ids[keep], scores=result.scores[keep]
                )
            elif len(result) > k:
                result = SearchResult(
                    ids=result.ids[:k], scores=result.scores[:k]
                )
            return result

    def query_batch(self, vectors: np.ndarray, k: int) -> list[SearchResult]:
        """Top-k for many queries under one lock acquisition.

        The default walks :meth:`_query` per query; exact indexes override
        :meth:`_query_batch` with one vectorized scoring pass (a single
        GIL-releasing matmul), which is what makes sharded scatter-gather
        of micro-batches real parallelism rather than serialized Python.
        """
        if self._vectors is None:
            raise ValidationError("index not built; call build() first")
        if k <= 0:
            raise ValidationError(f"k must be positive ({k=})")
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2 or vectors.shape[1] != self._vectors.shape[1]:
            raise ValidationError(
                f"query_batch expects (q, {self._vectors.shape[1]}) queries, "
                f"got {vectors.shape}"
            )
        normalized = _normalize_rows(vectors)
        with self._guard.read_locked():
            if self.live_size == 0:
                raise ValidationError("index has no live vectors (all removed)")
            k = min(k, self.live_size)
            fetch = min(k + len(self._removed), self.size)
            raw = self._query_batch(normalized, fetch)
            out = []
            for result in raw:
                if self._removed:
                    keep = [
                        position
                        for position, row in enumerate(result.ids.tolist())
                        if row not in self._removed
                    ][:k]
                    result = SearchResult(
                        ids=result.ids[keep], scores=result.scores[keep]
                    )
                elif len(result) > k:
                    result = SearchResult(
                        ids=result.ids[:k], scores=result.scores[:k]
                    )
                out.append(result)
            return out

    def _query_batch(
        self, normalized: np.ndarray, k: int
    ) -> list[SearchResult]:
        """Index-specific batched search (default: per-query loop)."""
        return [self._query(query, k) for query in normalized]

    @abstractmethod
    def _query(self, normalized_query: np.ndarray, k: int) -> SearchResult:
        """Index-specific search with a normalized query and valid k."""

    def _rank_candidates(
        self, query: np.ndarray, candidates: np.ndarray, k: int
    ) -> SearchResult:
        """Exactly score a candidate id set and keep the top k.

        When the candidate set is smaller than ``k`` (sparse buckets/cells on
        tiny datasets) the scan widens to the whole index so callers always
        receive ``k`` results when the index holds at least ``k`` vectors.
        """
        assert self._vectors is not None
        if len(candidates) < k:
            candidates = np.arange(self.size, dtype=np.int64)
        scores = self._vectors[candidates] @ query
        self.distance_evaluations += len(candidates)
        k = min(k, len(candidates))
        top = np.argpartition(-scores, kth=k - 1)[:k]
        order = np.argsort(-scores[top])
        keep = top[order]
        return SearchResult(ids=candidates[keep], scores=scores[keep])


def recall_at_k(approximate: SearchResult, exact: SearchResult, k: int) -> float:
    """Fraction of the exact top-k the approximate result recovered.

    ``exact`` must contain at least ``k`` results: computing recall against
    a truncated truth set silently *inflates* the estimate (a 5-element
    truth for k=10 halves the denominator), so that case raises instead.
    """
    if k <= 0:
        raise ValidationError(f"k must be positive ({k=})")
    if k > len(exact):
        raise ValidationError(
            f"recall_at_k needs >= k exact results (k={k}, exact has "
            f"{len(exact)}); a truncated truth set would inflate recall"
        )
    truth = set(exact.ids[:k].tolist())
    found = set(approximate.ids[:k].tolist())
    return len(found & truth) / len(truth)
