"""The vector index interface.

Indexes operate on cosine similarity: vectors are L2-normalized at build
time, and queries are normalized on entry, so inner product equals cosine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class SearchResult:
    """Top-k result for one query: parallel id and score arrays."""

    ids: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return len(self.ids)


class VectorIndex(ABC):
    """Approximate (or exact) nearest-neighbour index over row vectors."""

    def __init__(self) -> None:
        self._vectors: np.ndarray | None = None
        self.distance_evaluations = 0

    @property
    def size(self) -> int:
        return 0 if self._vectors is None else len(self._vectors)

    @property
    def is_built(self) -> bool:
        return self._vectors is not None

    def build(self, vectors: np.ndarray) -> None:
        """Index an ``(n, d)`` matrix (replaces any previous contents)."""
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2 or len(vectors) == 0:
            raise ValidationError(
                f"build expects a non-empty (n, d) matrix, got shape {vectors.shape}"
            )
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        self._vectors = vectors / norms
        self.distance_evaluations = 0
        self._build(self._vectors)

    @abstractmethod
    def _build(self, normalized: np.ndarray) -> None:
        """Index-specific construction over the normalized matrix."""

    def add(self, vectors: np.ndarray) -> np.ndarray:
        """Incrementally index new vectors; returns their assigned ids.

        Embedding stores grow (new entities, new vocabulary); rebuilding the
        whole index per addition is wasteful. The default implementation
        appends to the stored matrix and delegates to :meth:`_add`; ids are
        assigned contiguously after the existing rows.
        """
        if self._vectors is None:
            raise ValidationError("index not built; call build() first")
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2 or vectors.shape[1] != self._vectors.shape[1]:
            raise ValidationError(
                f"add expects (n, {self._vectors.shape[1]}) vectors, "
                f"got {vectors.shape}"
            )
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        normalized = vectors / norms
        start = len(self._vectors)
        self._vectors = np.vstack([self._vectors, normalized])
        new_ids = np.arange(start, start + len(normalized), dtype=np.int64)
        self._add(normalized, new_ids)
        return new_ids

    def _add(self, normalized: np.ndarray, ids: np.ndarray) -> None:
        """Index-specific incremental insertion (default: full rebuild)."""
        self._build(self._vectors)  # type: ignore[arg-type]

    def query(self, vector: np.ndarray, k: int) -> SearchResult:
        """Top-k most similar indexed vectors to ``vector``."""
        if self._vectors is None:
            raise ValidationError("index not built; call build() first")
        if k <= 0:
            raise ValidationError(f"k must be positive ({k=})")
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self._vectors.shape[1],):
            raise ValidationError(
                f"query dim {vector.shape} != index dim ({self._vectors.shape[1]},)"
            )
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector = vector / norm
        k = min(k, self.size)
        return self._query(vector, k)

    @abstractmethod
    def _query(self, normalized_query: np.ndarray, k: int) -> SearchResult:
        """Index-specific search with a normalized query and valid k."""

    def _rank_candidates(
        self, query: np.ndarray, candidates: np.ndarray, k: int
    ) -> SearchResult:
        """Exactly score a candidate id set and keep the top k.

        When the candidate set is smaller than ``k`` (sparse buckets/cells on
        tiny datasets) the scan widens to the whole index so callers always
        receive ``k`` results when the index holds at least ``k`` vectors.
        """
        assert self._vectors is not None
        if len(candidates) < k:
            candidates = np.arange(self.size, dtype=np.int64)
        scores = self._vectors[candidates] @ query
        self.distance_evaluations += len(candidates)
        k = min(k, len(candidates))
        top = np.argpartition(-scores, kth=k - 1)[:k]
        order = np.argsort(-scores[top])
        keep = top[order]
        return SearchResult(ids=candidates[keep], scores=scores[keep])


def recall_at_k(approximate: SearchResult, exact: SearchResult, k: int) -> float:
    """Fraction of the exact top-k the approximate result recovered."""
    if k <= 0:
        raise ValidationError(f"k must be positive ({k=})")
    truth = set(exact.ids[:k].tolist())
    if not truth:
        return 1.0
    found = set(approximate.ids[:k].tolist())
    return len(found & truth) / len(truth)
