"""Downstream classification tasks with planted structure.

Two families:

* :func:`generate_sliced_task` — a tabular classification task with *planted
  underperforming slices* (subpopulations where the feature-label relation is
  corrupted). Used by the slice-discovery and patching experiments (E8, E11):
  a slice finder should recover exactly the planted slices.
* :func:`generate_entity_task` — a task whose examples reference entities and
  whose labels depend on a latent entity attribute. Downstream models consume
  an *entity embedding* as their feature, which is how the paper's embedding
  ecosystem serves derived data to many products (section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class PlantedSlice:
    """Ground truth for one planted error slice."""

    name: str
    column: str
    value: int
    mask: np.ndarray
    noise_rate: float


@dataclass(frozen=True)
class ClassificationTask:
    """A binary/multiclass classification dataset with metadata columns.

    ``metadata`` columns are integer-coded attributes (e.g. city, device)
    over which slices are defined; they are *not* part of the model features
    unless a caller chooses to include them.
    """

    features: np.ndarray
    labels: np.ndarray
    metadata: dict[str, np.ndarray] = field(default_factory=dict)
    planted_slices: tuple[PlantedSlice, ...] = ()
    entity_ids: np.ndarray | None = None
    n_classes: int = 2
    clean_labels: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = len(self.labels)
        if self.features.shape[0] != n:
            raise ValidationError(
                f"features rows {self.features.shape[0]} != labels {n}"
            )
        for name, col in self.metadata.items():
            if len(col) != n:
                raise ValidationError(f"metadata {name!r} length {len(col)} != {n}")
        if self.entity_ids is not None and len(self.entity_ids) != n:
            raise ValidationError("entity_ids length mismatch")
        if self.clean_labels is not None and len(self.clean_labels) != n:
            raise ValidationError("clean_labels length mismatch")

    def __len__(self) -> int:
        return len(self.labels)

    def subset(self, mask: np.ndarray) -> "ClassificationTask":
        """Row subset; planted-slice masks are subset alongside."""
        return ClassificationTask(
            features=self.features[mask],
            labels=self.labels[mask],
            metadata={k: v[mask] for k, v in self.metadata.items()},
            planted_slices=tuple(
                PlantedSlice(s.name, s.column, s.value, s.mask[mask], s.noise_rate)
                for s in self.planted_slices
            ),
            entity_ids=None if self.entity_ids is None else self.entity_ids[mask],
            n_classes=self.n_classes,
            clean_labels=(
                None if self.clean_labels is None else self.clean_labels[mask]
            ),
        )

    def split(
        self, train_fraction: float = 0.7, seed: int = 0
    ) -> tuple["ClassificationTask", "ClassificationTask"]:
        """Random train/test split preserving metadata and slice masks."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        cut = int(train_fraction * len(self))
        train_mask = np.zeros(len(self), dtype=bool)
        train_mask[order[:cut]] = True
        return self.subset(train_mask), self.subset(~train_mask)


@dataclass(frozen=True)
class SlicedTaskConfig:
    """Parameters for :func:`generate_sliced_task`."""

    n_rows: int = 4000
    n_features: int = 8
    n_classes: int = 2
    metadata_cardinalities: dict[str, int] = field(
        default_factory=lambda: {"city": 6, "device": 3}
    )
    planted: tuple[tuple[str, int, float], ...] = (("city", 3, 0.45),)
    base_noise: float = 0.05
    signal_strength: float = 2.5

    def validate(self) -> None:
        if self.n_rows <= 0 or self.n_features <= 0:
            raise ValidationError("n_rows and n_features must be positive")
        if not 0.0 <= self.base_noise < 0.5:
            raise ValidationError(f"base_noise must be in [0, 0.5) ({self.base_noise=})")
        for column, value, rate in self.planted:
            if column not in self.metadata_cardinalities:
                raise ValidationError(f"planted slice column {column!r} not declared")
            if value >= self.metadata_cardinalities[column]:
                raise ValidationError(
                    f"planted slice value {value} out of range for {column!r}"
                )
            if not 0.0 < rate <= 0.5:
                raise ValidationError(f"slice noise rate must be in (0, 0.5] ({rate=})")


def generate_sliced_task(
    config: SlicedTaskConfig = SlicedTaskConfig(), seed: int | np.random.Generator = 0
) -> ClassificationTask:
    """Generate a linearly separable task with label noise planted in slices.

    Labels come from a random linear teacher on Gaussian features with
    ``base_noise`` global label flips; inside each planted slice the flip
    rate rises to that slice's ``noise_rate``, degrading any model's
    achievable accuracy there — the "meaningful subpopulations of errors" the
    paper's section 3.1.3 wants monitoring tools to surface.
    """
    config.validate()
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )

    features = rng.normal(size=(config.n_rows, config.n_features))
    teacher = rng.normal(size=config.n_features) * config.signal_strength
    logits = features @ teacher
    if config.n_classes == 2:
        labels = (logits > 0).astype(np.int64)
    else:
        # Multiclass: bucket the teacher score into equiprobable bins.
        edges = np.quantile(logits, np.linspace(0, 1, config.n_classes + 1)[1:-1])
        labels = np.digitize(logits, edges).astype(np.int64)

    metadata = {
        name: rng.integers(0, cardinality, size=config.n_rows).astype(np.int64)
        for name, cardinality in config.metadata_cardinalities.items()
    }

    flip = rng.random(config.n_rows) < config.base_noise
    planted: list[PlantedSlice] = []
    for name_value_rate in config.planted:
        column, value, rate = name_value_rate
        mask = metadata[column] == value
        flip |= mask & (rng.random(config.n_rows) < rate)
        planted.append(
            PlantedSlice(
                name=f"{column}={value}",
                column=column,
                value=value,
                mask=mask,
                noise_rate=rate,
            )
        )

    noisy = labels.copy()
    flipped_to = rng.integers(1, config.n_classes, size=config.n_rows)
    noisy[flip] = (labels[flip] + flipped_to[flip]) % config.n_classes

    return ClassificationTask(
        features=features,
        labels=noisy,
        metadata=metadata,
        planted_slices=tuple(planted),
        n_classes=config.n_classes,
        clean_labels=labels,
    )


def generate_entity_task(
    n_rows: int,
    entity_attributes: np.ndarray,
    n_classes: int | None = None,
    entity_skew: float = 1.1,
    label_noise: float = 0.05,
    seed: int | np.random.Generator = 0,
) -> ClassificationTask:
    """Generate a task whose label is the referenced entity's attribute.

    ``entity_attributes`` maps entity id to an integer class (e.g. the
    entity's type or topic). A downstream model sees only the entity's
    *embedding* as features, so its accuracy directly measures how well the
    embedding encodes the attribute — the paper's "downstream quality"
    coupling (sections 3.1.2-3.1.3). Features here are just entity ids; the
    caller composes them with an embedding matrix at train time.
    """
    if n_rows <= 0:
        raise ValidationError(f"n_rows must be positive ({n_rows=})")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    n_entities = len(entity_attributes)
    ranks = np.arange(1, n_entities + 1, dtype=float)
    probs = ranks**-entity_skew
    probs /= probs.sum()

    entity_ids = rng.choice(n_entities, size=n_rows, p=probs).astype(np.int64)
    clean = entity_attributes[entity_ids].astype(np.int64)
    labels = clean.copy()
    k = int(n_classes if n_classes is not None else entity_attributes.max() + 1)
    if label_noise > 0 and k > 1:
        flip = rng.random(n_rows) < label_noise
        labels[flip] = (labels[flip] + rng.integers(1, k, size=n_rows)[flip]) % k

    return ClassificationTask(
        features=entity_ids.reshape(-1, 1).astype(float),
        labels=labels,
        metadata={"entity": entity_ids},
        entity_ids=entity_ids,
        n_classes=k,
        clean_labels=clean,
    )
