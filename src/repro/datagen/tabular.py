"""Tabular event generators (the feature store's raw training data).

Generates ride-hailing-style event tables: per-event numeric and categorical
columns with event timestamps, controllable null rates and distribution
parameters. These stand in for the production tables an industrial feature
store (paper section 2.2.1) ingests for feature curation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clock import SECONDS_PER_DAY
from repro.datagen.workloads import zipf_probabilities
from repro.errors import ValidationError


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    """Coerce an int seed or an existing Generator into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass(frozen=True)
class TabularDataset:
    """A columnar dataset: parallel numpy arrays keyed by column name.

    ``timestamps`` holds per-row event times; ``entity_ids`` holds the join
    key (e.g. driver id). Numeric columns are float arrays where ``nan``
    encodes SQL NULL; categorical columns are integer-coded arrays where
    ``-1`` encodes NULL.
    """

    entity_ids: np.ndarray
    timestamps: np.ndarray
    numeric: dict[str, np.ndarray]
    categorical: dict[str, np.ndarray]
    categorical_cardinality: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.entity_ids)
        if len(self.timestamps) != n:
            raise ValidationError(
                f"timestamps length {len(self.timestamps)} != entity_ids length {n}"
            )
        for name, col in {**self.numeric, **self.categorical}.items():
            if len(col) != n:
                raise ValidationError(f"column {name!r} length {len(col)} != {n}")

    def __len__(self) -> int:
        return len(self.entity_ids)

    @property
    def column_names(self) -> list[str]:
        return list(self.numeric) + list(self.categorical)

    def column(self, name: str) -> np.ndarray:
        """Return a column by name, numeric or categorical."""
        if name in self.numeric:
            return self.numeric[name]
        if name in self.categorical:
            return self.categorical[name]
        raise KeyError(f"no column named {name!r}")

    def rows(self) -> list[dict[str, object]]:
        """Materialize the dataset as a list of row dicts (for store APIs)."""
        out: list[dict[str, object]] = []
        for i in range(len(self)):
            row: dict[str, object] = {
                "entity_id": int(self.entity_ids[i]),
                "timestamp": float(self.timestamps[i]),
            }
            for name, col in self.numeric.items():
                value = float(col[i])
                row[name] = None if np.isnan(value) else value
            for name, col in self.categorical.items():
                value = int(col[i])
                row[name] = None if value < 0 else value
            out.append(row)
        return out

    def slice(self, mask: np.ndarray) -> "TabularDataset":
        """Return the subset of rows where ``mask`` is true."""
        return TabularDataset(
            entity_ids=self.entity_ids[mask],
            timestamps=self.timestamps[mask],
            numeric={k: v[mask] for k, v in self.numeric.items()},
            categorical={k: v[mask] for k, v in self.categorical.items()},
            categorical_cardinality=dict(self.categorical_cardinality),
        )


@dataclass(frozen=True)
class RideEventConfig:
    """Parameters for :func:`generate_ride_events`.

    The defaults give a small but realistic workload: 7 days of events,
    Zipf-ish entity activity (some drivers far busier than others), diurnal
    trip-distance structure and a few percent of missing values.
    """

    n_events: int = 10_000
    n_entities: int = 200
    n_days: int = 7
    start_time: float = 0.0
    null_rate: float = 0.02
    entity_skew: float = 1.2
    fare_per_km: float = 1.8
    fare_noise: float = 2.0
    n_cities: int = 8
    n_vehicle_types: int = 4

    def validate(self) -> None:
        if self.n_events <= 0:
            raise ValidationError(f"n_events must be positive ({self.n_events=})")
        if self.n_entities <= 0:
            raise ValidationError(f"n_entities must be positive ({self.n_entities=})")
        if not 0.0 <= self.null_rate < 1.0:
            raise ValidationError(f"null_rate must be in [0, 1) ({self.null_rate=})")
        if self.n_days <= 0:
            raise ValidationError(f"n_days must be positive ({self.n_days=})")


def _zipf_probabilities(n: int, skew: float) -> np.ndarray:
    """Zipfian probability vector (shared with :mod:`repro.datagen.workloads`)."""
    return zipf_probabilities(n, skew)


def generate_ride_events(
    config: RideEventConfig = RideEventConfig(), seed: int | np.random.Generator = 0
) -> TabularDataset:
    """Generate a ride-hailing event table.

    Columns:

    * ``trip_km`` (numeric) — log-normal trip distance.
    * ``fare`` (numeric) — linear in distance plus noise, so ``fare`` and
      ``trip_km`` carry high mutual information (used by quality metrics).
    * ``rating`` (numeric) — rider rating in [1, 5], left-skewed.
    * ``wait_minutes`` (numeric) — exponential pickup wait.
    * ``city`` (categorical) — Zipf-distributed city id.
    * ``vehicle_type`` (categorical) — near-uniform vehicle class.
    """
    config.validate()
    rng = _rng(seed)
    n = config.n_events

    entity_probs = _zipf_probabilities(config.n_entities, config.entity_skew)
    entity_ids = rng.choice(config.n_entities, size=n, p=entity_probs)

    horizon = config.n_days * SECONDS_PER_DAY
    timestamps = np.sort(config.start_time + rng.uniform(0.0, horizon, size=n))

    trip_km = rng.lognormal(mean=1.2, sigma=0.6, size=n)
    fare = config.fare_per_km * trip_km + rng.normal(2.5, config.fare_noise, size=n)
    fare = np.maximum(fare, 1.0)
    rating = np.clip(5.0 - rng.exponential(0.5, size=n), 1.0, 5.0)
    wait_minutes = rng.exponential(4.0, size=n)

    city_probs = _zipf_probabilities(config.n_cities, 1.0)
    city = rng.choice(config.n_cities, size=n, p=city_probs).astype(np.int64)
    vehicle_type = rng.integers(0, config.n_vehicle_types, size=n)

    numeric = {
        "trip_km": trip_km,
        "fare": fare,
        "rating": rating,
        "wait_minutes": wait_minutes,
    }
    if config.null_rate > 0:
        for col in numeric.values():
            col[rng.random(n) < config.null_rate] = np.nan
        city[rng.random(n) < config.null_rate] = -1

    return TabularDataset(
        entity_ids=entity_ids.astype(np.int64),
        timestamps=timestamps,
        numeric=numeric,
        categorical={"city": city, "vehicle_type": vehicle_type.astype(np.int64)},
        categorical_cardinality={
            "city": config.n_cities,
            "vehicle_type": config.n_vehicle_types,
        },
    )


def generate_tabular(
    n_rows: int,
    numeric_specs: dict[str, tuple[float, float]],
    categorical_specs: dict[str, int] | None = None,
    n_entities: int = 100,
    time_span: float = SECONDS_PER_DAY,
    start_time: float = 0.0,
    null_rate: float = 0.0,
    seed: int | np.random.Generator = 0,
) -> TabularDataset:
    """Generate a generic Gaussian/categorical table.

    ``numeric_specs`` maps column name to ``(mean, std)``;
    ``categorical_specs`` maps column name to cardinality (uniform draw).
    Useful for monitoring experiments where the reference distribution must
    be exactly known.
    """
    if n_rows <= 0:
        raise ValidationError(f"n_rows must be positive ({n_rows=})")
    rng = _rng(seed)
    categorical_specs = categorical_specs or {}

    entity_ids = rng.integers(0, n_entities, size=n_rows).astype(np.int64)
    timestamps = np.sort(start_time + rng.uniform(0.0, time_span, size=n_rows))

    numeric: dict[str, np.ndarray] = {}
    for name, (mean, std) in numeric_specs.items():
        col = rng.normal(mean, std, size=n_rows)
        if null_rate > 0:
            col[rng.random(n_rows) < null_rate] = np.nan
        numeric[name] = col

    categorical: dict[str, np.ndarray] = {}
    for name, cardinality in categorical_specs.items():
        col = rng.integers(0, cardinality, size=n_rows).astype(np.int64)
        if null_rate > 0:
            col[rng.random(n_rows) < null_rate] = -1
        categorical[name] = col

    return TabularDataset(
        entity_ids=entity_ids,
        timestamps=timestamps,
        numeric=numeric,
        categorical=categorical,
        categorical_cardinality=dict(categorical_specs),
    )
