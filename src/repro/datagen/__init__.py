"""Synthetic workload generators.

The paper's substrate was industrial (Uber Michelangelo feature data,
Wikipedia-scale corpora, Wikidata-scale knowledge bases). None of that is
available offline, so this package provides deterministic generators that
preserve the distributional structure each experiment depends on — Zipfian
entity popularity, drifting feature streams, topic-structured co-occurrence
corpora and classification tasks with planted error slices. See DESIGN.md
section 5 for the substitution argument per experiment.

All generators take an explicit seed (or ``numpy.random.Generator``) and are
bit-for-bit reproducible.
"""

from repro.datagen.corpus import CorpusConfig, SyntheticCorpus, generate_corpus
from repro.datagen.drift import (
    CategoricalShift,
    DriftInjector,
    MeanShift,
    NullBurst,
    VarianceShift,
)
from repro.datagen.kb import (
    Entity,
    KnowledgeBase,
    KBConfig,
    Mention,
    MentionConfig,
    generate_kb,
    generate_mentions,
)
from repro.datagen.streams import EventStream, StreamConfig, generate_stream
from repro.datagen.tabular import (
    RideEventConfig,
    TabularDataset,
    generate_ride_events,
    generate_tabular,
)
from repro.datagen.tasks import (
    ClassificationTask,
    SlicedTaskConfig,
    generate_entity_task,
    generate_sliced_task,
)
from repro.datagen.workloads import (
    ZipfianWorkloadConfig,
    generate_zipfian_keys,
    theoretical_hit_rate,
    zipf_probabilities,
)

__all__ = [
    "CategoricalShift",
    "ClassificationTask",
    "CorpusConfig",
    "DriftInjector",
    "Entity",
    "EventStream",
    "KBConfig",
    "KnowledgeBase",
    "MeanShift",
    "Mention",
    "MentionConfig",
    "NullBurst",
    "RideEventConfig",
    "SlicedTaskConfig",
    "StreamConfig",
    "SyntheticCorpus",
    "TabularDataset",
    "VarianceShift",
    "ZipfianWorkloadConfig",
    "generate_corpus",
    "generate_entity_task",
    "generate_kb",
    "generate_mentions",
    "generate_ride_events",
    "generate_sliced_task",
    "generate_stream",
    "generate_tabular",
    "generate_zipfian_keys",
    "theoretical_hit_rate",
    "zipf_probabilities",
]
