"""Serving workload generation: Zipfian request key streams.

Online feature traffic is not uniform — a small head of entities
(power users, popular products, trending items) receives most requests,
following the same Zipfian structure the paper's industrial substrate
exhibits (tail entities in NED, busy drivers in ride events). A serving
tier's cache economics depend entirely on that skew, so the gateway
benchmarks and the closed-loop load generator draw their keys from the
generators here.

Deterministic: all draws come from a seeded ``numpy`` generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError


def zipf_probabilities(n: int, skew: float) -> np.ndarray:
    """Zipfian probability vector over ``n`` ranked items.

    ``p(rank) ∝ rank**-skew`` for ranks 1..n; ``skew=0`` is uniform,
    ``skew=1.0`` is the classic web-traffic shape.
    """
    if n <= 0:
        raise ValidationError(f"n must be positive ({n=})")
    if skew < 0:
        raise ValidationError(f"skew must be >= 0 ({skew=})")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-skew
    return weights / weights.sum()


@dataclass(frozen=True)
class ZipfianWorkloadConfig:
    """Parameters for :func:`generate_zipfian_keys`.

    ``shuffle_ranks`` breaks the rank==key-id identity: popular keys are
    scattered across the id space (as in real traffic) instead of being
    the lowest ids, which keeps caches honest — no accidental locality.
    """

    n_keys: int = 1000
    n_requests: int = 10_000
    skew: float = 1.0
    shuffle_ranks: bool = True

    def validate(self) -> None:
        if self.n_keys <= 0:
            raise ValidationError(f"n_keys must be positive ({self.n_keys=})")
        if self.n_requests <= 0:
            raise ValidationError(
                f"n_requests must be positive ({self.n_requests=})"
            )
        if self.skew < 0:
            raise ValidationError(f"skew must be >= 0 ({self.skew=})")


def generate_zipfian_keys(
    config: ZipfianWorkloadConfig = ZipfianWorkloadConfig(),
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """Draw ``n_requests`` key ids in [0, n_keys) with Zipfian popularity."""
    config.validate()
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    probs = zipf_probabilities(config.n_keys, config.skew)
    ranks = rng.choice(config.n_keys, size=config.n_requests, p=probs)
    if not config.shuffle_ranks:
        return ranks.astype(np.int64)
    permutation = rng.permutation(config.n_keys)
    return permutation[ranks].astype(np.int64)


def theoretical_hit_rate(n_keys: int, skew: float, cache_size: int) -> float:
    """Upper-bound hit rate of a perfect cache holding the ``cache_size``
    most popular of ``n_keys`` Zipfian keys — the planning number that
    says how large the gateway cache must be for a target hit rate."""
    if cache_size <= 0:
        return 0.0
    probs = zipf_probabilities(n_keys, skew)
    return float(probs[: min(cache_size, n_keys)].sum())
