"""Event stream generation.

Feature stores ingest *streaming* features in addition to batch tables
(paper section 2.2.1: "For streaming features, users provide aggregation
functions that are applied on the raw streaming features"). This module
generates timestamped event streams with controllable arrival rates and
per-entity value processes, including regime changes for drift experiments.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class StreamEvent:
    """A single raw streaming event."""

    timestamp: float
    entity_id: int
    value: float
    attributes: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class StreamConfig:
    """Parameters for :func:`generate_stream`.

    ``rate_per_second`` is the Poisson arrival rate across all entities.
    ``regime_changes`` maps a timestamp to a ``(mean, std)`` pair; the value
    process switches to those parameters at that time (used to inject drift
    that monitors must detect).
    """

    duration: float = 3600.0
    rate_per_second: float = 2.0
    n_entities: int = 50
    mean: float = 10.0
    std: float = 2.0
    start_time: float = 0.0
    regime_changes: dict[float, tuple[float, float]] = field(default_factory=dict)

    def validate(self) -> None:
        if self.duration <= 0:
            raise ValidationError(f"duration must be positive ({self.duration=})")
        if self.rate_per_second <= 0:
            raise ValidationError(
                f"rate_per_second must be positive ({self.rate_per_second=})"
            )
        if self.n_entities <= 0:
            raise ValidationError(f"n_entities must be positive ({self.n_entities=})")


class EventStream:
    """An iterable, replayable sequence of :class:`StreamEvent`.

    Events are materialized eagerly (the workloads are laptop-scale) but the
    class exposes an iterator interface so consumers treat it as a stream.
    """

    def __init__(self, events: list[StreamEvent]) -> None:
        self._events = sorted(events, key=lambda e: e.timestamp)

    def __iter__(self) -> Iterator[StreamEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[StreamEvent]:
        return list(self._events)

    def between(self, start: float, end: float) -> list[StreamEvent]:
        """Events with ``start <= timestamp < end``."""
        return [e for e in self._events if start <= e.timestamp < end]

    def values(self) -> np.ndarray:
        return np.array([e.value for e in self._events])

    def timestamps(self) -> np.ndarray:
        return np.array([e.timestamp for e in self._events])


def generate_stream(
    config: StreamConfig = StreamConfig(), seed: int | np.random.Generator = 0
) -> EventStream:
    """Generate a Poisson-arrival event stream with piecewise value regimes."""
    config.validate()
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )

    expected = config.rate_per_second * config.duration
    n_events = int(rng.poisson(expected))
    offsets = np.sort(rng.uniform(0.0, config.duration, size=n_events))
    timestamps = config.start_time + offsets
    entity_ids = rng.integers(0, config.n_entities, size=n_events)

    # Piecewise-constant regimes: sorted switch points partition the horizon.
    switch_times = sorted(config.regime_changes)
    means = np.full(n_events, config.mean)
    stds = np.full(n_events, config.std)
    for switch in switch_times:
        mean, std = config.regime_changes[switch]
        active = timestamps >= switch
        means[active] = mean
        stds[active] = std

    values = rng.normal(means, stds)
    events = [
        StreamEvent(
            timestamp=float(timestamps[i]),
            entity_id=int(entity_ids[i]),
            value=float(values[i]),
        )
        for i in range(n_events)
    ]
    return EventStream(events)
