"""Synthetic knowledge base and entity-mention generator.

Experiment E1 (DESIGN.md) reproduces the paper's section 3.1.1 claim that
adding structured data — entity *types* and *knowledge-graph relations* — to
self-supervised entity disambiguation boosts performance on rare entities by
~40 F1 points (Orr et al., Bootleg). The mechanism the claim rests on:

* entity popularity is Zipfian, so the tail has almost no training mentions;
* memorized co-occurrence signal (entity embeddings) works only for popular
  entities;
* type and relation signal is *shared across entities*, so it generalizes to
  the tail.

This module generates a KB with exactly that structure: Zipfian entities
carrying a type, a KG over entities (networkx graph), ambiguous aliases whose
candidate sets mix popular and rare entities, and mention contexts that blend
entity-specific tokens, type tokens, KG-neighbour tokens and noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class Entity:
    """A knowledge-base entity."""

    entity_id: int
    type_id: int
    alias_id: int
    popularity: float


@dataclass(frozen=True)
class KBConfig:
    """Parameters for :func:`generate_kb`."""

    n_entities: int = 2000
    n_types: int = 25
    n_aliases: int = 400
    zipf_exponent: float = 1.1
    avg_degree: float = 6.0
    type_affinity: float = 0.7

    def validate(self) -> None:
        if self.n_entities < self.n_aliases:
            raise ValidationError(
                f"n_entities ({self.n_entities}) must be >= n_aliases "
                f"({self.n_aliases}) so every alias is ambiguous or unique"
            )
        if self.n_types <= 1:
            raise ValidationError(f"n_types must be > 1 ({self.n_types=})")
        if self.avg_degree <= 0:
            raise ValidationError(f"avg_degree must be positive ({self.avg_degree=})")


class KnowledgeBase:
    """Entities, aliases, types and a relation graph.

    The candidate-generation map (``alias -> candidate entity ids``) is the
    standard first stage of an NED system; the graph supplies the structured
    relation signal.
    """

    def __init__(
        self,
        entities: list[Entity],
        graph: nx.Graph,
        alias_candidates: dict[int, list[int]],
        n_types: int,
    ) -> None:
        self.entities = entities
        self.graph = graph
        self.alias_candidates = alias_candidates
        self.n_types = n_types
        self._popularity = np.array([e.popularity for e in entities])
        self._types = np.array([e.type_id for e in entities], dtype=np.int64)

    def __len__(self) -> int:
        return len(self.entities)

    @property
    def n_entities(self) -> int:
        return len(self.entities)

    @property
    def popularity(self) -> np.ndarray:
        """Popularity prior per entity id (sums to 1)."""
        return self._popularity

    @property
    def types(self) -> np.ndarray:
        """Type id per entity id."""
        return self._types

    def entity(self, entity_id: int) -> Entity:
        return self.entities[entity_id]

    def candidates(self, alias_id: int) -> list[int]:
        """Candidate entity ids for a surface-form alias."""
        if alias_id not in self.alias_candidates:
            raise KeyError(f"unknown alias id {alias_id}")
        return list(self.alias_candidates[alias_id])

    def neighbors(self, entity_id: int) -> set[int]:
        """KG neighbours of an entity."""
        return set(self.graph.neighbors(entity_id))

    def tail_entities(self, quantile: float = 0.5) -> np.ndarray:
        """Entity ids in the bottom ``quantile`` of popularity mass.

        These are the "rare things" of the paper (section 3.1.1).
        """
        order = np.argsort(self._popularity)
        cumulative = np.cumsum(self._popularity[order])
        cutoff = np.searchsorted(cumulative, quantile, side="right") + 1
        return order[:cutoff]


def generate_kb(
    config: KBConfig = KBConfig(), seed: int | np.random.Generator = 0
) -> KnowledgeBase:
    """Generate a Zipfian, typed, related knowledge base.

    Aliases are assigned so that every alias's candidate set mixes head and
    tail entities (sorted entity ids are dealt round-robin over aliases),
    which makes disambiguation genuinely hard for the tail: the popularity
    prior always prefers the head candidate.

    The relation graph is drawn with type affinity: a fraction
    ``type_affinity`` of each entity's edges connect to same-type entities,
    giving the KG signal its generalizing structure.
    """
    config.validate()
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )

    n = config.n_entities
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-config.zipf_exponent
    popularity = weights / weights.sum()

    type_ids = rng.integers(0, config.n_types, size=n)
    # Deal entities (in popularity order) round-robin over aliases so each
    # alias's candidate list spans the popularity spectrum.
    alias_ids = np.arange(n) % config.n_aliases

    entities = [
        Entity(
            entity_id=i,
            type_id=int(type_ids[i]),
            alias_id=int(alias_ids[i]),
            popularity=float(popularity[i]),
        )
        for i in range(n)
    ]

    alias_candidates: dict[int, list[int]] = {}
    for entity in entities:
        alias_candidates.setdefault(entity.alias_id, []).append(entity.entity_id)

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    by_type: dict[int, np.ndarray] = {
        t: np.flatnonzero(type_ids == t) for t in range(config.n_types)
    }
    n_edges = int(config.avg_degree * n / 2)
    for _ in range(n_edges):
        u = int(rng.integers(0, n))
        if rng.random() < config.type_affinity:
            pool = by_type[int(type_ids[u])]
        else:
            pool = None
        v = int(rng.choice(pool)) if pool is not None and len(pool) > 1 else int(
            rng.integers(0, n)
        )
        if u != v:
            graph.add_edge(u, v)

    return KnowledgeBase(
        entities=entities,
        graph=graph,
        alias_candidates=alias_candidates,
        n_types=config.n_types,
    )


@dataclass(frozen=True)
class Mention:
    """A single entity mention to disambiguate.

    ``context`` is a bag of token ids over a synthetic vocabulary laid out as

    * ``[0, n_entities)`` — entity-specific tokens (one idiosyncratic token
      per entity; appears when that entity is discussed),
    * ``[n_entities, n_entities + n_types)`` — type-indicator tokens,
    * ``[... , ... + n_entities)`` — KG-neighbour mention tokens (token
      ``offset + e`` means entity ``e`` is mentioned nearby),
    * the remaining ids — noise tokens.
    """

    mention_id: int
    alias_id: int
    true_entity: int
    candidates: tuple[int, ...]
    context: np.ndarray
    timestamp: float = 0.0


@dataclass(frozen=True)
class MentionConfig:
    """Parameters for :func:`generate_mentions`."""

    n_mentions: int = 8000
    context_length: int = 16
    entity_token_rate: float = 0.30
    type_token_rate: float = 0.25
    relation_token_rate: float = 0.25
    n_noise_tokens: int = 500

    def validate(self) -> None:
        total = self.entity_token_rate + self.type_token_rate + self.relation_token_rate
        if total > 1.0:
            raise ValidationError(
                f"signal token rates must sum to <= 1 (got {total:.3f})"
            )
        if self.n_mentions <= 0 or self.context_length <= 0:
            raise ValidationError("n_mentions and context_length must be positive")


@dataclass(frozen=True)
class MentionVocabulary:
    """Token-id layout of mention contexts (see :class:`Mention`)."""

    n_entities: int
    n_types: int
    n_noise: int

    @property
    def entity_offset(self) -> int:
        return 0

    @property
    def type_offset(self) -> int:
        return self.n_entities

    @property
    def relation_offset(self) -> int:
        return self.n_entities + self.n_types

    @property
    def noise_offset(self) -> int:
        return 2 * self.n_entities + self.n_types

    @property
    def size(self) -> int:
        return 2 * self.n_entities + self.n_types + self.n_noise


@dataclass(frozen=True)
class MentionSample:
    """Mentions plus the vocabulary layout used to generate them."""

    mentions: list[Mention]
    vocabulary: MentionVocabulary

    def split(
        self, train_fraction: float = 0.8, seed: int = 0
    ) -> tuple[list[Mention], list[Mention]]:
        """Random train/dev split (mention-level, stratification-free)."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.mentions))
        cut = int(train_fraction * len(self.mentions))
        train = [self.mentions[i] for i in order[:cut]]
        dev = [self.mentions[i] for i in order[cut:]]
        return train, dev


def generate_mentions(
    kb: KnowledgeBase,
    config: MentionConfig = MentionConfig(),
    seed: int | np.random.Generator = 0,
) -> MentionSample:
    """Sample mentions from a KB with popularity-weighted entity draws.

    Each context token is, independently, an entity-specific token of the
    true entity, a type token of the true entity's type, a KG-neighbour token
    of a random neighbour, or uniform noise — with the configured rates.
    """
    config.validate()
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    vocab = MentionVocabulary(
        n_entities=kb.n_entities, n_types=kb.n_types, n_noise=config.n_noise_tokens
    )

    true_entities = rng.choice(
        kb.n_entities, size=config.n_mentions, p=kb.popularity
    )
    neighbor_lists = [sorted(kb.neighbors(e)) for e in range(kb.n_entities)]

    mentions: list[Mention] = []
    for mention_id in range(config.n_mentions):
        entity_id = int(true_entities[mention_id])
        entity = kb.entity(entity_id)
        neighbors = neighbor_lists[entity_id]

        draws = rng.random(config.context_length)
        tokens = np.empty(config.context_length, dtype=np.int64)
        entity_cut = config.entity_token_rate
        type_cut = entity_cut + config.type_token_rate
        relation_cut = type_cut + config.relation_token_rate
        for j, draw in enumerate(draws):
            if draw < entity_cut:
                tokens[j] = vocab.entity_offset + entity_id
            elif draw < type_cut:
                tokens[j] = vocab.type_offset + entity.type_id
            elif draw < relation_cut and neighbors:
                tokens[j] = vocab.relation_offset + int(rng.choice(neighbors))
            else:
                tokens[j] = vocab.noise_offset + int(rng.integers(0, vocab.n_noise))

        mentions.append(
            Mention(
                mention_id=mention_id,
                alias_id=entity.alias_id,
                true_entity=entity_id,
                candidates=tuple(kb.candidates(entity.alias_id)),
                context=tokens,
                timestamp=float(mention_id),
            )
        )

    return MentionSample(mentions=mentions, vocabulary=vocab)
