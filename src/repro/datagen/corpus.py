"""Synthetic text corpora for self-supervised embedding pretraining.

The embedding-quality experiments (E2-E4 in DESIGN.md) need corpora whose
co-occurrence structure is known: words belong to latent topics, sentences
are drawn from one topic each, and the global word-frequency distribution is
Zipfian. SGNS embeddings trained on such a corpus recover the topic
structure, and the frequency skew reproduces the "rare words are less stable
/ less well represented" phenomenon the paper highlights (sections 3.1.1 and
3.1.2, citing Wendlandt et al. and Schick & Schütze).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters for :func:`generate_corpus`."""

    vocab_size: int = 2000
    n_topics: int = 10
    n_sentences: int = 5000
    sentence_length: int = 12
    zipf_exponent: float = 1.05
    topic_purity: float = 0.9

    def validate(self) -> None:
        if self.vocab_size < self.n_topics:
            raise ValidationError(
                f"vocab_size ({self.vocab_size}) must be >= n_topics ({self.n_topics})"
            )
        if not 0.0 < self.topic_purity <= 1.0:
            raise ValidationError(
                f"topic_purity must be in (0, 1] ({self.topic_purity=})"
            )
        if self.n_sentences <= 0 or self.sentence_length <= 0:
            raise ValidationError("n_sentences and sentence_length must be positive")


@dataclass(frozen=True)
class SyntheticCorpus:
    """A generated corpus with its latent ground truth.

    Attributes:
        sentences: list of word-id arrays, one per sentence.
        word_topics: latent topic id per word (ground-truth similarity
            structure — words sharing a topic should embed nearby).
        sentence_topics: latent topic id per sentence (downstream label).
        word_frequencies: empirical corpus frequency per word id.
    """

    sentences: list[np.ndarray]
    word_topics: np.ndarray
    sentence_topics: np.ndarray
    word_frequencies: np.ndarray

    @property
    def vocab_size(self) -> int:
        return len(self.word_topics)

    @property
    def n_topics(self) -> int:
        return int(self.word_topics.max()) + 1

    def frequency_deciles(self) -> np.ndarray:
        """Assign each word to a frequency decile (0 = rarest, 9 = most common).

        Ties are broken by word id so the assignment is deterministic.
        """
        order = np.lexsort((np.arange(self.vocab_size), self.word_frequencies))
        deciles = np.empty(self.vocab_size, dtype=np.int64)
        for rank, word in enumerate(order):
            deciles[word] = min(9, rank * 10 // self.vocab_size)
        return deciles

    def tokens(self) -> np.ndarray:
        """Concatenate all sentences into a single token-id array."""
        return np.concatenate(self.sentences) if self.sentences else np.array([], int)


def generate_corpus(
    config: CorpusConfig = CorpusConfig(), seed: int | np.random.Generator = 0
) -> SyntheticCorpus:
    """Generate a topic-structured Zipfian corpus.

    Each word is assigned a home topic round-robin over a frequency-ranked
    vocabulary (so every topic gets words across the frequency spectrum).
    Each sentence draws one topic, then draws words from the home-topic
    vocabulary with probability ``topic_purity`` and from the full vocabulary
    otherwise; within either pool, word probabilities follow the global
    Zipfian weights.
    """
    config.validate()
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )

    vocab = config.vocab_size
    ranks = np.arange(1, vocab + 1, dtype=float)
    zipf_weights = ranks**-config.zipf_exponent
    zipf_probs = zipf_weights / zipf_weights.sum()

    # Round-robin topic assignment over frequency ranks: topic t owns words
    # t, t + T, t + 2T, ... so topics are frequency-balanced.
    word_topics = np.arange(vocab) % config.n_topics

    topic_probs: list[np.ndarray] = []
    for topic in range(config.n_topics):
        member = word_topics == topic
        probs = np.where(member, zipf_probs, 0.0)
        topic_probs.append(probs / probs.sum())

    sentence_topics = rng.integers(0, config.n_topics, size=config.n_sentences)
    sentences: list[np.ndarray] = []
    counts = np.zeros(vocab, dtype=np.int64)
    for topic in sentence_topics:
        on_topic = rng.random(config.sentence_length) < config.topic_purity
        words = np.where(
            on_topic,
            rng.choice(vocab, size=config.sentence_length, p=topic_probs[topic]),
            rng.choice(vocab, size=config.sentence_length, p=zipf_probs),
        ).astype(np.int64)
        np.add.at(counts, words, 1)
        sentences.append(words)

    return SyntheticCorpus(
        sentences=sentences,
        word_topics=word_topics.astype(np.int64),
        sentence_topics=sentence_topics.astype(np.int64),
        word_frequencies=counts,
    )
