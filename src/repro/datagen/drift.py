"""Drift and anomaly injectors.

Monitoring experiments (E6, E7) need ground-truth anomalies: the paper's
section 2.2.3 says feature stores must surface "training-deployment data
skew and near real-time outlier and input drift detection". Each injector
transforms a column (or dataset) and records exactly which rows/windows were
corrupted, so benchmark harnesses can compute detection precision/recall.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError


class DriftInjector(ABC):
    """Transforms a 1-D value array, corrupting rows in ``[start, end)``."""

    @abstractmethod
    def apply(
        self, values: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(corrupted_values, corrupted_mask)``.

        The input array is never mutated; the mask marks affected rows.
        """

    @staticmethod
    def _window_mask(n: int, start_fraction: float, end_fraction: float) -> np.ndarray:
        if not 0.0 <= start_fraction < end_fraction <= 1.0:
            raise ValidationError(
                f"need 0 <= start < end <= 1 (got {start_fraction}, {end_fraction})"
            )
        mask = np.zeros(n, dtype=bool)
        mask[int(start_fraction * n) : int(end_fraction * n)] = True
        return mask


@dataclass(frozen=True)
class MeanShift(DriftInjector):
    """Add ``delta`` to values inside a fractional row window."""

    delta: float
    start_fraction: float = 0.5
    end_fraction: float = 1.0

    def apply(
        self, values: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        mask = self._window_mask(len(values), self.start_fraction, self.end_fraction)
        out = values.copy()
        out[mask] = out[mask] + self.delta
        return out, mask


@dataclass(frozen=True)
class VarianceShift(DriftInjector):
    """Scale deviations from the window mean by ``factor`` inside a window."""

    factor: float
    start_fraction: float = 0.5
    end_fraction: float = 1.0

    def apply(
        self, values: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.factor <= 0:
            raise ValidationError(f"factor must be positive ({self.factor=})")
        mask = self._window_mask(len(values), self.start_fraction, self.end_fraction)
        out = values.copy()
        window = out[mask]
        finite = window[~np.isnan(window)]
        if len(finite):
            center = float(np.mean(finite))
            out[mask] = center + (window - center) * self.factor
        return out, mask


@dataclass(frozen=True)
class NullBurst(DriftInjector):
    """Set a random ``rate`` of values to NaN inside a window.

    This is the classic upstream-pipeline failure a null-count metric
    (paper section 2.2.2) is designed to catch.
    """

    rate: float
    start_fraction: float = 0.5
    end_fraction: float = 1.0

    def apply(
        self, values: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        if not 0.0 < self.rate <= 1.0:
            raise ValidationError(f"rate must be in (0, 1] ({self.rate=})")
        window = self._window_mask(len(values), self.start_fraction, self.end_fraction)
        hit = window & (rng.random(len(values)) < self.rate)
        out = values.astype(float).copy()
        out[hit] = np.nan
        return out, hit


@dataclass(frozen=True)
class CategoricalShift(DriftInjector):
    """Remap a fraction of categorical codes to a single new category.

    Models the "new enum value appeared upstream" failure mode; the affected
    rows take the code ``new_category``.
    """

    new_category: int
    rate: float = 0.5
    start_fraction: float = 0.5
    end_fraction: float = 1.0

    def apply(
        self, values: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        if not 0.0 < self.rate <= 1.0:
            raise ValidationError(f"rate must be in (0, 1] ({self.rate=})")
        window = self._window_mask(len(values), self.start_fraction, self.end_fraction)
        hit = window & (rng.random(len(values)) < self.rate)
        out = values.copy()
        out[hit] = self.new_category
        return out, hit


def inject(
    values: np.ndarray,
    injectors: list[DriftInjector],
    seed: int | np.random.Generator = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply injectors in sequence; return values and the union corruption mask."""
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    out = values.copy()
    corrupted = np.zeros(len(values), dtype=bool)
    for injector in injectors:
        out, mask = injector.apply(out, rng)
        corrupted |= mask
    return out, corrupted
