"""Bus observability: throughput, consumer lag, end-to-end freshness.

Paper §2.2.3: operational metrics are what "allow users to be informed of
potential 'gremlins' in the system" — and on the ingest plane the gremlin
that silently degrades models is *staleness*: events that sit in the log
while the online store serves yesterday's aggregate. This module tracks
the three surfaces an on-call engineer needs for the write path:

* **throughput** — records/bytes produced and consumed, batches flushed,
  backpressure events (the producer stalling is the first sign the bus is
  undersized);
* **consumer lag** — per-partition records between the durable log end and
  each group's cursor (lag growing without bound = a sink that cannot keep
  up);
* **freshness lag** — the end-to-end ``event_time → online write_time``
  distribution per namespace, recorded by the sinks at the moment a value
  lands in the online store. This is the number the paper's staleness
  argument is about, and it is mirrored into an attached serving-metrics
  facade (duck-typed: anything with ``freshness(namespace).record``) so
  the serving tier's snapshot — and the dashboard's serving section —
  surfaces it next to the read-path latencies.

Every series is allocated through a
:class:`~repro.runtime.telemetry.MetricsRegistry` (``bus_*`` namespace);
pass a shared registry to merge the write path into the same
Prometheus/JSON export as the serving and vector planes.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from repro.runtime.telemetry import Gauge, LatencyHistogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - type checkers only (no runtime import)
    from repro.serving import ServingMetrics


class BusMetrics:
    """Registry of producer/consumer/sink metrics for one bus deployment.

    ``registry`` defaults to a private
    :class:`~repro.runtime.telemetry.MetricsRegistry` (full isolation, the
    pre-runtime behaviour); hand the same registry to every plane and the
    whole deployment exports through one endpoint. ``serving`` is the
    optional read-tier facade whose freshness histograms are mirrored —
    when both share one registry the mirrored series is literally the same
    object.
    """

    def __init__(
        self,
        serving: "ServingMetrics | None" = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        # producer side
        self.produced = self.registry.counter("bus_produced_total")
        self.produced_bytes = self.registry.counter("bus_produced_bytes_total")
        self.produce_batches = self.registry.counter("bus_produce_batches_total")
        self.backpressure_events = self.registry.counter(
            "bus_backpressure_events_total"
        )
        # consumer side
        self.consumed = self.registry.counter("bus_consumed_total")
        self.commits = self.registry.counter("bus_commits_total")
        # sink side
        self.applied = self.registry.counter("bus_applied_total")
        self.duplicates_skipped = self.registry.counter(
            "bus_duplicates_skipped_total"
        )
        self._lags: dict[int, Gauge] = {}
        self._freshness: dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._serving = serving

    # -- lag -----------------------------------------------------------------

    def set_lag(self, partition: int, lag: int) -> None:
        with self._lock:
            gauge = self._lags.get(partition)
            if gauge is None:
                gauge = self._lags[partition] = self.registry.gauge(
                    "bus_consumer_lag", partition=partition
                )
        gauge.set(lag)

    def lag(self, partition: int) -> int:
        with self._lock:
            gauge = self._lags.get(partition)
        return 0 if gauge is None else gauge.value

    def lags(self) -> dict[int, int]:
        with self._lock:
            items = list(self._lags.items())
        return {partition: gauge.value for partition, gauge in sorted(items)}

    # -- freshness -----------------------------------------------------------

    def freshness(self, namespace: str) -> LatencyHistogram:
        """The per-namespace event_time→write_time lag histogram (lazy)."""
        with self._lock:
            histogram = self._freshness.get(namespace)
            if histogram is None:
                histogram = self._freshness[namespace] = self.registry.histogram(
                    "bus_freshness_lag_seconds", namespace=namespace
                )
            return histogram

    def freshness_namespaces(self) -> list[str]:
        with self._lock:
            return sorted(self._freshness)

    def record_freshness(self, namespace: str, lag_s: float) -> None:
        """Record one end-to-end freshness sample (clamped at 0).

        Simulated clocks can legitimately sit behind event time; a negative
        lag means "fresher than now" and is recorded as 0.
        """
        lag_s = max(0.0, lag_s)
        self.freshness(namespace).record(lag_s)
        if self._serving is not None:
            self._serving.freshness(namespace).record(lag_s)

    # -- snapshot ------------------------------------------------------------

    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    def reset_window(self) -> None:
        """Restart the rate window (keeps counters and histograms)."""
        self._started = time.monotonic()

    def snapshot(self) -> dict[str, object]:
        """One nested JSON-able dict with every bus metric."""
        elapsed = self.elapsed_s()
        produced = self.produced.value
        consumed = self.consumed.value
        return {
            "elapsed_s": elapsed,
            "produced": produced,
            "produced_bytes": self.produced_bytes.value,
            "produce_batches": self.produce_batches.value,
            "produce_events_s": produced / elapsed if elapsed > 0 else 0.0,
            "backpressure_events": self.backpressure_events.value,
            "consumed": consumed,
            "consume_events_s": consumed / elapsed if elapsed > 0 else 0.0,
            "commits": self.commits.value,
            "applied": self.applied.value,
            "duplicates_skipped": self.duplicates_skipped.value,
            "lag": {str(p): lag for p, lag in self.lags().items()},
            "freshness": {
                namespace: self.freshness(namespace).summary()
                for namespace in self.freshness_namespaces()
            },
        }
