"""Batching producer with entity-hash routing and bounded backpressure.

The write edge of the ingestion bus. A producer buffers records per
partition (the partition is a stable hash of ``entity_id``, so one
entity's events always land on one partition in production order) and
flushes a partition's buffer as one ``append_many`` batch — the log-level
analogue of the serving gateway's micro-batching.

Backpressure is a *byte* bound, not a record bound: ``max_inflight_bytes``
caps encoded-but-unflushed bytes across all partition buffers. On
overflow, policy ``BLOCK`` drains the buffers inline (the caller pays the
flush latency — the classic producer stall), policy ``RAISE`` raises
:class:`~repro.errors.Backpressure` so an upstream queue can shed load.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.bus.log import BusRecord, SegmentLog, record_size
from repro.datagen.streams import StreamEvent
from repro.errors import Backpressure, ValidationError

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.bus.metrics import BusMetrics


class OverflowPolicy(enum.Enum):
    """What :meth:`Producer.send` does when the in-flight bound is hit."""

    BLOCK = "block"  # drain buffers inline, then accept the record
    RAISE = "raise"  # raise Backpressure; caller decides


@dataclass(frozen=True)
class ProducerStats:
    """Counters accumulated over a producer's lifetime."""

    records_sent: int
    batches_flushed: int
    bytes_sent: int
    backpressure_hits: int


class Producer:
    """Routes, batches and appends records to a :class:`SegmentLog`.

    ``send`` accepts either a :class:`BusRecord` or a
    :class:`~repro.datagen.streams.StreamEvent`; every accepted record is
    stamped with a producer-monotonic ``sequence`` so downstream merges can
    reconstruct production order across partitions.
    """

    def __init__(
        self,
        log: SegmentLog,
        batch_records: int = 256,
        max_inflight_bytes: int = 1 << 20,
        overflow: OverflowPolicy = OverflowPolicy.BLOCK,
        metrics: "BusMetrics | None" = None,
    ) -> None:
        if batch_records <= 0:
            raise ValidationError(f"batch_records must be positive ({batch_records=})")
        if max_inflight_bytes <= 0:
            raise ValidationError(
                f"max_inflight_bytes must be positive ({max_inflight_bytes=})"
            )
        self.log = log
        self.batch_records = batch_records
        self.max_inflight_bytes = max_inflight_bytes
        self.overflow = overflow
        self.metrics = metrics
        self._buffers: list[list[BusRecord]] = [[] for _ in range(log.n_partitions)]
        self._buffered_bytes = 0
        self._sequence = 0
        self._records_sent = 0
        self._batches_flushed = 0
        self._bytes_sent = 0
        self._backpressure_hits = 0

    # -- send path -----------------------------------------------------------

    def _coerce(self, event: BusRecord | StreamEvent) -> BusRecord:
        if isinstance(event, StreamEvent):
            record = BusRecord(
                entity_id=event.entity_id,
                timestamp=event.timestamp,
                value=event.value,
                attributes=dict(event.attributes),
                sequence=self._sequence,
            )
        elif isinstance(event, BusRecord):
            record = BusRecord(
                entity_id=event.entity_id,
                timestamp=event.timestamp,
                value=event.value,
                attributes=event.attributes,
                sequence=self._sequence,
            )
        else:
            raise ValidationError(
                f"send() takes BusRecord or StreamEvent, got {type(event).__name__}"
            )
        self._sequence += 1
        return record

    def send(self, event: BusRecord | StreamEvent) -> int:
        """Buffer one record; return the partition it was routed to.

        May flush (policy ``BLOCK``) or raise
        :class:`~repro.errors.Backpressure` (policy ``RAISE``) when the
        byte bound would be exceeded.
        """
        record = self._coerce(event)
        size = record_size(record)
        if self._buffered_bytes + size > self.max_inflight_bytes:
            self._backpressure_hits += 1
            if self.metrics is not None:
                self.metrics.backpressure_events.inc()
            if self.overflow is OverflowPolicy.RAISE:
                self._sequence -= 1  # the record was not accepted
                raise Backpressure(
                    f"in-flight bytes {self._buffered_bytes} + {size} would exceed "
                    f"max_inflight_bytes={self.max_inflight_bytes}"
                )
            self.flush()
        partition = self.log.partition_for(record.entity_id)
        self._buffers[partition].append(record)
        self._buffered_bytes += size
        self._records_sent += 1
        if len(self._buffers[partition]) >= self.batch_records:
            self._flush_partition(partition)
        return partition

    def send_many(self, events) -> int:
        """``send`` each event; return the number accepted."""
        count = 0
        for event in events:
            self.send(event)
            count += 1
        return count

    # -- flush path ----------------------------------------------------------

    def _flush_partition(self, partition: int) -> None:
        buffer = self._buffers[partition]
        if not buffer:
            return
        batch_bytes = sum(record_size(r) for r in buffer)
        self.log.append_many(partition, buffer)
        self._buffers[partition] = []
        self._buffered_bytes -= batch_bytes
        self._batches_flushed += 1
        self._bytes_sent += batch_bytes
        if self.metrics is not None:
            self.metrics.produced.inc(len(buffer))
            self.metrics.produced_bytes.inc(batch_bytes)
            self.metrics.produce_batches.inc()

    def flush(self, sync: bool = False) -> None:
        """Drain every partition buffer into the log.

        ``sync=True`` additionally forces an fsync barrier (regardless of
        the log's fsync policy) — the producer's explicit "ack" point: a
        record is *acknowledged* once a ``flush(sync=True)`` covering it
        returns.
        """
        for partition in range(self.log.n_partitions):
            self._flush_partition(partition)
        if sync:
            self.log.sync()

    @property
    def buffered_bytes(self) -> int:
        return self._buffered_bytes

    @property
    def stats(self) -> ProducerStats:
        return ProducerStats(
            records_sent=self._records_sent,
            batches_flushed=self._batches_flushed,
            bytes_sent=self._bytes_sent,
            backpressure_hits=self._backpressure_hits,
        )

    def __enter__(self) -> "Producer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.flush(sync=True)
