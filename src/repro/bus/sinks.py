"""Sinks: where consumed bus records become feature-store state.

A sink applies batches of :class:`~repro.bus.consumer.ConsumedRecord` to a
store. Every sink consults a :class:`~repro.bus.consumer.DedupeWindow`
keyed on ``(partition, offset)`` *before* applying, so the at-least-once
redelivery that follows a crash-before-commit is recognized and skipped —
acknowledged records are applied exactly once even though they may be
delivered twice.

* :class:`OnlineStoreSink` — raw pass-through into an online namespace via
  one bulk :meth:`~repro.storage.online.OnlineStore.write_many` per batch,
  recording the end-to-end freshness lag per row.
* :class:`OfflineStoreSink` — bulk append into an offline log table (the
  warehouse copy of the raw stream).
* :class:`AggregatingSink` — the bus-native replacement for running
  :class:`~repro.streaming.StreamProcessor` inline: it buffers consumed
  records, restores the global event-time order across partitions (stable
  on the producer's ``sequence`` stamp), and drives an internal processor
  on :meth:`flush` — so its online/offline output is *identical* to the
  legacy synchronous path on the same stream (asserted by
  ``tests/bus/test_sinks.py``).
* :func:`replay` — the backfill story: stream a log from offset 0 through
  fresh sinks, re-deriving online state byte-for-byte.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.bus.consumer import ConsumedRecord, DedupeWindow
from repro.bus.log import SegmentLog
from repro.datagen.streams import StreamEvent
from repro.storage.offline import OfflineStore, TableSchema
from repro.storage.online import OnlineStore
from repro.streaming import ProcessorStats, StreamFeature, StreamProcessor

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.bus.metrics import BusMetrics


class Sink(ABC):
    """Applies consumed record batches to a store, idempotently."""

    @abstractmethod
    def apply_batch(self, batch: list[ConsumedRecord]) -> int:
        """Apply the not-yet-seen sub-batch; return how many were applied."""

    def flush(self) -> None:
        """Finish any buffered work (no-op for unbuffered sinks)."""


class OnlineStoreSink(Sink):
    """Raw pass-through: one feature column per record value + attributes.

    Each record becomes ``{feature: value, **attributes}`` for its entity
    at its event time, written through one bulk ``write_many`` per batch.
    The freshness lag ``store_clock.now() - event_time`` is recorded per
    applied row into the bus metrics (and mirrored into an attached
    serving-metrics registry per namespace).
    """

    def __init__(
        self,
        online: OnlineStore,
        namespace: str,
        feature: str = "value",
        ttl: float | None = None,
        dedupe: DedupeWindow | None = None,
        metrics: "BusMetrics | None" = None,
    ) -> None:
        self.online = online
        self.namespace = namespace
        self.feature = feature
        self.dedupe = dedupe or DedupeWindow()
        self.metrics = metrics
        if namespace not in online.namespaces():
            online.create_namespace(namespace, ttl=ttl)

    def apply_batch(self, batch: list[ConsumedRecord]) -> int:
        fresh = self.dedupe.filter_new(batch)
        if not fresh:
            if self.metrics is not None and batch:
                self.metrics.duplicates_skipped.inc(len(batch))
            return 0
        rows = [
            (
                c.record.entity_id,
                {self.feature: c.record.value, **c.record.attributes},
                c.record.timestamp,
            )
            for c in fresh
        ]
        self.online.write_many(self.namespace, rows)
        now = self.online.clock.now()
        for consumed in fresh:
            self.dedupe.mark(consumed.partition, consumed.offset)
            if self.metrics is not None:
                self.metrics.record_freshness(
                    self.namespace, now - consumed.record.timestamp
                )
        if self.metrics is not None:
            self.metrics.applied.inc(len(fresh))
            if len(batch) > len(fresh):
                self.metrics.duplicates_skipped.inc(len(batch) - len(fresh))
        return len(fresh)


class OfflineStoreSink(Sink):
    """Bulk-appends raw records into an offline log table."""

    def __init__(
        self,
        offline: OfflineStore,
        table: str,
        feature: str = "value",
        dedupe: DedupeWindow | None = None,
        metrics: "BusMetrics | None" = None,
    ) -> None:
        self.offline = offline
        self.table_name = table
        self.feature = feature
        self.dedupe = dedupe or DedupeWindow()
        self.metrics = metrics
        if not offline.has_table(table):
            offline.create_table(table, TableSchema(columns={feature: "float"}))

    def apply_batch(self, batch: list[ConsumedRecord]) -> int:
        fresh = self.dedupe.filter_new(batch)
        if self.metrics is not None and len(batch) > len(fresh):
            self.metrics.duplicates_skipped.inc(len(batch) - len(fresh))
        if not fresh:
            return 0
        rows = [
            {
                "entity_id": c.record.entity_id,
                "timestamp": c.record.timestamp,
                self.feature: c.record.value,
            }
            for c in fresh
        ]
        self.offline.table(self.table_name).append(rows)
        for consumed in fresh:
            self.dedupe.mark(consumed.partition, consumed.offset)
        if self.metrics is not None:
            self.metrics.applied.inc(len(fresh))
        return len(fresh)


class AggregatingSink(Sink):
    """Reproduces :class:`StreamProcessor` semantics on top of the bus.

    Consumed records are buffered (dedupe-filtered) and, on :meth:`flush`,
    sorted by ``(timestamp, sequence)`` — the producer's stamp restores
    the original cross-partition production order for equal timestamps —
    then run through an internal :class:`StreamProcessor`. Flushing after
    a full drain therefore yields stores identical to the legacy inline
    path; flushing mid-stream trades that exactness for bounded memory
    (each flush issues the processor's final emit at its last event).
    """

    def __init__(
        self,
        features: list[StreamFeature],
        online: OnlineStore,
        offline: OfflineStore,
        namespace: str,
        log_table: str,
        emit_interval: float = 60.0,
        ttl: float | None = None,
        emit_all: bool = False,
        dedupe: DedupeWindow | None = None,
        metrics: "BusMetrics | None" = None,
    ) -> None:
        self.processor = StreamProcessor(
            features=features,
            online=online,
            offline=offline,
            namespace=namespace,
            log_table=log_table,
            emit_interval=emit_interval,
            ttl=ttl,
            emit_all=emit_all,
        )
        self.namespace = namespace
        self.dedupe = dedupe or DedupeWindow()
        self.metrics = metrics
        self._pending: list[tuple[float, int, StreamEvent]] = []
        self._events_processed = 0
        self._emits = 0
        self._online_writes = 0
        self._offline_rows = 0
        self._skipped_writes = 0

    def apply_batch(self, batch: list[ConsumedRecord]) -> int:
        fresh = self.dedupe.filter_new(batch)
        if self.metrics is not None and len(batch) > len(fresh):
            self.metrics.duplicates_skipped.inc(len(batch) - len(fresh))
        for consumed in fresh:
            record = consumed.record
            self._pending.append(
                (
                    record.timestamp,
                    record.sequence,
                    StreamEvent(
                        timestamp=record.timestamp,
                        entity_id=record.entity_id,
                        value=record.value,
                        attributes=dict(record.attributes),
                    ),
                )
            )
            self.dedupe.mark(consumed.partition, consumed.offset)
        if self.metrics is not None and fresh:
            self.metrics.applied.inc(len(fresh))
        return len(fresh)

    @property
    def pending(self) -> int:
        """Buffered events awaiting the next :meth:`flush`."""
        return len(self._pending)

    def flush(self) -> ProcessorStats:
        """Process buffered events in global event-time order."""
        if not self._pending:
            return self.stats
        self._pending.sort(key=lambda item: (item[0], item[1]))
        events = [event for __, __, event in self._pending]
        self._pending = []
        stats = self.processor.process(events)
        self._events_processed += stats.events_processed
        self._emits += stats.emits
        self._online_writes += stats.online_writes
        self._offline_rows += stats.offline_rows
        self._skipped_writes += stats.skipped_writes
        if self.metrics is not None:
            now = self.processor.online.clock.now()
            for event in events:
                self.metrics.record_freshness(
                    self.namespace, now - event.timestamp
                )
        return self.stats

    @property
    def stats(self) -> ProcessorStats:
        """Accumulated processor stats across every flush."""
        return ProcessorStats(
            events_processed=self._events_processed,
            emits=self._emits,
            online_writes=self._online_writes,
            offline_rows=self._offline_rows,
            skipped_writes=self._skipped_writes,
        )


def replay(
    log: SegmentLog,
    sinks: list[Sink] | Sink,
    from_offset: int = 0,
    batch_size: int = 2048,
) -> int:
    """Re-materialize store state by streaming the log through ``sinks``.

    This is the backfill story the durable log buys: point *fresh* sinks
    (fresh stores, fresh dedupe windows) at offset 0 and the online state
    of a clean run is reproduced byte-for-byte — per-entity order is
    guaranteed by partition routing, cross-partition order is restored by
    the :class:`AggregatingSink` buffer, and the online store's
    last-event-time-wins rule makes the raw sink order-insensitive.

    Returns the number of records streamed (per sink application counts
    may be lower if a sink's dedupe window had already seen some).
    """
    sink_list = [sinks] if isinstance(sinks, Sink) else list(sinks)
    total = 0
    for partition in range(log.n_partitions):
        position = from_offset
        while True:
            batch = log.read(partition, position, batch_size)
            if not batch:
                break
            consumed = [
                ConsumedRecord(partition, offset, record)
                for offset, record in batch
            ]
            for sink in sink_list:
                sink.apply_batch(consumed)
            position = batch[-1][0] + 1
            total += len(batch)
    for sink in sink_list:
        sink.flush()
    return total
