"""The durable core of the ingestion bus: a partitioned segment log.

Production feature platforms put a replayable log (Kafka, Kinesis, event
hubs) between event producers and the dual store — the paper's streaming
path (§2.2.1) assumes exactly this substrate when it says the FS
"orchestrates the updates to the features based on the user-defined
cadence". This module is that substrate at laptop scale:

* **Partitions** — ``n_partitions`` independent append-only logs; a stable
  hash of ``entity_id`` picks the partition, so *per-entity* order is
  total even though partitions are independent.
* **Segments** — each partition is a directory of fixed-prefix files named
  by their base offset (``00000000000000000000.seg``); the active tail
  segment rotates once it exceeds ``segment_bytes``, which bounds both
  recovery-scan time and the unit of retention.
* **Framing** — every record is ``[u32 length][u32 crc32][payload]``
  (little-endian); the CRC covers the payload, so a torn write is
  detectable at the exact record boundary.
* **Fsync policy** — durability is a knob, as in every real log:
  ``PER_RECORD`` fsyncs on each append, ``GROUP`` commits every N records
  or T seconds (whichever first), ``NONE`` leaves flushing to the OS.
  The E17 bench (``bench_e17_ingestion_bus.py``) measures the cost curve.
* **Crash recovery** — :class:`SegmentLog` opens by scanning the *tail*
  segment of each partition, keeping the longest prefix of CRC-valid
  frames and truncating whatever a crash tore mid-write. Interior
  segments were sealed by rotation and are never re-scanned.

Offsets are per-partition, dense, and 0-based: the pair
``(partition, offset)`` names a record for consumers, checkpoints and the
dedupe window.
"""

from __future__ import annotations

import enum
import json
import os
import struct
import threading
import time
import zlib
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import BusError, CorruptRecordError, ValidationError

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
_FIXED = struct.Struct("<qqdd")  # sequence, entity_id, timestamp, value
_MAX_PAYLOAD = 1 << 26  # 64 MiB: anything larger is framing corruption

_SEGMENT_SUFFIX = ".seg"
_META_FILE = "meta.json"


class FsyncPolicy(enum.Enum):
    """When appended records become durable."""

    NONE = "none"  # OS page cache decides; fastest, weakest
    GROUP = "group"  # group commit: every N records or T seconds
    PER_RECORD = "per_record"  # fsync each append; strongest, slowest


@dataclass(frozen=True)
class FsyncConfig:
    """Durability knobs for a :class:`SegmentLog`.

    ``group_records`` / ``group_interval_s`` only matter under
    ``FsyncPolicy.GROUP``: a commit happens when either bound is hit.
    """

    policy: FsyncPolicy = FsyncPolicy.GROUP
    group_records: int = 256
    group_interval_s: float = 0.05

    def validate(self) -> None:
        if self.group_records <= 0:
            raise ValidationError(
                f"group_records must be positive ({self.group_records=})"
            )
        if self.group_interval_s <= 0:
            raise ValidationError(
                f"group_interval_s must be positive ({self.group_interval_s=})"
            )


@dataclass(frozen=True)
class BusRecord:
    """One event on the bus.

    ``sequence`` is a producer-assigned monotonic stamp used to make
    cross-partition merges deterministic (equal-timestamp events replay in
    production order); it is carried on the wire but has no meaning to the
    log itself.
    """

    entity_id: int
    timestamp: float  # event time, seconds
    value: float
    attributes: dict[str, float] = field(default_factory=dict)
    sequence: int = 0


def encode_record(record: BusRecord) -> bytes:
    """Serialize ``record`` to one framed ``[len][crc][payload]`` blob."""
    attrs = (
        json.dumps(record.attributes, sort_keys=True, separators=(",", ":")).encode()
        if record.attributes
        else b""
    )
    payload = (
        _FIXED.pack(
            record.sequence, record.entity_id, record.timestamp, record.value
        )
        + attrs
    )
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> BusRecord:
    """Inverse of :func:`encode_record`'s payload half."""
    sequence, entity_id, timestamp, value = _FIXED.unpack_from(payload)
    tail = payload[_FIXED.size :]
    attributes = json.loads(tail) if tail else {}
    return BusRecord(
        entity_id=entity_id,
        timestamp=timestamp,
        value=value,
        attributes=attributes,
        sequence=sequence,
    )


def decode_frame(frame: bytes) -> BusRecord:
    """Full inverse of :func:`encode_record`: verify framing, then decode.

    The cluster plane's log shipping moves whole frames between nodes;
    the follower calls this before appending, so a frame damaged in
    flight is rejected *before* it can enter the replica log. Raises
    :class:`~repro.errors.CorruptRecordError` on a short frame, an
    implausible length, trailing garbage, or a CRC mismatch.
    """
    if len(frame) < _FRAME.size:
        raise CorruptRecordError(
            f"frame shorter than its header ({len(frame)} bytes)"
        )
    length, crc = _FRAME.unpack_from(frame)
    if length <= 0 or length > _MAX_PAYLOAD:
        raise CorruptRecordError(f"implausible frame payload length {length}")
    if len(frame) != _FRAME.size + length:
        raise CorruptRecordError(
            f"frame length mismatch: header says {length}, "
            f"got {len(frame) - _FRAME.size} payload bytes"
        )
    payload = frame[_FRAME.size :]
    if zlib.crc32(payload) != crc:
        raise CorruptRecordError("frame CRC mismatch")
    return decode_payload(payload)


def record_size(record: BusRecord) -> int:
    """On-disk bytes of one framed record (used for backpressure accounting)."""
    return len(encode_record(record))


def _scan_frames(data: bytes, max_records: int | None = None) -> tuple[int, int]:
    """Return ``(n_valid_records, valid_byte_length)`` of a segment image.

    Stops at the first frame that is short, oversized, or fails its CRC —
    the definition of a torn/corrupt suffix.
    """
    pos = 0
    count = 0
    size = len(data)
    while max_records is None or count < max_records:
        if pos + _FRAME.size > size:
            break
        length, crc = _FRAME.unpack_from(data, pos)
        if length <= 0 or length > _MAX_PAYLOAD or pos + _FRAME.size + length > size:
            break
        payload = data[pos + _FRAME.size : pos + _FRAME.size + length]
        if zlib.crc32(payload) != crc:
            break
        pos += _FRAME.size + length
        count += 1
    return count, pos


class _PartitionLog:
    """One partition: a directory of segments plus the open tail."""

    def __init__(self, directory: Path, segment_bytes: int, fsync: FsyncConfig) -> None:
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        self._lock = threading.Lock()
        self._bases: list[int] = []  # sorted segment base offsets
        self._tail: object | None = None  # open file object (append mode)
        self._tail_base = 0
        self._tail_records = 0
        self._tail_bytes = 0
        self._unsynced = 0
        self._last_sync = time.monotonic()
        self.truncated_bytes = 0  # torn bytes discarded at recovery
        self.directory.mkdir(parents=True, exist_ok=True)
        self._recover()

    # -- lifecycle -----------------------------------------------------------

    def _segment_path(self, base: int) -> Path:
        return self.directory / f"{base:020d}{_SEGMENT_SUFFIX}"

    def _recover(self) -> None:
        bases = sorted(
            int(p.stem) for p in self.directory.glob(f"*{_SEGMENT_SUFFIX}")
        )
        if not bases:
            self._bases = [0]
            self._tail_base = 0
            self._tail_records = 0
            self._tail_bytes = 0
            self._tail = open(self._segment_path(0), "ab")
            return
        self._bases = bases
        tail_base = bases[-1]
        path = self._segment_path(tail_base)
        data = path.read_bytes()
        count, valid = _scan_frames(data)
        if valid < len(data):
            # A crash tore the final write(s): truncate to the last frame
            # whose CRC survives. Nothing past `valid` was ever durable.
            self.truncated_bytes = len(data) - valid
            with open(path, "r+b") as handle:
                handle.truncate(valid)
                handle.flush()
                os.fsync(handle.fileno())
        self._tail_base = tail_base
        self._tail_records = count
        self._tail_bytes = valid
        self._tail = open(path, "ab")

    def close(self) -> None:
        with self._lock:
            if self._tail is not None:
                self._tail.flush()
                self._tail.close()
                self._tail = None

    # -- append path ---------------------------------------------------------

    @property
    def end_offset(self) -> int:
        """The offset the *next* appended record will receive."""
        with self._lock:
            return self._tail_base + self._tail_records

    def append_many(self, records: list[BusRecord]) -> list[int]:
        """Append records in order; return their assigned offsets."""
        if not records:
            return []
        offsets: list[int] = []
        with self._lock:
            if self._tail is None:
                raise BusError(f"partition log {self.directory} is closed")
            per_record = self.fsync.policy is FsyncPolicy.PER_RECORD
            for record in records:
                frame = encode_record(record)
                if (
                    self._tail_bytes
                    and self._tail_bytes + len(frame) > self.segment_bytes
                ):
                    self._rotate_locked()
                self._tail.write(frame)
                self._tail_bytes += len(frame)
                offsets.append(self._tail_base + self._tail_records)
                self._tail_records += 1
                self._unsynced += 1
                if per_record:
                    self._sync_locked()
            # Flush on every append batch so concurrent readers (and the
            # recovery scan) always see complete frames; fsync stays policy-
            # gated — flushing is ~2us, fsync is the expensive barrier.
            self._tail.flush()
            if self.fsync.policy is FsyncPolicy.GROUP and (
                self._unsynced >= self.fsync.group_records
                or time.monotonic() - self._last_sync >= self.fsync.group_interval_s
            ):
                self._sync_locked()
        return offsets

    def _rotate_locked(self) -> None:
        # Seal the old tail durably: rotation is the promise that interior
        # segments never need a recovery scan.
        self._tail.flush()
        os.fsync(self._tail.fileno())
        self._tail.close()
        new_base = self._tail_base + self._tail_records
        self._bases.append(new_base)
        self._tail_base = new_base
        self._tail_records = 0
        self._tail_bytes = 0
        self._unsynced = 0
        self._last_sync = time.monotonic()
        self._tail = open(self._segment_path(new_base), "ab")

    def _sync_locked(self) -> None:
        self._tail.flush()
        os.fsync(self._tail.fileno())
        self._unsynced = 0
        self._last_sync = time.monotonic()

    def flush(self, sync: bool = False) -> None:
        with self._lock:
            if self._tail is None:
                return
            self._tail.flush()
            if sync:
                self._sync_locked()

    # -- read path -----------------------------------------------------------

    def read(self, start_offset: int, max_records: int) -> list[tuple[int, BusRecord]]:
        """Records ``[start_offset, ...)``, at most ``max_records`` of them.

        Returns ``(offset, record)`` pairs in offset order. Reading past the
        end returns an empty list (the consumer's "caught up" signal).
        """
        if start_offset < 0:
            raise ValidationError(f"offset must be >= 0 ({start_offset=})")
        if max_records <= 0:
            return []
        with self._lock:
            if self._tail is not None:
                self._tail.flush()
            bases = list(self._bases)
            end = self._tail_base + self._tail_records
        if start_offset >= end:
            return []
        out: list[tuple[int, BusRecord]] = []
        index = max(0, bisect_right(bases, start_offset) - 1)
        for base in bases[index:]:
            if len(out) >= max_records:
                break
            data = self._segment_path(base).read_bytes()
            pos = 0
            offset = base
            size = len(data)
            while len(out) < max_records and offset < end:
                if pos + _FRAME.size > size:
                    break
                length, crc = _FRAME.unpack_from(data, pos)
                if (
                    length <= 0
                    or length > _MAX_PAYLOAD
                    or pos + _FRAME.size + length > size
                ):
                    break
                payload = data[pos + _FRAME.size : pos + _FRAME.size + length]
                if zlib.crc32(payload) != crc:
                    break
                if offset >= start_offset:
                    out.append((offset, decode_payload(payload)))
                pos += _FRAME.size + length
                offset += 1
        return out


class SegmentLog:
    """The partitioned, durable event log behind the ingestion bus.

    Layout under ``directory``::

        meta.json                       n_partitions (guards reopen)
        partition-0000/<base>.seg       segments, named by base offset
        partition-0001/...
        checkpoints/<group>/...         consumer checkpoints (see consumer.py)

    Opening an existing directory *is* crash recovery: each partition's tail
    segment is scanned and torn suffixes are truncated. Reopening with a
    different ``n_partitions`` raises (the entity→partition hash would no
    longer route to history).
    """

    def __init__(
        self,
        directory: str | Path,
        n_partitions: int = 4,
        segment_bytes: int = 4 * 1024 * 1024,
        fsync: FsyncConfig | None = None,
    ) -> None:
        if n_partitions <= 0:
            raise ValidationError(f"n_partitions must be positive ({n_partitions=})")
        if segment_bytes <= 0:
            raise ValidationError(f"segment_bytes must be positive ({segment_bytes=})")
        self.fsync = fsync or FsyncConfig()
        self.fsync.validate()
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        meta_path = self.directory / _META_FILE
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            stored = int(meta["n_partitions"])
            if stored != n_partitions:
                raise BusError(
                    f"log at {self.directory} has {stored} partitions; "
                    f"cannot reopen with n_partitions={n_partitions} "
                    "(entity routing would change)"
                )
        else:
            meta_path.write_text(json.dumps({"n_partitions": n_partitions}))
        self.n_partitions = n_partitions
        self._partitions = [
            _PartitionLog(
                self.directory / f"partition-{p:04d}", segment_bytes, self.fsync
            )
            for p in range(n_partitions)
        ]

    @classmethod
    def open(cls, directory: str | Path, **kwargs) -> "SegmentLog":
        """Reopen an existing log, reading ``n_partitions`` from its meta."""
        meta_path = Path(directory) / _META_FILE
        if not meta_path.exists():
            raise BusError(f"no ingestion log at {directory} (missing {_META_FILE})")
        meta = json.loads(meta_path.read_text())
        return cls(directory, n_partitions=int(meta["n_partitions"]), **kwargs)

    # -- routing -------------------------------------------------------------

    def partition_for(self, entity_id: int) -> int:
        """Stable entity→partition hash (preserves per-entity order)."""
        key = int(entity_id).to_bytes(8, "little", signed=True)
        return zlib.crc32(key) % self.n_partitions

    def _partition(self, partition: int) -> _PartitionLog:
        if not 0 <= partition < self.n_partitions:
            raise ValidationError(
                f"partition {partition} out of range [0, {self.n_partitions})"
            )
        return self._partitions[partition]

    # -- append / read -------------------------------------------------------

    def append(self, partition: int, record: BusRecord) -> int:
        """Append one record; return its offset."""
        return self._partition(partition).append_many([record])[0]

    def append_many(self, partition: int, records: list[BusRecord]) -> list[int]:
        return self._partition(partition).append_many(records)

    def read(
        self, partition: int, start_offset: int, max_records: int = 512
    ) -> list[tuple[int, BusRecord]]:
        return self._partition(partition).read(start_offset, max_records)

    def end_offset(self, partition: int) -> int:
        return self._partition(partition).end_offset

    def end_offsets(self) -> list[int]:
        return [p.end_offset for p in self._partitions]

    def total_records(self) -> int:
        return sum(self.end_offsets())

    def truncated_bytes(self) -> int:
        """Torn bytes discarded by crash recovery at open (all partitions)."""
        return sum(p.truncated_bytes for p in self._partitions)

    # -- durability ----------------------------------------------------------

    def flush(self, sync: bool = False) -> None:
        """Flush all partitions; ``sync=True`` forces fsync regardless of policy."""
        for p in self._partitions:
            p.flush(sync=sync)

    def sync(self) -> None:
        """Explicit durability barrier: records appended so far survive a crash."""
        self.flush(sync=True)

    def close(self) -> None:
        for p in self._partitions:
            p.close()

    def __enter__(self) -> "SegmentLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
