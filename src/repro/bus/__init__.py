"""The durable feature ingestion bus (the write plane).

Paper §2.2.1: the feature store "orchestrates the updates to the features
based on the user-defined cadence" — and stale features silently degrade
models. The synchronous :class:`~repro.streaming.StreamProcessor` realizes
that path in-process with no durability: a crash loses every in-flight
event, and backfills cannot re-derive online state. Production platforms
put a replayable log between producers and the dual store; this package is
that log and everything around it:

* :mod:`repro.bus.log` — partitioned append-only segment log on disk
  (CRC32-framed records, size-based segment rotation, configurable fsync
  policy, crash-recovery open that truncates torn tail writes);
* :mod:`repro.bus.producer` — batching producer with entity-hash routing
  (per-entity order preserved) and bounded-bytes backpressure;
* :mod:`repro.bus.consumer` — consumer groups with per-partition offsets
  checkpointed via atomic rename (at-least-once delivery) and a dedupe
  window that makes sinks effectively idempotent across crash/restart;
* :mod:`repro.bus.sinks` — online/offline/aggregating sinks plus
  :func:`~repro.bus.sinks.replay` for log-driven backfills;
* :mod:`repro.bus.metrics` — produce/consume throughput, consumer lag and
  per-namespace end-to-end freshness lag, rendered into the operator
  dashboard by :func:`repro.monitoring.dashboard.bus_section`.

PR 1 built the read plane (serving gateway), PR 2 the batch plane
(columnar offline engine); this is the ingest plane.
"""

from repro.bus.consumer import (
    CheckpointStore,
    Consumer,
    ConsumedRecord,
    ConsumerWorker,
    DedupeWindow,
)
from repro.bus.log import (
    BusRecord,
    FsyncConfig,
    FsyncPolicy,
    SegmentLog,
    decode_frame,
    decode_payload,
    encode_record,
)
from repro.bus.metrics import BusMetrics
from repro.bus.producer import OverflowPolicy, Producer, ProducerStats
from repro.bus.sinks import (
    AggregatingSink,
    OfflineStoreSink,
    OnlineStoreSink,
    Sink,
    replay,
)

__all__ = [
    "AggregatingSink",
    "BusMetrics",
    "BusRecord",
    "CheckpointStore",
    "ConsumedRecord",
    "Consumer",
    "ConsumerWorker",
    "DedupeWindow",
    "FsyncConfig",
    "FsyncPolicy",
    "OfflineStoreSink",
    "OnlineStoreSink",
    "OverflowPolicy",
    "Producer",
    "ProducerStats",
    "SegmentLog",
    "Sink",
    "decode_frame",
    "decode_payload",
    "encode_record",
    "replay",
]
