"""Checkpointed consumer groups: at-least-once delivery, exactly-once effects.

The read edge of the ingestion bus. A :class:`Consumer` belongs to a
*group* and owns one cursor per partition. ``poll`` advances the in-memory
cursor; ``commit`` persists it — so the delivery contract is
**at-least-once**: a crash between processing and commit replays the
uncommitted suffix on restart.

Checkpoints are one tiny JSON file per ``(group, partition)`` written via
the atomic-rename idiom (write tmp, fsync, ``os.replace``) — a checkpoint
is either the old offset or the new one, never a torn intermediate.

:class:`DedupeWindow` turns at-least-once delivery into effectively-once
*application*: sinks consult it keyed on ``(partition, offset)`` before
applying a record, so the replayed suffix after a crash is recognized and
skipped instead of double-written into the online store.

:class:`ConsumerWorker` is the background materializer: a
:class:`repro.runtime.Service` owning one thread that drives the
poll → apply-to-sinks → flush → commit cycle continuously, so the write
path runs *concurrently* with serving instead of being hand-cranked by
the caller. ``stop()`` drains the backlog, flushes every sink and commits
before the thread exits — shutdown never strands acknowledged records.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.bus.log import BusRecord, SegmentLog
from repro.errors import ValidationError
from repro.runtime import Counter, Service, await_condition

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.bus.metrics import BusMetrics

_CHECKPOINT_DIRNAME = "checkpoints"


@dataclass(frozen=True)
class ConsumedRecord:
    """A record plus its coordinates — the dedupe/checkpoint identity."""

    partition: int
    offset: int
    record: BusRecord


class CheckpointStore:
    """Per-``(group, partition)`` committed offsets, atomically persisted.

    The stored value is the *next offset to read* (i.e. one past the last
    processed record), matching the usual consumer-group convention.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, group: str, partition: int) -> Path:
        return self.directory / group / f"partition-{partition:04d}.json"

    def load(self, group: str, partition: int) -> int:
        """Committed next-offset, or 0 if this group never committed."""
        path = self._path(group, partition)
        try:
            return int(json.loads(path.read_text())["next_offset"])
        except (FileNotFoundError, json.JSONDecodeError, KeyError, ValueError):
            return 0

    def commit(self, group: str, partition: int, next_offset: int) -> None:
        """Atomically persist ``next_offset`` (tmp + fsync + rename)."""
        if next_offset < 0:
            raise ValidationError(f"next_offset must be >= 0 ({next_offset=})")
        path = self._path(group, partition)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w") as handle:
            json.dump({"next_offset": next_offset}, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def groups(self) -> list[str]:
        return sorted(p.name for p in self.directory.iterdir() if p.is_dir())


class Consumer:
    """One member of a consumer group reading every partition of a log.

    (Laptop-scale simplification: there is no broker-side partition
    assignment — a group is one consumer owning all partitions. The
    checkpoint format is per-partition, so a sharded assignment layer
    could be added without migrating state.)
    """

    def __init__(
        self,
        log: SegmentLog,
        group: str = "default",
        checkpoints: CheckpointStore | None = None,
        metrics: "BusMetrics | None" = None,
    ) -> None:
        if not group:
            raise ValidationError("consumer group name cannot be empty")
        self.log = log
        self.group = group
        self.checkpoints = checkpoints or CheckpointStore(
            log.directory / _CHECKPOINT_DIRNAME
        )
        self.metrics = metrics
        # Resume from the last commit; clamp to the durable end so a
        # checkpoint that outlived torn (never-acknowledged) records cannot
        # strand the cursor past the recovered log.
        self._positions = [
            min(self.checkpoints.load(group, p), log.end_offset(p))
            for p in range(log.n_partitions)
        ]
        self._round_robin = 0

    # -- cursors -------------------------------------------------------------

    def position(self, partition: int) -> int:
        return self._positions[partition]

    def committed(self, partition: int) -> int:
        return self.checkpoints.load(self.group, partition)

    def seek(self, partition: int, offset: int) -> None:
        if offset < 0:
            raise ValidationError(f"offset must be >= 0 ({offset=})")
        self._positions[partition] = offset

    def seek_to_beginning(self) -> None:
        """Rewind every partition to offset 0 (the replay/backfill entry)."""
        self._positions = [0] * self.log.n_partitions

    def lag(self) -> dict[int, int]:
        """Per-partition records between the cursor and the log end."""
        lags = {
            p: self.log.end_offset(p) - self._positions[p]
            for p in range(self.log.n_partitions)
        }
        if self.metrics is not None:
            for partition, value in lags.items():
                self.metrics.set_lag(partition, value)
        return lags

    def total_lag(self) -> int:
        return sum(self.lag().values())

    # -- delivery ------------------------------------------------------------

    def poll(self, max_records: int = 512) -> list[ConsumedRecord]:
        """Up to ``max_records`` records across partitions, cursor-ordered.

        Partitions are visited round-robin starting at a rotating index so
        a hot partition cannot starve the others. Within a partition,
        records arrive in offset order — the per-entity ordering guarantee.
        """
        if max_records <= 0:
            return []
        out: list[ConsumedRecord] = []
        n = self.log.n_partitions
        start = self._round_robin
        self._round_robin = (self._round_robin + 1) % n
        for step in range(n):
            if len(out) >= max_records:
                break
            partition = (start + step) % n
            batch = self.log.read(
                partition, self._positions[partition], max_records - len(out)
            )
            if not batch:
                continue
            for offset, record in batch:
                out.append(ConsumedRecord(partition, offset, record))
            self._positions[partition] = batch[-1][0] + 1
        if self.metrics is not None and out:
            self.metrics.consumed.inc(len(out))
        return out

    def commit(self) -> dict[int, int]:
        """Persist every partition cursor; return the committed offsets."""
        committed = {}
        for partition in range(self.log.n_partitions):
            self.checkpoints.commit(
                self.group, partition, self._positions[partition]
            )
            committed[partition] = self._positions[partition]
        if self.metrics is not None:
            self.metrics.commits.inc()
        return committed


class ConsumerWorker(Service):
    """Background poll → apply → flush → commit pump over one consumer.

    Owns the consumer exclusively once started (``Consumer`` is not
    thread-safe; do not poll it from outside while the worker runs).
    Sinks are anything exposing ``apply_batch(batch)`` and ``flush()``
    (duck-typed to avoid importing :mod:`repro.bus.sinks` downward).

    The cycle: ``poll(max_records)``; a non-empty batch is applied to
    every sink in order; on the transition to idle (an empty poll after
    applied work) the worker *settles* — flushes every sink, commits the
    cursor, publishes consumer lag — then naps ``poll_interval_s``.
    ``stop()`` performs one final drain + settle so every record in the
    log at stop time is applied and committed before the thread exits.
    """

    def __init__(
        self,
        consumer: Consumer,
        sinks: object,
        poll_interval_s: float = 0.005,
        max_records: int = 512,
        name: str | None = None,
    ) -> None:
        if poll_interval_s <= 0:
            raise ValidationError(
                f"poll_interval_s must be positive ({poll_interval_s=})"
            )
        if max_records <= 0:
            raise ValidationError(f"max_records must be positive ({max_records=})")
        super().__init__(name=name or f"consumer-worker:{consumer.group}")
        self.consumer = consumer
        self.sinks = (
            [sinks] if hasattr(sinks, "apply_batch") else list(sinks)  # type: ignore[arg-type]
        )
        self.poll_interval_s = poll_interval_s
        self.max_records = max_records
        self.records_pumped = Counter()
        self.settles = Counter()
        self._dirty = False

    def _on_start(self) -> None:
        self._spawn(self._loop, name=f"{self.name}-loop")

    def _on_stop(self) -> None:
        self._stop_event.set()
        self._join_workers()
        # The loop's own final drain handles the normal path; if the
        # thread died abnormally, settle here so commit state is sane.
        if self._dirty:
            self._settle()

    # -- pump ----------------------------------------------------------------

    def _drain_once(self) -> int:
        batch = self.consumer.poll(self.max_records)
        if not batch:
            return 0
        for sink in self.sinks:
            sink.apply_batch(batch)
        self.records_pumped.inc(len(batch))
        self._dirty = True
        return len(batch)

    def _settle(self) -> None:
        """Flush buffered sink work, persist cursors, publish lag."""
        for sink in self.sinks:
            sink.flush()
        self.consumer.commit()
        self.consumer.lag()  # publishes per-partition lag gauges
        self.settles.inc()
        self._dirty = False

    def _loop(self) -> None:
        while not self._stop_event.is_set():
            if self._drain_once() == 0:
                if self._dirty:
                    self._settle()
                self._stop_event.wait(self.poll_interval_s)
        # Orderly shutdown: drain whatever is already in the log, then
        # flush + commit so acknowledged records are never stranded.
        while self._drain_once():
            pass
        if self._dirty:
            self._settle()

    # -- introspection --------------------------------------------------------

    @property
    def caught_up(self) -> bool:
        """True when the log is fully applied, flushed and committed."""
        return not self._dirty and self.consumer.total_lag() == 0

    def wait_until_caught_up(self, timeout_s: float = 5.0) -> bool:
        """Block until :attr:`caught_up` (or the timeout elapses)."""
        return await_condition(lambda: self.caught_up, timeout_s=timeout_s)

    def health(self) -> dict[str, object]:
        record = super().health()
        record["records_pumped"] = self.records_pumped.value
        record["settles"] = self.settles.value
        record["caught_up"] = self.caught_up
        return record


class DedupeWindow:
    """Tracks applied ``(partition, offset)`` pairs to suppress redelivery.

    Per-partition delivery is in offset order, so the common case is a
    watermark: everything at or below ``applied[p]`` has been applied. A
    bounded out-of-order set absorbs gaps (e.g. a sink that applies
    filtered subsets); when the set outgrows ``window`` the oldest entries
    are folded into the watermark — the window is the redelivery horizon.
    """

    def __init__(self, window: int = 8192) -> None:
        if window <= 0:
            raise ValidationError(f"window must be positive ({window=})")
        self.window = window
        self._watermarks: dict[int, int] = {}
        self._ahead: dict[int, set[int]] = {}
        self.duplicates_seen = 0

    def seen(self, partition: int, offset: int) -> bool:
        """True if this record was already applied (a duplicate delivery)."""
        duplicate = offset <= self._watermarks.get(partition, -1) or offset in self._ahead.get(
            partition, ()
        )
        if duplicate:
            self.duplicates_seen += 1
        return duplicate

    def mark(self, partition: int, offset: int) -> None:
        """Record that ``(partition, offset)`` has been applied."""
        watermark = self._watermarks.get(partition, -1)
        if offset <= watermark:
            return
        ahead = self._ahead.setdefault(partition, set())
        ahead.add(offset)
        # Advance the watermark over any now-contiguous prefix.
        while watermark + 1 in ahead:
            watermark += 1
            ahead.discard(watermark)
        self._watermarks[partition] = watermark
        # Bound memory: fold the oldest out-of-order entries into the
        # watermark once the set exceeds the window.
        while len(ahead) > self.window:
            smallest = min(ahead)
            ahead.discard(smallest)
            self._watermarks[partition] = max(self._watermarks[partition], smallest)

    def filter_new(self, batch: list[ConsumedRecord]) -> list[ConsumedRecord]:
        """The sub-batch not yet applied (does *not* mark them)."""
        return [c for c in batch if not self.seen(c.partition, c.offset)]
