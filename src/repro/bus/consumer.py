"""Checkpointed consumer groups: at-least-once delivery, exactly-once effects.

The read edge of the ingestion bus. A :class:`Consumer` belongs to a
*group* and owns one cursor per partition. ``poll`` advances the in-memory
cursor; ``commit`` persists it — so the delivery contract is
**at-least-once**: a crash between processing and commit replays the
uncommitted suffix on restart.

Checkpoints are one tiny JSON file per ``(group, partition)`` written via
the atomic-rename idiom (write tmp, fsync, ``os.replace``) — a checkpoint
is either the old offset or the new one, never a torn intermediate.

:class:`DedupeWindow` turns at-least-once delivery into effectively-once
*application*: sinks consult it keyed on ``(partition, offset)`` before
applying a record, so the replayed suffix after a crash is recognized and
skipped instead of double-written into the online store.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.bus.log import BusRecord, SegmentLog
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.bus.metrics import BusMetrics

_CHECKPOINT_DIRNAME = "checkpoints"


@dataclass(frozen=True)
class ConsumedRecord:
    """A record plus its coordinates — the dedupe/checkpoint identity."""

    partition: int
    offset: int
    record: BusRecord


class CheckpointStore:
    """Per-``(group, partition)`` committed offsets, atomically persisted.

    The stored value is the *next offset to read* (i.e. one past the last
    processed record), matching the usual consumer-group convention.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, group: str, partition: int) -> Path:
        return self.directory / group / f"partition-{partition:04d}.json"

    def load(self, group: str, partition: int) -> int:
        """Committed next-offset, or 0 if this group never committed."""
        path = self._path(group, partition)
        try:
            return int(json.loads(path.read_text())["next_offset"])
        except (FileNotFoundError, json.JSONDecodeError, KeyError, ValueError):
            return 0

    def commit(self, group: str, partition: int, next_offset: int) -> None:
        """Atomically persist ``next_offset`` (tmp + fsync + rename)."""
        if next_offset < 0:
            raise ValidationError(f"next_offset must be >= 0 ({next_offset=})")
        path = self._path(group, partition)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w") as handle:
            json.dump({"next_offset": next_offset}, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def groups(self) -> list[str]:
        return sorted(p.name for p in self.directory.iterdir() if p.is_dir())


class Consumer:
    """One member of a consumer group reading every partition of a log.

    (Laptop-scale simplification: there is no broker-side partition
    assignment — a group is one consumer owning all partitions. The
    checkpoint format is per-partition, so a sharded assignment layer
    could be added without migrating state.)
    """

    def __init__(
        self,
        log: SegmentLog,
        group: str = "default",
        checkpoints: CheckpointStore | None = None,
        metrics: "BusMetrics | None" = None,
    ) -> None:
        if not group:
            raise ValidationError("consumer group name cannot be empty")
        self.log = log
        self.group = group
        self.checkpoints = checkpoints or CheckpointStore(
            log.directory / _CHECKPOINT_DIRNAME
        )
        self.metrics = metrics
        # Resume from the last commit; clamp to the durable end so a
        # checkpoint that outlived torn (never-acknowledged) records cannot
        # strand the cursor past the recovered log.
        self._positions = [
            min(self.checkpoints.load(group, p), log.end_offset(p))
            for p in range(log.n_partitions)
        ]
        self._round_robin = 0

    # -- cursors -------------------------------------------------------------

    def position(self, partition: int) -> int:
        return self._positions[partition]

    def committed(self, partition: int) -> int:
        return self.checkpoints.load(self.group, partition)

    def seek(self, partition: int, offset: int) -> None:
        if offset < 0:
            raise ValidationError(f"offset must be >= 0 ({offset=})")
        self._positions[partition] = offset

    def seek_to_beginning(self) -> None:
        """Rewind every partition to offset 0 (the replay/backfill entry)."""
        self._positions = [0] * self.log.n_partitions

    def lag(self) -> dict[int, int]:
        """Per-partition records between the cursor and the log end."""
        lags = {
            p: self.log.end_offset(p) - self._positions[p]
            for p in range(self.log.n_partitions)
        }
        if self.metrics is not None:
            for partition, value in lags.items():
                self.metrics.set_lag(partition, value)
        return lags

    def total_lag(self) -> int:
        return sum(self.lag().values())

    # -- delivery ------------------------------------------------------------

    def poll(self, max_records: int = 512) -> list[ConsumedRecord]:
        """Up to ``max_records`` records across partitions, cursor-ordered.

        Partitions are visited round-robin starting at a rotating index so
        a hot partition cannot starve the others. Within a partition,
        records arrive in offset order — the per-entity ordering guarantee.
        """
        if max_records <= 0:
            return []
        out: list[ConsumedRecord] = []
        n = self.log.n_partitions
        start = self._round_robin
        self._round_robin = (self._round_robin + 1) % n
        for step in range(n):
            if len(out) >= max_records:
                break
            partition = (start + step) % n
            batch = self.log.read(
                partition, self._positions[partition], max_records - len(out)
            )
            if not batch:
                continue
            for offset, record in batch:
                out.append(ConsumedRecord(partition, offset, record))
            self._positions[partition] = batch[-1][0] + 1
        if self.metrics is not None and out:
            self.metrics.consumed.inc(len(out))
        return out

    def commit(self) -> dict[int, int]:
        """Persist every partition cursor; return the committed offsets."""
        committed = {}
        for partition in range(self.log.n_partitions):
            self.checkpoints.commit(
                self.group, partition, self._positions[partition]
            )
            committed[partition] = self._positions[partition]
        if self.metrics is not None:
            self.metrics.commits.inc()
        return committed


class DedupeWindow:
    """Tracks applied ``(partition, offset)`` pairs to suppress redelivery.

    Per-partition delivery is in offset order, so the common case is a
    watermark: everything at or below ``applied[p]`` has been applied. A
    bounded out-of-order set absorbs gaps (e.g. a sink that applies
    filtered subsets); when the set outgrows ``window`` the oldest entries
    are folded into the watermark — the window is the redelivery horizon.
    """

    def __init__(self, window: int = 8192) -> None:
        if window <= 0:
            raise ValidationError(f"window must be positive ({window=})")
        self.window = window
        self._watermarks: dict[int, int] = {}
        self._ahead: dict[int, set[int]] = {}
        self.duplicates_seen = 0

    def seen(self, partition: int, offset: int) -> bool:
        """True if this record was already applied (a duplicate delivery)."""
        duplicate = offset <= self._watermarks.get(partition, -1) or offset in self._ahead.get(
            partition, ()
        )
        if duplicate:
            self.duplicates_seen += 1
        return duplicate

    def mark(self, partition: int, offset: int) -> None:
        """Record that ``(partition, offset)`` has been applied."""
        watermark = self._watermarks.get(partition, -1)
        if offset <= watermark:
            return
        ahead = self._ahead.setdefault(partition, set())
        ahead.add(offset)
        # Advance the watermark over any now-contiguous prefix.
        while watermark + 1 in ahead:
            watermark += 1
            ahead.discard(watermark)
        self._watermarks[partition] = watermark
        # Bound memory: fold the oldest out-of-order entries into the
        # watermark once the set exceeds the window.
        while len(ahead) > self.window:
            smallest = min(ahead)
            ahead.discard(smallest)
            self._watermarks[partition] = max(self._watermarks[partition], smallest)

    def filter_new(self, batch: list[ConsumedRecord]) -> list[ConsumedRecord]:
        """The sub-batch not yet applied (does *not* mark them)."""
        return [c for c in batch if not self.seen(c.partition, c.offset)]
