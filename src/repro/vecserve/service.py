"""The vector service: versioned, refreshable ANN serving as one façade.

This is the piece the paper's §3–4 asks for and ``repro.index`` alone
cannot provide: the path from ``EmbeddingStore.register()`` to a
concurrent, monitored, *refreshable* similarity-search endpoint. A
:class:`VectorService` keeps one :class:`~repro.vecserve.shards.ShardedVectorIndex`
per served ``(embedding_name, version)`` table and offers:

* **version routing** — ``search(name, ..., version=3)`` pins a table;
  ``version=None`` follows the latest *enabled* version, so consumers get
  re-indexed embeddings for free (the same latest-compatible philosophy
  as ``vectors_for_model``);
* **registration subscription** — after :meth:`auto_enable`, every new
  version registered in the attached
  :class:`~repro.core.embedding_store.EmbeddingStore` is built into a
  served table the moment it lands;
* **live freshness** — :meth:`upsert` / :meth:`remove` mutate the serving
  plane immediately (delta-visible), with background or threshold-driven
  compaction folding mutations into the next sealed generation;
* **micro-batched queries** — with ``batch_queries=True`` concurrent
  single-query callers are coalesced into one scatter-gather per shard
  batch (:class:`VectorQueryBatcher`), the vector-plane analogue of the
  gateway's feature micro-batcher;
* **online monitoring** — every table carries
  :class:`~repro.vecserve.monitor.VectorServeMetrics` and a sampled
  :class:`~repro.vecserve.monitor.RecallMonitor`, registered in the
  service's :class:`~repro.runtime.telemetry.MetricsRegistry`, optionally
  mirrored into an attached serving-metrics facade and rendered by
  :func:`repro.monitoring.dashboard.vector_section`.

Both the service and its query batcher are
:class:`repro.runtime.Service` instances: idempotent ``stop()``/
``close()``, a shared state machine, and auto-compaction running on a
:class:`repro.runtime.PeriodicTask` instead of a hand-rolled thread.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import NotRegisteredError, ValidationError
from repro.index import (
    BruteForceIndex,
    HNSWIndex,
    IVFFlatIndex,
    LSHIndex,
)
from repro.runtime import (
    Counter,
    Deadline,
    MetricsRegistry,
    PeriodicTask,
    Service,
)
from repro.runtime.resilience import FaultPolicy
from repro.vecserve.monitor import RecallMonitor, VectorServeMetrics
from repro.vecserve.shards import ShardedSearchResult, ShardedVectorIndex
from repro.vecserve.snapshot import CompactionStats

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.core.embedding_store import EmbeddingStore, EmbeddingVersion
    from repro.serving import ServingMetrics

BACKENDS = {
    "brute": BruteForceIndex,
    "lsh": LSHIndex,
    "ivf": IVFFlatIndex,
    "hnsw": HNSWIndex,
}


@dataclass
class _ServedTable:
    """One live table: the sharded index plus its quality monitor."""

    name: str
    version: int
    backend: str
    sharded: ShardedVectorIndex
    recall: RecallMonitor


@dataclass
class _QueryRequest:
    key: tuple[str, int]
    k: int
    query: np.ndarray
    future: Future
    #: the submitter's remaining latency budget; the batch it lands in is
    #: bounded by the *tightest* member so one caller's deadline is never
    #: silently loosened by co-batched traffic
    deadline: Deadline | None = None


_STOP = object()


class VectorQueryBatcher(Service):
    """Coalesce concurrent single-vector queries into shard-batched calls.

    Same queue-and-drain shape as the feature
    :class:`~repro.serving.batcher.MicroBatcher`: callers enqueue and
    block on a future; a worker drains up to ``max_batch_size`` requests
    (waiting ``max_wait_s`` for stragglers), groups them by
    ``(table, k)`` and issues one
    :meth:`~repro.vecserve.shards.ShardedVectorIndex.search_batch` per
    group — paying the scatter fan-out once per batch instead of once
    per query. A :class:`repro.runtime.Service` with the historical
    constructed-== -running contract; ``stop()``/``close()`` are
    idempotent and drain queued queries before the workers exit.
    """

    def __init__(
        self,
        run_batch,
        max_batch_size: int = 32,
        max_wait_s: float = 0.0005,
        n_workers: int = 2,
    ) -> None:
        if max_batch_size < 1:
            raise ValidationError(f"max_batch_size must be >= 1 ({max_batch_size=})")
        if max_wait_s < 0:
            raise ValidationError(f"max_wait_s must be >= 0 ({max_wait_s=})")
        if n_workers < 1:
            raise ValidationError(f"n_workers must be >= 1 ({n_workers=})")
        super().__init__(name="vector-query-batcher")
        self._run_batch = run_batch
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.n_workers = n_workers
        self._queue: queue.Queue = queue.Queue()
        self.batches = Counter()
        self.batched_requests = Counter()
        self.start()  # historical contract: constructed == running

    def _on_start(self) -> None:
        for i in range(self.n_workers):
            self._spawn(self._worker_loop, name=f"vecbatch-{i}")

    def _on_stop(self) -> None:
        self._queue.put(_STOP)
        self._join_workers()

    def submit(
        self,
        key: tuple[str, int],
        query: np.ndarray,
        k: int,
        deadline: Deadline | None = None,
    ) -> Future:
        # Check + enqueue under the lifecycle lock: the request either
        # precedes the stop sentinel (served during the drain) or is
        # rejected — never stranded behind it with a forever-pending
        # future.
        with self._state_lock:
            self._check_running("submit queries")
            future: Future = Future()
            self._queue.put(_QueryRequest(key, k, query, future, deadline))
        return future

    def mean_batch_size(self) -> float:
        batches = self.batches.value
        return self.batched_requests.value / batches if batches else 0.0

    def health(self) -> dict[str, object]:
        record = super().health()
        record["queue_depth"] = self._queue.qsize()
        record["batches"] = self.batches.value
        return record

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.put(_STOP)
                return
            batch = [item]
            deadline = time.monotonic() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                try:
                    nxt = self._queue.get(
                        block=remaining > 0, timeout=max(remaining, 0) or None
                    )
                except queue.Empty:
                    break
                if nxt is _STOP:
                    self._queue.put(_STOP)
                    break
                batch.append(nxt)
            self.batches.inc()
            self.batched_requests.inc(len(batch))
            self._execute(batch)

    def _execute(self, batch: list[_QueryRequest]) -> None:
        groups: dict[tuple[tuple[str, int], int], list[_QueryRequest]] = {}
        for request in batch:
            groups.setdefault((request.key, request.k), []).append(request)
        for (key, k), requests in groups.items():
            # The shard fan-out honors the tightest remaining budget in
            # the group (clamped to ~0 so an already-expired member still
            # gets a fast partial answer rather than an unbounded scan).
            budgets = [
                r.deadline.remaining()
                for r in requests
                if r.deadline is not None
            ]
            deadline_s = max(min(budgets), 1e-4) if budgets else None
            try:
                results = self._run_batch(
                    key,
                    np.stack([r.query for r in requests]),
                    k,
                    deadline_s=deadline_s,
                )
            except BaseException as exc:  # noqa: BLE001 - forwarded to callers
                for request in requests:
                    if not request.future.cancelled():
                        request.future.set_exception(exc)
                continue
            for request, result in zip(requests, results):
                if not request.future.cancelled():
                    request.future.set_result(result)


class VectorService(Service):
    """Sharded, versioned, monitored ANN serving over embedding tables.

    A :class:`repro.runtime.Service` (historical contract: constructed ==
    running). Use as a context manager, call :meth:`close`/:meth:`stop`,
    or hand it to a :class:`~repro.runtime.ServiceGroup` — shutdown stops
    auto-compaction, drains the query batcher, detaches the embedding
    store listeners and shuts the worker pool down, idempotently.
    """

    def __init__(
        self,
        embeddings: "EmbeddingStore | None" = None,
        serving_metrics: "ServingMetrics | None" = None,
        n_workers: int = 8,
        batch_queries: bool = False,
        max_batch_size: int = 32,
        batch_wait_s: float = 0.0005,
        registry: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(name="vecserve")
        self.embeddings = embeddings
        self.serving_metrics = serving_metrics
        self.registry = registry if registry is not None else MetricsRegistry()
        self._tables: dict[tuple[str, int], _ServedTable] = {}
        self._latest: dict[str, int] = {}
        self._auto: dict[str, dict] = {}
        self._lock = threading.RLock()
        self._n_workers = n_workers
        self._batch_queries = batch_queries
        self._max_batch_size = max_batch_size
        self._batch_wait_s = batch_wait_s
        self._executor: ThreadPoolExecutor | None = None
        self.batcher: VectorQueryBatcher | None = None
        self._compaction_task: PeriodicTask | None = None
        self.start()  # historical contract: constructed == running

    # -- lifecycle ------------------------------------------------------------

    def _on_start(self) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=self._n_workers, thread_name_prefix="vecserve"
        )
        if self._batch_queries:
            self.batcher = VectorQueryBatcher(
                run_batch=self._run_batch,
                max_batch_size=self._max_batch_size,
                max_wait_s=self._batch_wait_s,
            )
        if self.embeddings is not None:
            self.embeddings.add_register_listener(self._on_register)
            self.embeddings.attach_vector_service(self)

    def _on_stop(self) -> None:
        self.stop_auto_compaction()
        if self.batcher is not None:
            self.batcher.stop()
        if self.embeddings is not None:
            self.embeddings.remove_register_listener(self._on_register)
            self.embeddings.attach_vector_service(None)
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    def health(self) -> dict[str, object]:
        record = super().health()
        record["tables"] = len(self.served_tables())
        if self.batcher is not None:
            record["batcher"] = self.batcher.health()
        if self._compaction_task is not None:
            record["auto_compaction"] = self._compaction_task.health()
        return record

    # -- table management -----------------------------------------------------

    def serve_matrix(
        self,
        name: str,
        version: int,
        ids: np.ndarray,
        vectors: np.ndarray,
        backend: str = "hnsw",
        n_shards: int = 4,
        deadline_s: float | None = 0.25,
        sample_rate: float = 0.05,
        recall_k: int = 10,
        fault_policy: FaultPolicy | None = None,
        codec: str | None = None,
        codec_options: dict | None = None,
        keep_oracle: bool = False,
        rerank_oversample: int = 1,
        **backend_kwargs,
    ) -> ShardedVectorIndex:
        """Build and serve a table directly from ``(ids, vectors)``.

        The store-independent entry: :meth:`enable` resolves a registered
        embedding version and lands here. ``codec`` seals generations in
        a compressed storage format (``"fp32"``/``"int8"``/``"pq"``);
        ``keep_oracle=True`` adds the fp32 reserve that makes recall
        monitoring measure true quantization loss and (with
        ``rerank_oversample > 1``) enables exact re-ranking of ADC
        candidates.
        """
        if backend not in BACKENDS:
            raise ValidationError(
                f"unknown backend {backend!r}; allowed {sorted(BACKENDS)}"
            )
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2 or len(vectors) == 0:
            raise ValidationError(
                f"serve_matrix expects a non-empty (n, d) matrix, "
                f"got shape {vectors.shape}"
            )
        factory_cls = BACKENDS[backend]
        metrics = VectorServeMetrics(
            serving=self.serving_metrics,
            mirror_endpoint=f"vector_search:{name}",
            registry=self.registry,
            table=f"{name}:v{version}",
        )
        sharded = ShardedVectorIndex(
            dim=vectors.shape[1],
            factory=lambda: factory_cls(**backend_kwargs),
            n_shards=n_shards,
            executor=self._executor,
            default_deadline_s=deadline_s,
            fault_policy=fault_policy,
            metrics=metrics,
            codec=codec,
            codec_options=codec_options,
            keep_oracle=keep_oracle,
            rerank_oversample=rerank_oversample,
        )
        sharded.bulk_load(ids, vectors)
        recall = RecallMonitor(
            oracle=sharded.search_exact,
            k=recall_k,
            sample_rate=sample_rate,
            context=lambda: (
                f"gen{sharded.max_generation}",
                sharded.codec_kind,
            ),
        )
        table = _ServedTable(
            name=name,
            version=version,
            backend=backend,
            sharded=sharded,
            recall=recall,
        )
        with self._lock:
            self._tables[(name, version)] = table
            self._latest[name] = max(self._latest.get(name, 0), version)
        return sharded

    def enable(
        self,
        name: str,
        version: int | None = None,
        **options,
    ) -> ShardedVectorIndex:
        """Serve a registered embedding version (latest when ``None``)."""
        if self.embeddings is None:
            raise ValidationError(
                "service was built without an EmbeddingStore; "
                "use serve_matrix() instead"
            )
        record = self.embeddings.get(name, version)
        with self._lock:
            existing = self._tables.get((name, record.version))
            if existing is not None:
                return existing.sharded
        return self.serve_matrix(
            name,
            record.version,
            ids=np.arange(record.embedding.n, dtype=np.int64),
            vectors=record.embedding.vectors,
            **options,
        )

    def auto_enable(self, name: str, **options) -> None:
        """Serve every future registration of ``name`` automatically
        (and the current latest, if one exists)."""
        with self._lock:
            self._auto[name] = dict(options)
        if self.embeddings is not None and name in self.embeddings.names():
            self.enable(name, **options)

    def _on_register(self, record: "EmbeddingVersion") -> None:
        with self._lock:
            options = self._auto.get(record.name)
        if options is None:
            return
        self.serve_matrix(
            record.name,
            record.version,
            ids=np.arange(record.embedding.n, dtype=np.int64),
            vectors=record.embedding.vectors,
            **options,
        )

    def disable(self, name: str, version: int) -> None:
        """Stop serving one table (its shards keep no background threads)."""
        with self._lock:
            self._tables.pop((name, version), None)
            remaining = [v for (n, v) in self._tables if n == name]
            if remaining:
                self._latest[name] = max(remaining)
            else:
                self._latest.pop(name, None)

    def serves(self, name: str, version: int | None = None) -> bool:
        with self._lock:
            if version is None:
                return name in self._latest
            return (name, version) in self._tables

    def served_tables(self) -> list[tuple[str, int]]:
        with self._lock:
            return sorted(self._tables)

    def _resolve(self, name: str, version: int | None) -> _ServedTable:
        with self._lock:
            if version is None:
                version = self._latest.get(name)
                if version is None:
                    raise NotRegisteredError(
                        f"no served table for {name!r}; "
                        f"have {self.served_tables()}"
                    )
            table = self._tables.get((name, version))
            if table is None:
                raise NotRegisteredError(
                    f"no served table for {name!r} v{version}; "
                    f"have {self.served_tables()}"
                )
            return table

    def table(self, name: str, version: int | None = None) -> ShardedVectorIndex:
        """The underlying sharded index (pinned or latest routing)."""
        return self._resolve(name, version).sharded

    def recall_monitor(self, name: str, version: int | None = None) -> RecallMonitor:
        return self._resolve(name, version).recall

    # -- query path -----------------------------------------------------------

    def _run_batch(
        self,
        key: tuple[str, int],
        queries: np.ndarray,
        k: int,
        deadline_s: float | None = None,
    ) -> list[ShardedSearchResult]:
        table = self._resolve(*key)
        results = table.sharded.search_batch(queries, k, deadline_s=deadline_s)
        for query, result in zip(queries, results):
            table.recall.maybe_observe(query, result)
        return results

    def search(
        self,
        name: str,
        query: np.ndarray,
        k: int = 10,
        version: int | None = None,
        deadline_s: float | None = None,
    ) -> ShardedSearchResult:
        """Top-k neighbours with pinned-version or latest routing.

        With the query batcher enabled, concurrent callers coalesce into
        shard-batched scatter-gathers; otherwise the query fans out
        directly. Either way a sampled shadow query may feed the recall
        monitor.

        ``deadline_s`` bounds the whole path *including* batcher queue
        wait: the request carries its :class:`~repro.runtime.Deadline`
        into the batch (the shard fan-out honors the tightest member),
        and the caller waits at most its remaining budget (plus a small
        grace for the in-progress fan-out to deliver its own partial
        result) before degrading to an empty ``partial`` answer — the
        same degradation contract the unbatched path has always had.
        """
        self._check_running("serve queries")
        table = self._resolve(name, version)
        if self.batcher is not None:
            deadline = (
                Deadline.after(deadline_s) if deadline_s is not None else None
            )
            future = self.batcher.submit(
                (table.name, table.version),
                np.asarray(query, dtype=float),
                k,
                deadline=deadline,
            )
            if deadline is None:
                return future.result()
            grace = 0.05  # let the deadline-bounded fan-out report partials
            try:
                return future.result(
                    timeout=max(deadline.remaining(), 0.0) + grace
                )
            except FutureTimeoutError:
                future.cancel()
                table.sharded.metrics.partials.inc()
                return ShardedSearchResult(
                    ids=np.empty(0, dtype=np.int64),
                    scores=np.empty(0, dtype=float),
                    partial=True,
                    shards_missed=table.sharded.n_shards,
                )
        result = table.sharded.search(query, k, deadline_s=deadline_s)
        table.recall.maybe_observe(query, result)
        return result

    def search_batch(
        self,
        name: str,
        queries: np.ndarray,
        k: int = 10,
        version: int | None = None,
        deadline_s: float | None = None,
    ) -> list[ShardedSearchResult]:
        """Explicitly batched top-k (one fan-out for the whole batch)."""
        self._check_running("serve queries")
        table = self._resolve(name, version)
        results = table.sharded.search_batch(queries, k, deadline_s=deadline_s)
        for query, result in zip(np.asarray(queries, dtype=float), results):
            table.recall.maybe_observe(query, result)
        return results

    def search_exact(
        self,
        name: str,
        query: np.ndarray,
        k: int = 10,
        version: int | None = None,
    ):
        """The exact oracle over the live set (recall ground truth)."""
        return self._resolve(name, version).sharded.search_exact(query, k)

    # -- write path -----------------------------------------------------------

    def upsert(
        self,
        name: str,
        ids: np.ndarray,
        vectors: np.ndarray,
        version: int | None = None,
    ) -> None:
        """Insert/overwrite serving-plane vectors, visible immediately."""
        self._resolve(name, version).sharded.upsert(ids, vectors)

    def remove(
        self, name: str, ids: np.ndarray, version: int | None = None
    ) -> int:
        """Tombstone serving-plane vectors, masked immediately."""
        return self._resolve(name, version).sharded.remove(ids)

    # -- compaction -----------------------------------------------------------

    def compact(
        self, name: str | None = None, version: int | None = None
    ) -> dict[tuple[str, int], list[CompactionStats]]:
        """Blue/green-compact one table (or all of them)."""
        if name is not None:
            table = self._resolve(name, version)
            return {(table.name, table.version): table.sharded.compact()}
        out = {}
        for key in self.served_tables():
            table = self._resolve(*key)
            out[key] = table.sharded.compact()
        return out

    def reencode(
        self,
        name: str,
        codec: str | None,
        version: int | None = None,
        codec_options: dict | None = None,
    ) -> list[CompactionStats]:
        """Live blue/green re-encode of one served table.

        Switches the table's sealed-storage format (e.g. ``"fp32"`` →
        ``"int8"`` → ``"pq"``; ``None`` back to raw) and compacts every
        shard into it. Queries and upserts keep flowing throughout; the
        recall monitor's context labels flip to the new
        ``(generation, codec)`` so before/after quality is attributable
        in the dashboard.
        """
        return self._resolve(name, version).sharded.reencode(
            codec, codec_options
        )

    def maybe_compact(self, max_pending: int = 256) -> int:
        """Compact every table whose delta outgrew ``max_pending``;
        returns how many tables were compacted."""
        compacted = 0
        for key in self.served_tables():
            with self._lock:
                table = self._tables.get(key)
            if table is None:
                continue
            if table.sharded.pending_mutations > max_pending:
                table.sharded.compact()
                compacted += 1
        return compacted

    def start_auto_compaction(
        self, interval_s: float = 0.05, max_pending: int = 256
    ) -> None:
        """Background compaction loop (a :class:`~repro.runtime.PeriodicTask`):
        every ``interval_s`` seconds, fold any delta larger than
        ``max_pending`` into a new sealed generation. Exceptions in one
        pass are contained by the task; maintenance keeps ticking."""
        if interval_s <= 0:
            raise ValidationError(f"interval_s must be positive ({interval_s=})")
        if self._compaction_task is not None:
            return
        self._compaction_task = PeriodicTask(
            lambda: self.maybe_compact(max_pending),
            interval_s=interval_s,
            name="vecserve-autocompact",
        )
        self._compaction_task.start()

    def stop_auto_compaction(self) -> None:
        if self._compaction_task is None:
            return
        self._compaction_task.stop()
        self._compaction_task = None

    # -- introspection --------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Per-table operational + quality state (dashboard food)."""
        tables = {}
        for key in self.served_tables():
            table = self._resolve(*key)
            estimate = table.recall.recall_estimate()
            tables[f"{table.name}:v{table.version}"] = {
                "backend": table.backend,
                "n_shards": table.sharded.n_shards,
                "latest": self._latest.get(table.name) == table.version,
                "codec": table.sharded.codec_kind,
                "bytes_per_vector": round(table.sharded.bytes_per_vector, 2),
                "bytes_resident": table.sharded.bytes_resident,
                "recall_estimate": (
                    None if estimate is None else round(estimate, 4)
                ),
                "recall_k": table.recall.k,
                "recall_samples": table.recall.samples.value,
                "recall_by_codec": {
                    label: round(value, 4)
                    for label, value in table.recall.recall_by_context().items()
                },
                **table.sharded.metrics.snapshot(),
            }
        snap: dict[str, object] = {"tables": tables}
        if self.batcher is not None:
            snap["batch"] = {
                "batches": self.batcher.batches.value,
                "batched_requests": self.batcher.batched_requests.value,
                "mean_batch_size": round(self.batcher.mean_batch_size(), 2),
            }
        return snap
