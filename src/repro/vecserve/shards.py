"""Hash-partitioned index shards with scatter-gather top-k search.

One giant index serializes everything behind one structure: builds are
monolithic, one hot lock covers all reads and writes, and a rebuild is an
outage. Sharding by a stable hash of the external id fixes all three at
once — shards build/compact independently, queries fan out across a
thread pool (numpy releases the GIL in the scoring kernels, so the
fan-out is real parallelism), and the top-k merge of per-shard top-ks is
exact because every id lives on exactly one shard.

Each :class:`VectorShard` pairs a sealed :class:`IndexSnapshot` (lock-free
reads, see :mod:`repro.vecserve.snapshot`) with a live
:class:`~repro.vecserve.delta.DeltaIndex`; a per-shard readers/writer
lock makes the snapshot+delta *merge view* consistent — a reader never
sees a swap or an upsert halfway through.

Scatter-gather degrades instead of failing: a per-query deadline bounds
the gather, shards that miss it (or raise — the per-shard
:class:`~repro.runtime.resilience.FaultInjector` rehearses exactly that)
are simply left out, and the merged result is marked ``partial`` with the
miss count, mirroring the serving gateway's stale-over-unavailable
philosophy.
"""

from __future__ import annotations

import threading
import time
import zlib
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from dataclasses import dataclass

import numpy as np

from repro.codec import make_codec
from repro.errors import TransientStoreError, ValidationError
from repro.index.base import RWLock, SearchResult
from repro.runtime.resilience import FaultInjector, FaultPolicy
from repro.vecserve.delta import DeltaIndex
from repro.vecserve.monitor import VectorServeMetrics
from repro.vecserve.snapshot import (
    CodecFactory,
    CompactionStats,
    IndexFactory,
    SnapshotCell,
    build_snapshot,
    compact,
)

_EMPTY = SearchResult(
    ids=np.empty(0, dtype=np.int64), scores=np.empty(0, dtype=float)
)


@dataclass(frozen=True)
class ShardedSearchResult(SearchResult):
    """A merged top-k plus how complete the scatter-gather was."""

    partial: bool = False
    shards_missed: int = 0


def shard_for(external_id: int, n_shards: int) -> int:
    """Stable id→shard hash (same crc32 idiom as the bus's partitioner)."""
    key = int(external_id).to_bytes(8, "little", signed=True)
    return zlib.crc32(key) % n_shards


def _normalize_query(vector: np.ndarray, dim: int) -> np.ndarray:
    vector = np.asarray(vector, dtype=float)
    if vector.shape != (dim,):
        raise ValidationError(f"query dim {vector.shape} != index dim ({dim},)")
    norm = np.linalg.norm(vector)
    return vector / norm if norm > 0 else vector


def merge_topk(parts: list[SearchResult], k: int) -> SearchResult:
    """Exact merge of disjoint per-shard top-ks (score-descending)."""
    parts = [part for part in parts if len(part)]
    if not parts:
        return _EMPTY
    ids = np.concatenate([part.ids for part in parts])
    scores = np.concatenate([part.scores for part in parts])
    order = np.argsort(-scores, kind="stable")[:k]
    return SearchResult(ids=ids[order], scores=scores[order])


class VectorShard:
    """One partition: sealed snapshot + live delta behind an RW lock.

    With ``keep_oracle=True`` the shard also maintains an **fp32 oracle
    reserve**: a full-precision copy of every live row (a
    :class:`~repro.vecserve.delta.DeltaIndex` that is fed but never
    drained). Coded snapshots need it for two jobs codes cannot do:
    exact re-ranking of oversampled ADC candidates, and recall truth —
    an ADC scan is exact *over the codes*, so only a float-precision
    side store can measure what quantization actually lost.
    """

    def __init__(
        self, shard_id: int, dim: int, keep_oracle: bool = False
    ) -> None:
        self.shard_id = shard_id
        self.dim = dim
        self.cell = SnapshotCell()
        self.delta = DeltaIndex(dim)
        self.oracle = DeltaIndex(dim) if keep_oracle else None
        self._rw = RWLock()
        self._compacting = threading.Lock()
        self._first_pending_at: float | None = None

    # -- write path -----------------------------------------------------------

    def bulk_load(
        self,
        ids: np.ndarray,
        vectors: np.ndarray,
        factory: IndexFactory,
        codec: CodecFactory | None = None,
    ) -> None:
        """Seal the initial generation for this shard's id subset."""
        snapshot = build_snapshot(
            ids, vectors, factory, self.cell.current().generation + 1, codec=codec
        )
        with self._rw.write_locked():
            self.cell.swap(snapshot)
            if self.oracle is not None and len(ids):
                self.oracle.upsert(ids, vectors)

    def upsert(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        with self._rw.write_locked():
            self.delta.upsert(ids, vectors)
            if self.oracle is not None:
                self.oracle.upsert(ids, vectors)
            if self._first_pending_at is None:
                self._first_pending_at = time.time()

    def remove(self, ids: np.ndarray) -> int:
        with self._rw.write_locked():
            removed = self.delta.remove(ids)
            if self.oracle is not None:
                self.oracle.remove(ids)
            if self._first_pending_at is None:
                self._first_pending_at = time.time()
            return removed

    # -- read path ------------------------------------------------------------

    def _merged(
        self, normalized_query: np.ndarray, k: int, exact: bool
    ) -> SearchResult:
        with self._rw.read_locked():
            snapshot = self.cell.current()
            mask = self.delta.masked_ids()
            fetch = min(k + len(mask), max(snapshot.size, 1))
            base = (
                snapshot.search_exact(normalized_query, fetch)
                if exact
                else snapshot.search(normalized_query, fetch)
            )
            if mask:
                keep = [
                    position
                    for position, external in enumerate(base.ids.tolist())
                    if external not in mask
                ]
                base = SearchResult(ids=base.ids[keep], scores=base.scores[keep])
            fresh = self.delta.search(normalized_query, k)
        return merge_topk([base, fresh], k)

    def _rerank(
        self, normalized_query: np.ndarray, candidates: SearchResult, k: int
    ) -> SearchResult:
        """Re-score oversampled ADC candidates against the fp32 reserve.

        Candidates without a reserve row (shouldn't happen when the
        oracle tracks every write, but cheap to tolerate) keep their ADC
        scores.
        """
        if self.oracle is None or len(candidates) <= k:
            return SearchResult(ids=candidates.ids[:k], scores=candidates.scores[:k])
        found, rows = self.oracle.get_vectors(candidates.ids)
        exact_of = dict(zip(found.tolist(), (rows @ normalized_query).tolist()))
        scores = np.asarray(
            [
                exact_of.get(external, float(score))
                for external, score in zip(
                    candidates.ids.tolist(), candidates.scores.tolist()
                )
            ]
        )
        order = np.argsort(-scores, kind="stable")[:k]
        return SearchResult(ids=candidates.ids[order], scores=scores[order])

    def query(
        self, normalized_query: np.ndarray, k: int, oversample: int = 1
    ) -> SearchResult:
        """Top-k over the live set: sealed snapshot ∪ delta, delta wins.

        ``oversample > 1`` (with an oracle reserve) fetches ``k *
        oversample`` ADC candidates and exact-re-ranks them down to k —
        the standard recovery for quantization-induced rank inversions.
        """
        if oversample > 1 and self.oracle is not None:
            candidates = self._merged(
                normalized_query, k * oversample, exact=False
            )
            return self._rerank(normalized_query, candidates, k)
        return self._merged(normalized_query, k, exact=False)

    def query_exact(self, normalized_query: np.ndarray, k: int) -> SearchResult:
        """Exact top-k over the same live set (the recall oracle path).

        With an fp32 reserve this scans full-precision rows — true
        ground truth even when the sealed generation is coded; without
        one it scans the sealed matrix (decoded, for coded snapshots),
        which measures scan correctness but not quantization loss.
        """
        if self.oracle is not None:
            return self.oracle.search(normalized_query, k)
        return self._merged(normalized_query, k, exact=True)

    def query_batch(
        self, normalized_queries: np.ndarray, k: int, oversample: int = 1
    ) -> list[SearchResult]:
        """Batched top-k over the live set: one consistent snapshot+delta
        view for the whole batch, scored through the vectorized index
        paths (one GIL-releasing matmul instead of q serialized scans)."""
        fetch_k = k * oversample if (oversample > 1 and self.oracle is not None) else k
        with self._rw.read_locked():
            snapshot = self.cell.current()
            mask = self.delta.masked_ids()
            fetch = min(fetch_k + len(mask), max(snapshot.size, 1))
            base = snapshot.search_batch(normalized_queries, fetch)
            if mask:
                filtered = []
                for result in base:
                    keep = [
                        position
                        for position, external in enumerate(result.ids.tolist())
                        if external not in mask
                    ]
                    if len(keep) != len(result.ids):
                        result = SearchResult(
                            ids=result.ids[keep], scores=result.scores[keep]
                        )
                    filtered.append(result)
                base = filtered
            fresh = self.delta.search_batch(normalized_queries, fetch_k)
        merged = [
            merge_topk([base_result, fresh_result], fetch_k)
            for base_result, fresh_result in zip(base, fresh)
        ]
        if fetch_k == k:
            return merged
        return [
            self._rerank(query, candidates, k)
            for query, candidates in zip(normalized_queries, merged)
        ]

    # -- maintenance ----------------------------------------------------------

    def compact(
        self, factory: IndexFactory, codec: CodecFactory | None = None
    ) -> CompactionStats:
        """One blue/green cycle; queries proceed throughout. ``codec``
        selects the next generation's storage format (a live re-encode
        is just a compaction with a different sealer)."""
        with self._compacting:  # one builder per shard at a time
            stats = compact(self.cell, self.delta, factory, codec=codec)
            with self._rw.write_locked():
                self._first_pending_at = (
                    time.time() if self.pending_mutations else None
                )
            return stats

    @property
    def pending_mutations(self) -> int:
        return self.delta.size + self.delta.tombstone_count

    @property
    def generation(self) -> int:
        return self.cell.current().generation

    @property
    def snapshot_rows(self) -> int:
        return self.cell.current().size

    @property
    def bytes_resident(self) -> int:
        """Resident bytes: sealed rows + delta buffer + oracle reserve."""
        total = self.cell.current().bytes_resident + self.delta.memory_bytes
        if self.oracle is not None:
            total += self.oracle.memory_bytes
        return total

    @property
    def staleness_s(self) -> float:
        first = self._first_pending_at
        return 0.0 if first is None else max(0.0, time.time() - first)


class ShardedVectorIndex:
    """Scatter-gather top-k over hash-partitioned, independently
    compactable shards.

    ``factory`` builds one backend index per shard generation (so the
    backend is uniform across shards but fresh per snapshot). The query
    pool is shared with the owning service when ``executor`` is passed;
    compactions deliberately run on the *caller's* thread so a rebuild
    can never occupy the query workers and block traffic.
    """

    def __init__(
        self,
        dim: int,
        factory: IndexFactory,
        n_shards: int = 4,
        executor: ThreadPoolExecutor | None = None,
        n_workers: int | None = None,
        default_deadline_s: float | None = 0.25,
        fault_policy: FaultPolicy | None = None,
        metrics: VectorServeMetrics | None = None,
        codec: str | None = None,
        codec_options: dict | None = None,
        keep_oracle: bool = False,
        rerank_oversample: int = 1,
    ) -> None:
        if n_shards <= 0:
            raise ValidationError(f"n_shards must be positive ({n_shards=})")
        if dim <= 0:
            raise ValidationError(f"dim must be positive ({dim=})")
        if default_deadline_s is not None and default_deadline_s <= 0:
            raise ValidationError(
                f"default_deadline_s must be positive ({default_deadline_s=})"
            )
        if rerank_oversample < 1:
            raise ValidationError(
                f"rerank_oversample must be >= 1 ({rerank_oversample=})"
            )
        if rerank_oversample > 1 and not keep_oracle:
            raise ValidationError(
                "rerank_oversample > 1 needs keep_oracle=True (exact "
                "re-ranking reads the fp32 reserve)"
            )
        if codec is not None:
            make_codec(codec, **(codec_options or {}))  # validate eagerly
        if fault_policy is not None:
            fault_policy.validate()
        self.dim = dim
        self.factory = factory
        self.n_shards = n_shards
        self.shards = [
            VectorShard(i, dim, keep_oracle=keep_oracle) for i in range(n_shards)
        ]
        self.keep_oracle = keep_oracle
        self.rerank_oversample = rerank_oversample
        self._codec_spec = codec
        self._codec_options = dict(codec_options or {})
        self.default_deadline_s = default_deadline_s
        self.metrics = metrics or VectorServeMetrics()
        self.fault_policy = fault_policy
        self._fault = (
            FaultInjector(fault_policy) if fault_policy is not None else None
        )
        self._owns_executor = executor is None
        self._executor = executor or ThreadPoolExecutor(
            max_workers=n_workers or min(8, max(2, n_shards)),
            thread_name_prefix="vecshard",
        )
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    def __enter__(self) -> "ShardedVectorIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- codec ----------------------------------------------------------------

    def _codec_factory(self) -> CodecFactory | None:
        """A fresh-codec-per-generation factory for the current spec.

        Each shard build trains its own instance (bulk loads run shards
        in parallel on the executor), so codec state is never shared
        across builders.
        """
        if self._codec_spec is None:
            return None
        spec, options = self._codec_spec, dict(self._codec_options)
        return lambda: make_codec(spec, **options)

    @property
    def codec_kind(self) -> str:
        """Storage format of the sealed generations: ``"raw"``, a codec
        kind, or ``"mixed"`` mid-re-encode."""
        kinds = {shard.cell.current().codec_kind for shard in self.shards}
        return kinds.pop() if len(kinds) == 1 else "mixed"

    # -- routing --------------------------------------------------------------

    def shard_for(self, external_id: int) -> int:
        return shard_for(external_id, self.n_shards)

    def _group(self, ids: np.ndarray) -> dict[int, np.ndarray]:
        ids = np.asarray(ids, dtype=np.int64)
        assignments = np.asarray([self.shard_for(i) for i in ids.tolist()])
        return {
            shard: np.flatnonzero(assignments == shard)
            for shard in set(assignments.tolist())
        }

    # -- write path -----------------------------------------------------------

    def bulk_load(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        """Partition and seal the initial generation on every shard."""
        ids = np.asarray(ids, dtype=np.int64)
        vectors = np.asarray(vectors, dtype=float)
        if len(ids) != len(vectors):
            raise ValidationError(
                f"bulk_load got {len(ids)} ids for {len(vectors)} vectors"
            )
        if len(set(ids.tolist())) != len(ids):
            raise ValidationError("bulk_load ids must be unique")
        groups = self._group(ids)
        codec = self._codec_factory()
        futures = [
            self._executor.submit(
                self.shards[shard].bulk_load,
                ids[positions],
                vectors[positions],
                self.factory,
                codec,
            )
            for shard, positions in groups.items()
        ]
        done, __ = wait(futures, return_when=FIRST_EXCEPTION)
        for future in done:
            future.result()  # surface builder exceptions
        self.refresh_gauges()

    def upsert(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        """Route upserts to their shards' deltas (visible immediately)."""
        ids = np.asarray(ids, dtype=np.int64)
        vectors = np.asarray(vectors, dtype=float)
        for shard, positions in self._group(ids).items():
            self.shards[shard].upsert(ids[positions], vectors[positions])
        self.metrics.upserts.inc(len(ids))
        self.refresh_gauges()

    def remove(self, ids: np.ndarray) -> int:
        """Tombstone external ids across shards; returns newly-dead count."""
        ids = np.asarray(ids, dtype=np.int64)
        removed = 0
        for shard, positions in self._group(ids).items():
            removed += self.shards[shard].remove(ids[positions])
        self.metrics.removes.inc(len(ids))
        self.refresh_gauges()
        return removed

    # -- read path ------------------------------------------------------------

    def _inject_fault(self) -> None:
        """One per-shard-call roll through the shared injector engine."""
        if self._fault is not None:
            self._fault.inject(n_keys=1)

    def _shard_query(
        self, shard: VectorShard, normalized_query: np.ndarray, k: int
    ) -> SearchResult:
        start = time.monotonic()
        self._inject_fault()
        result = shard.query(
            normalized_query, k, oversample=self.rerank_oversample
        )
        self.metrics.shard_latency(shard.shard_id).record(
            time.monotonic() - start
        )
        return result

    def _shard_query_batch(
        self, shard: VectorShard, queries: np.ndarray, k: int
    ) -> list[SearchResult]:
        start = time.monotonic()
        self._inject_fault()
        results = shard.query_batch(
            queries, k, oversample=self.rerank_oversample
        )
        self.metrics.shard_latency(shard.shard_id).record(
            time.monotonic() - start
        )
        return results

    def search(
        self,
        query: np.ndarray,
        k: int = 10,
        deadline_s: float | None = None,
    ) -> ShardedSearchResult:
        """Scatter-gather top-k with deadline-bounded partial degradation."""
        if k <= 0:
            raise ValidationError(f"k must be positive ({k=})")
        normalized = _normalize_query(query, self.dim)
        deadline = deadline_s if deadline_s is not None else self.default_deadline_s
        start = time.monotonic()
        futures = {
            self._executor.submit(self._shard_query, shard, normalized, k): shard
            for shard in self.shards
        }
        done, not_done = wait(futures, timeout=deadline)
        parts: list[SearchResult] = []
        missed = len(not_done)
        for future in done:
            try:
                parts.append(future.result())
            except TransientStoreError:
                self.metrics.shard_errors.inc()
                missed += 1
        for future in not_done:
            future.cancel()  # best effort; a running scan finishes unharvested
        merged = merge_topk(parts, k)
        elapsed = time.monotonic() - start
        self.metrics.record_query(elapsed, partial=missed > 0, missed=missed)
        return ShardedSearchResult(
            ids=merged.ids,
            scores=merged.scores,
            partial=missed > 0,
            shards_missed=missed,
        )

    def search_batch(
        self,
        queries: np.ndarray,
        k: int = 10,
        deadline_s: float | None = None,
    ) -> list[ShardedSearchResult]:
        """Micro-batched scatter-gather: one fan-out for many queries.

        The per-shard task answers *every* query in the batch, so the
        scatter overhead (task submission, lock acquisition, future
        bookkeeping) is paid once per shard instead of once per
        shard×query. A shard missing the deadline marks the whole batch
        partial — the same all-or-nothing grouping the feature
        micro-batcher exhibits.
        """
        if k <= 0:
            raise ValidationError(f"k must be positive ({k=})")
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValidationError(
                f"search_batch expects (q, {self.dim}) queries, got {queries.shape}"
            )
        norms = np.linalg.norm(queries, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        normalized = queries / norms
        deadline = deadline_s if deadline_s is not None else self.default_deadline_s
        start = time.monotonic()
        futures = {
            self._executor.submit(
                self._shard_query_batch, shard, normalized, k
            ): shard
            for shard in self.shards
        }
        done, not_done = wait(futures, timeout=deadline)
        per_shard: list[list[SearchResult]] = []
        missed = len(not_done)
        for future in done:
            try:
                per_shard.append(future.result())
            except TransientStoreError:
                self.metrics.shard_errors.inc()
                missed += 1
        for future in not_done:
            future.cancel()
        elapsed = time.monotonic() - start
        out: list[ShardedSearchResult] = []
        for position in range(len(normalized)):
            merged = merge_topk(
                [results[position] for results in per_shard], k
            )
            out.append(
                ShardedSearchResult(
                    ids=merged.ids,
                    scores=merged.scores,
                    partial=missed > 0,
                    shards_missed=missed,
                )
            )
        self.metrics.batched_queries.inc(len(normalized))
        self.metrics.record_query(elapsed, partial=missed > 0, missed=missed)
        return out

    def search_exact(self, query: np.ndarray, k: int = 10) -> SearchResult:
        """Exact top-k over the live set (sequential full scans; the
        recall oracle — deliberately outside the deadline machinery)."""
        normalized = _normalize_query(query, self.dim)
        parts = [shard.query_exact(normalized, k) for shard in self.shards]
        return merge_topk(parts, k)

    # -- maintenance ----------------------------------------------------------

    def compact(self) -> list[CompactionStats]:
        """Blue/green-compact every shard (on the caller's thread)."""
        stats = []
        codec = self._codec_factory()
        for shard in self.shards:
            shard_stats = shard.compact(self.factory, codec=codec)
            self.metrics.record_compaction(
                shard_stats.total_seconds, self.max_generation
            )
            stats.append(shard_stats)
        self.refresh_gauges()
        return stats

    def reencode(
        self, codec: str | None, codec_options: dict | None = None
    ) -> list[CompactionStats]:
        """Live blue/green re-encode: switch the storage format, reseal.

        Sets the codec spec for all *future* generations and immediately
        compacts every shard into the new format (``None`` re-encodes
        back to raw float64 + backend index). Queries and upserts proceed
        throughout — readers stay on the old generation until each
        shard's swap, and the watermark drain guarantees no write is
        lost to the rebuild race.
        """
        if codec is not None:
            make_codec(codec, **(codec_options or {}))  # validate eagerly
        self._codec_spec = codec
        self._codec_options = dict(codec_options or {})
        return self.compact()

    def compact_async(self) -> threading.Thread:
        """Kick a compaction off on a dedicated background thread."""
        thread = threading.Thread(
            target=self.compact, name="vecserve-compact", daemon=True
        )
        thread.start()
        return thread

    def refresh_gauges(self) -> None:
        self.metrics.delta_rows.set(sum(s.delta.size for s in self.shards))
        self.metrics.delta_tombstones.set(
            sum(s.delta.tombstone_count for s in self.shards)
        )
        self.metrics.snapshot_rows.set(
            sum(s.snapshot_rows for s in self.shards)
        )
        self.metrics.generation.set(self.max_generation)
        self.metrics.snapshot_bytes.set(self.snapshot_bytes)
        self.metrics.bytes_per_vector.set(int(round(self.bytes_per_vector)))
        pending = [
            s.staleness_s for s in self.shards if s.pending_mutations
        ]
        self.metrics.set_staleness(max(pending) if pending else 0.0)

    @property
    def max_generation(self) -> int:
        return max(shard.generation for shard in self.shards)

    @property
    def pending_mutations(self) -> int:
        return sum(shard.pending_mutations for shard in self.shards)

    @property
    def snapshot_rows(self) -> int:
        return sum(shard.snapshot_rows for shard in self.shards)

    @property
    def snapshot_bytes(self) -> int:
        """Resident bytes of the sealed generations across all shards
        (coded rows + codec state, or the raw float64 matrices)."""
        return sum(
            shard.cell.current().bytes_resident for shard in self.shards
        )

    @property
    def bytes_resident(self) -> int:
        """Everything the table keeps in memory: sealed generations,
        delta buffers, and the fp32 oracle reserve if kept."""
        return sum(shard.bytes_resident for shard in self.shards)

    @property
    def bytes_per_vector(self) -> float:
        """Per-row bytes of the sealed storage (row-weighted across
        shards; codec state and id maps excluded — this is the number
        the ≥4x compression acceptance gate is judged on)."""
        rows = 0
        total = 0.0
        for shard in self.shards:
            snapshot = shard.cell.current()
            if snapshot.size == 0:
                continue
            per_row = (
                snapshot.codec.bytes_per_vector
                if snapshot.codec is not None
                else 8.0 * self.dim
            )
            total += per_row * snapshot.size
            rows += snapshot.size
        return total / rows if rows else 0.0
