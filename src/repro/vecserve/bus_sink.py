"""Bus sink: embedding upserts flow through the durable ingestion log.

Production embedding pipelines do not call the vector service directly —
new-entity vectors ride the same durable stream as feature events, so
they are replayable, crash-safe, and effectively-once. This module wires
the PR3 ingestion bus into the serving plane:

* :func:`upsert_record` / :func:`tombstone_record` encode a vector (or a
  deletion) into a :class:`~repro.bus.log.BusRecord` — dimensions land in
  the record's float ``attributes`` (``v0``..``v{d-1}``), the ``value``
  field carries the dimension (or ``-1`` for a tombstone), and
  ``entity_id`` keys the partition so per-entity mutation order survives
  the bus;
* :class:`VectorUpsertSink` applies consumed batches to a
  :class:`~repro.vecserve.service.VectorService` table through the same
  :class:`~repro.bus.consumer.DedupeWindow` protocol as the store sinks,
  so the at-least-once redelivery after a crash is recognized and each
  mutation hits the delta exactly once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.bus import BusRecord, ConsumedRecord, DedupeWindow, Sink
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.bus.metrics import BusMetrics
    from repro.vecserve.service import VectorService

_TOMBSTONE = -1.0


def upsert_record(
    entity_id: int, vector: np.ndarray, timestamp: float
) -> BusRecord:
    """Encode one vector upsert as a bus record."""
    vector = np.asarray(vector, dtype=float).reshape(-1)
    if len(vector) == 0:
        raise ValidationError("cannot encode an empty vector")
    return BusRecord(
        entity_id=entity_id,
        timestamp=timestamp,
        value=float(len(vector)),
        attributes={f"v{i}": float(x) for i, x in enumerate(vector)},
    )


def tombstone_record(entity_id: int, timestamp: float) -> BusRecord:
    """Encode one vector deletion as a bus record."""
    return BusRecord(
        entity_id=entity_id, timestamp=timestamp, value=_TOMBSTONE
    )


def decode_record(record: BusRecord) -> tuple[int, np.ndarray | None]:
    """``(entity_id, vector)`` for an upsert, ``(entity_id, None)`` for a
    tombstone."""
    if record.value == _TOMBSTONE:
        return record.entity_id, None
    dim = int(record.value)
    if dim <= 0 or len(record.attributes) < dim:
        raise ValidationError(
            f"malformed vector record: dim={record.value}, "
            f"{len(record.attributes)} attribute(s)"
        )
    vector = np.empty(dim, dtype=float)
    try:
        for i in range(dim):
            vector[i] = record.attributes[f"v{i}"]
    except KeyError as exc:
        raise ValidationError(f"malformed vector record: missing {exc}") from exc
    return record.entity_id, vector


class VectorUpsertSink(Sink):
    """Applies bus vector mutations to one served table, effectively once.

    Per-entity order is total (the producer routes by ``entity_id``, so
    an entity's upserts and tombstones share a partition and arrive in
    offset order); the sink preserves arrival order *within* a batch by
    flushing contiguous runs of upserts between tombstones.
    """

    def __init__(
        self,
        service: "VectorService",
        name: str,
        version: int | None = None,
        dedupe: DedupeWindow | None = None,
        metrics: "BusMetrics | None" = None,
    ) -> None:
        self.service = service
        self.name = name
        self.version = version
        self.dedupe = dedupe or DedupeWindow()
        self.metrics = metrics
        self.applied_upserts = 0
        self.applied_tombstones = 0

    def _flush_upserts(
        self, ids: list[int], vectors: list[np.ndarray]
    ) -> None:
        if not ids:
            return
        self.service.upsert(
            self.name,
            np.asarray(ids, dtype=np.int64),
            np.stack(vectors),
            version=self.version,
        )
        self.applied_upserts += len(ids)
        ids.clear()
        vectors.clear()

    def apply_batch(self, batch: list[ConsumedRecord]) -> int:
        fresh = self.dedupe.filter_new(batch)
        if self.metrics is not None and len(batch) > len(fresh):
            self.metrics.duplicates_skipped.inc(len(batch) - len(fresh))
        if not fresh:
            return 0
        pending_ids: list[int] = []
        pending_vectors: list[np.ndarray] = []
        for consumed in fresh:
            entity_id, vector = decode_record(consumed.record)
            if vector is None:
                # A tombstone is an ordering barrier for its entity:
                # flush buffered upserts first so upsert->remove and
                # remove->upsert sequences land in arrival order.
                self._flush_upserts(pending_ids, pending_vectors)
                self.service.remove(
                    self.name,
                    np.asarray([entity_id], dtype=np.int64),
                    version=self.version,
                )
                self.applied_tombstones += 1
            else:
                pending_ids.append(entity_id)
                pending_vectors.append(vector)
            self.dedupe.mark(consumed.partition, consumed.offset)
        self._flush_upserts(pending_ids, pending_vectors)
        if self.metrics is not None:
            self.metrics.applied.inc(len(fresh))
        return len(fresh)
