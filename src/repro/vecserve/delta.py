"""The delta index: a small exact side-buffer absorbing live mutations.

A sealed snapshot (:mod:`repro.vecserve.snapshot`) is immutable — that is
what makes its reads lock-free — so freshness has to come from somewhere
else. The delta is that somewhere: a brute-force mini-index keyed by
*external* entity id that absorbs upserts and tombstones the moment they
arrive. Queries merge it with the snapshot (delta rows shadow snapshot
rows with the same id); a background compaction periodically folds the
delta into the next snapshot generation and drains what it folded.

The drain protocol is watermark-based so compaction never loses a write
that raced it: every mutation gets a monotonically increasing sequence
number; :meth:`DeltaIndex.freeze` copies the current contents plus the
sequence watermark; after the new snapshot (built from the frozen copy)
is swapped in, :meth:`DeltaIndex.release` drops only entries whose *last*
mutation is at or below the watermark — anything upserted while the
builder was running stays in the delta for the next cycle.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.index.base import SearchResult, _normalize_rows


@dataclass(frozen=True)
class DeltaFreeze:
    """An immutable copy of the delta taken at a sequence watermark."""

    ids: np.ndarray  # external ids of pending upserts
    vectors: np.ndarray  # their normalized rows, parallel to ids
    tombstones: frozenset[int]  # external ids deleted since last compaction
    watermark: int  # last sequence number included in this freeze

    @property
    def size(self) -> int:
        return len(self.ids)


_EMPTY_RESULT = SearchResult(
    ids=np.empty(0, dtype=np.int64), scores=np.empty(0, dtype=float)
)


class DeltaIndex:
    """Thread-safe brute-force buffer of live upserts and tombstones.

    Invariants (held under the internal lock):

    * an id appears in at most one of ``rows`` / ``tombstones`` — an
      upsert clears the id's tombstone, a remove drops the id's row;
    * every mutation advances ``last_sequence``; per-id sequence stamps
      make :meth:`release` safe against writes racing a compaction.
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValidationError(f"dim must be positive ({dim=})")
        self.dim = dim
        self._lock = threading.Lock()
        self._capacity = 16
        self._matrix = np.zeros((self._capacity, dim), dtype=float)
        self._ids: list[int] = []  # row position -> external id
        self._row_of: dict[int, int] = {}  # external id -> row position
        self._upsert_seq: dict[int, int] = {}
        self._tombstones: dict[int, int] = {}  # external id -> tombstone seq
        self._sequence = 0
        self.total_upserts = 0
        self.total_removes = 0

    # -- mutation -------------------------------------------------------------

    def upsert(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        """Insert or overwrite rows for external ``ids`` (clears tombstones)."""
        ids = np.asarray(ids, dtype=np.int64)
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValidationError(
                f"upsert expects (n, {self.dim}) vectors, got {vectors.shape}"
            )
        if len(ids) != len(vectors):
            raise ValidationError(
                f"upsert got {len(ids)} ids for {len(vectors)} vectors"
            )
        if len(ids) == 0:
            return
        normalized = _normalize_rows(vectors)
        with self._lock:
            for external, row_vector in zip(ids.tolist(), normalized):
                self._sequence += 1
                self._tombstones.pop(external, None)
                position = self._row_of.get(external)
                if position is None:
                    position = len(self._ids)
                    if position >= self._capacity:
                        self._grow()
                    self._ids.append(external)
                    self._row_of[external] = position
                self._matrix[position] = row_vector
                self._upsert_seq[external] = self._sequence
                self.total_upserts += 1

    def remove(self, ids: np.ndarray) -> int:
        """Tombstone external ``ids``; returns how many were newly dead.

        A tombstone masks the id everywhere — in this delta *and* in the
        sealed snapshot underneath — until compaction rebuilds without it.
        Removing an id the serving plane has never seen is a no-op (the
        tombstone is still recorded, so a racing snapshot row stays
        masked).
        """
        ids = np.asarray(ids, dtype=np.int64)
        newly = 0
        with self._lock:
            for external in ids.tolist():
                self._sequence += 1
                if external not in self._tombstones:
                    newly += 1
                self._tombstones[external] = self._sequence
                self.total_removes += 1
                position = self._row_of.pop(external, None)
                self._upsert_seq.pop(external, None)
                if position is not None:
                    self._evict_row(position)
        return newly

    def _grow(self) -> None:
        self._capacity *= 2
        grown = np.zeros((self._capacity, self.dim), dtype=float)
        grown[: len(self._ids)] = self._matrix[: len(self._ids)]
        self._matrix = grown

    def _evict_row(self, position: int) -> None:
        """Swap-remove a row, keeping the matrix dense."""
        last = len(self._ids) - 1
        if position != last:
            moved = self._ids[last]
            self._matrix[position] = self._matrix[last]
            self._ids[position] = moved
            self._row_of[moved] = position
        self._ids.pop()

    # -- read path ------------------------------------------------------------

    @property
    def size(self) -> int:
        """Live upserted rows currently buffered."""
        with self._lock:
            return len(self._ids)

    @property
    def tombstone_count(self) -> int:
        with self._lock:
            return len(self._tombstones)

    @property
    def last_sequence(self) -> int:
        with self._lock:
            return self._sequence

    @property
    def memory_bytes(self) -> int:
        """Resident bytes of the float64 buffer (capacity, not just rows)."""
        with self._lock:
            return int(self._matrix.nbytes)

    def masked_ids(self) -> frozenset[int]:
        """External ids that must be filtered out of snapshot results:
        everything this delta shadows (upserted) or killed (tombstoned)."""
        with self._lock:
            return frozenset(self._row_of) | frozenset(self._tombstones)

    def get_vectors(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fetch buffered rows by external id: ``(found_ids, vectors)``.

        Ids with no buffered row (never upserted, or tombstoned) are
        silently skipped — the caller re-ranks what it can and keeps its
        original scores for the rest.
        """
        ids = np.asarray(ids, dtype=np.int64)
        with self._lock:
            positions = [
                (external, self._row_of[external])
                for external in ids.tolist()
                if external in self._row_of
            ]
            if not positions:
                return np.empty(0, dtype=np.int64), np.empty((0, self.dim))
            found = np.asarray([external for external, __ in positions], dtype=np.int64)
            rows = self._matrix[[position for __, position in positions]].copy()
        return found, rows

    def search(self, normalized_query: np.ndarray, k: int) -> SearchResult:
        """Exact top-k over the buffered rows (external ids)."""
        if k <= 0:
            raise ValidationError(f"k must be positive ({k=})")
        with self._lock:
            n = len(self._ids)
            if n == 0:
                return _EMPTY_RESULT
            scores = self._matrix[:n] @ normalized_query
            ids = np.asarray(self._ids, dtype=np.int64)
        k = min(k, n)
        top = np.argpartition(-scores, kth=k - 1)[:k]
        order = np.argsort(-scores[top])
        keep = top[order]
        return SearchResult(ids=ids[keep], scores=scores[keep])

    def search_batch(
        self, normalized_queries: np.ndarray, k: int
    ) -> list[SearchResult]:
        """Exact top-k for a whole batch in one vectorized pass."""
        if k <= 0:
            raise ValidationError(f"k must be positive ({k=})")
        with self._lock:
            n = len(self._ids)
            if n == 0:
                return [_EMPTY_RESULT] * len(normalized_queries)
            scores = self._matrix[:n] @ normalized_queries.T  # (n, q)
            ids = np.asarray(self._ids, dtype=np.int64)
        k = min(k, n)
        top = np.argpartition(-scores, kth=k - 1, axis=0)[:k]
        out = []
        for column in range(scores.shape[1]):
            rows = top[:, column]
            column_scores = scores[rows, column]
            order = np.argsort(-column_scores)
            keep = rows[order]
            out.append(SearchResult(ids=ids[keep], scores=column_scores[order]))
        return out

    # -- compaction protocol --------------------------------------------------

    def freeze(self) -> DeltaFreeze:
        """Copy the current contents + watermark for a compaction cycle."""
        with self._lock:
            n = len(self._ids)
            return DeltaFreeze(
                ids=np.asarray(self._ids, dtype=np.int64),
                vectors=self._matrix[:n].copy(),
                tombstones=frozenset(self._tombstones),
                watermark=self._sequence,
            )

    def release(self, freeze: DeltaFreeze) -> int:
        """Drop entries folded into a snapshot built from ``freeze``.

        Only entries whose last mutation is at or below the freeze
        watermark are dropped; anything mutated during the build survives
        for the next cycle. Returns how many rows+tombstones were drained.
        """
        drained = 0
        with self._lock:
            for external in freeze.ids.tolist():
                sequence = self._upsert_seq.get(external)
                if sequence is None or sequence > freeze.watermark:
                    continue  # re-upserted (or removed) during the build
                position = self._row_of.pop(external)
                self._upsert_seq.pop(external)
                self._evict_row(position)
                drained += 1
            for external in freeze.tombstones:
                sequence = self._tombstones.get(external)
                if sequence is None or sequence > freeze.watermark:
                    continue
                del self._tombstones[external]
                drained += 1
        return drained
