"""Immutable index snapshots and the blue/green compaction cycle.

The availability trick that makes the vector serving plane rebuildable
under load is the classic blue/green swap: readers always query a
*sealed* :class:`IndexSnapshot` — an index generation that will never
mutate again, so snapshot reads need no coordination beyond grabbing the
current reference — while a background builder composes the next
generation (snapshot live rows minus tombstones, plus the frozen delta)
off to the side. When the build finishes, :func:`compact` swaps the
reference atomically and releases the folded delta entries. A query that
started before the swap finishes on the old generation; one that starts
after sees the new one; none ever blocks or fails because a rebuild is
in flight.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.index.base import SearchResult, VectorIndex
from repro.vecserve.delta import DeltaFreeze, DeltaIndex

IndexFactory = Callable[[], VectorIndex]

_EMPTY_RESULT = SearchResult(
    ids=np.empty(0, dtype=np.int64), scores=np.empty(0, dtype=float)
)


@dataclass(frozen=True)
class IndexSnapshot:
    """One sealed generation: a built index plus its row→external-id map.

    ``index`` is never mutated after sealing (the builder calls
    ``build()`` exactly once, before the snapshot becomes visible), so
    concurrent queries are safe without touching its write lock.
    ``index`` is ``None`` only for the empty generation.
    """

    generation: int
    index: VectorIndex | None
    ids: np.ndarray  # internal row -> external id
    created_at: float  # wall time the generation was sealed
    build_seconds: float = 0.0

    @property
    def size(self) -> int:
        return len(self.ids)

    @property
    def vectors(self) -> np.ndarray | None:
        """The sealed normalized matrix (oracle scans, next-gen rebuilds)."""
        return None if self.index is None else self.index.matrix

    def search(self, normalized_query: np.ndarray, k: int) -> SearchResult:
        """Top-k over the sealed generation, in external ids."""
        if self.index is None or self.size == 0:
            return _EMPTY_RESULT
        result = self.index.query(normalized_query, min(k, self.size))
        return SearchResult(ids=self.ids[result.ids], scores=result.scores)

    def search_batch(
        self, normalized_queries: np.ndarray, k: int
    ) -> list[SearchResult]:
        """Batched top-k over the sealed generation, in external ids.

        Delegates to the index's vectorized batch path (exact indexes
        score the whole batch in one matmul), so a shard answers a
        micro-batch with one lock-free pass instead of q serialized ones.
        """
        if self.index is None or self.size == 0:
            return [_EMPTY_RESULT] * len(normalized_queries)
        results = self.index.query_batch(
            normalized_queries, min(k, self.size)
        )
        return [
            SearchResult(ids=self.ids[result.ids], scores=result.scores)
            for result in results
        ]

    def search_exact(self, normalized_query: np.ndarray, k: int) -> SearchResult:
        """Exact top-k via a full scan of the sealed matrix (the oracle
        path recall monitoring shadows sampled queries against)."""
        matrix = self.vectors
        if matrix is None or self.size == 0:
            return _EMPTY_RESULT
        scores = matrix @ normalized_query
        k = min(k, len(scores))
        top = np.argpartition(-scores, kth=k - 1)[:k]
        order = np.argsort(-scores[top])
        keep = top[order]
        return SearchResult(ids=self.ids[keep], scores=scores[keep])


def empty_snapshot(generation: int = 0) -> IndexSnapshot:
    return IndexSnapshot(
        generation=generation,
        index=None,
        ids=np.empty(0, dtype=np.int64),
        created_at=time.time(),
    )


def build_snapshot(
    ids: np.ndarray,
    vectors: np.ndarray,
    factory: IndexFactory,
    generation: int,
) -> IndexSnapshot:
    """Seal a new generation from parallel ``(ids, vectors)`` arrays."""
    ids = np.asarray(ids, dtype=np.int64)
    vectors = np.asarray(vectors, dtype=float)
    if len(ids) != len(vectors):
        raise ValidationError(
            f"snapshot got {len(ids)} ids for {len(vectors)} vectors"
        )
    if len(set(ids.tolist())) != len(ids):
        raise ValidationError("snapshot ids must be unique")
    if len(ids) == 0:
        return empty_snapshot(generation)
    start = time.perf_counter()
    index = factory()
    index.build(vectors)
    return IndexSnapshot(
        generation=generation,
        index=index,
        ids=ids,
        created_at=time.time(),
        build_seconds=time.perf_counter() - start,
    )


class SnapshotCell:
    """The blue/green reference readers grab and compaction swaps.

    Reads return the current sealed snapshot without blocking; ``swap``
    replaces it atomically and counts generations. (A bare attribute read
    is already atomic under the GIL — the lock documents intent and
    guards the swap-count bookkeeping.)
    """

    def __init__(self, initial: IndexSnapshot | None = None) -> None:
        self._lock = threading.Lock()
        self._current = initial or empty_snapshot()
        self.swaps = 0

    def current(self) -> IndexSnapshot:
        return self._current

    def swap(self, snapshot: IndexSnapshot) -> IndexSnapshot:
        """Install ``snapshot``; returns the generation it replaced."""
        with self._lock:
            previous = self._current
            self._current = snapshot
            self.swaps += 1
            return previous


@dataclass(frozen=True)
class CompactionStats:
    """What one compaction cycle did."""

    generation: int
    base_rows: int  # live rows carried over from the old snapshot
    folded_upserts: int  # delta rows folded into the new generation
    dropped_tombstones: int  # rows the cycle physically removed
    drained: int  # delta entries released after the swap
    build_seconds: float
    total_seconds: float


def compose_live(
    snapshot: IndexSnapshot, freeze: DeltaFreeze
) -> tuple[np.ndarray, np.ndarray]:
    """The next generation's contents: base rows minus masked, plus delta.

    A snapshot row is *masked* when the freeze shadows it (re-upserted)
    or kills it (tombstoned); the frozen delta rows are appended after
    the survivors, so the (ids, vectors) pair stays parallel and unique.
    """
    masked = set(freeze.ids.tolist()) | set(freeze.tombstones)
    base_vectors = snapshot.vectors
    if snapshot.size and base_vectors is not None:
        if masked:
            keep = np.asarray(
                [external not in masked for external in snapshot.ids.tolist()],
                dtype=bool,
            )
            kept_ids = snapshot.ids[keep]
            kept_vectors = base_vectors[keep]
        else:
            kept_ids = snapshot.ids
            kept_vectors = base_vectors
    else:
        kept_ids = np.empty(0, dtype=np.int64)
        kept_vectors = np.empty((0, freeze.vectors.shape[1] if freeze.size else 0))
    if freeze.size == 0:
        return kept_ids, kept_vectors
    if len(kept_ids) == 0:
        return freeze.ids, freeze.vectors
    return (
        np.concatenate([kept_ids, freeze.ids]),
        np.vstack([kept_vectors, freeze.vectors]),
    )


def compact(
    cell: SnapshotCell,
    delta: DeltaIndex,
    factory: IndexFactory,
) -> CompactionStats:
    """Run one blue/green cycle: freeze → build off to the side → swap.

    Readers keep hitting the old generation for the entire build; the
    swap is a pointer replacement plus a watermark-bounded delta release,
    so the write-path pause is O(delta), never O(index).
    """
    start = time.perf_counter()
    base = cell.current()
    freeze = delta.freeze()
    ids, vectors = compose_live(base, freeze)
    next_generation = base.generation + 1
    if len(ids) == 0:
        snapshot = empty_snapshot(next_generation)
    else:
        snapshot = build_snapshot(ids, vectors, factory, next_generation)
    cell.swap(snapshot)
    drained = delta.release(freeze)
    return CompactionStats(
        generation=next_generation,
        base_rows=int(len(ids) - freeze.size),
        folded_upserts=int(freeze.size),
        dropped_tombstones=len(freeze.tombstones),
        drained=drained,
        build_seconds=snapshot.build_seconds,
        total_seconds=time.perf_counter() - start,
    )
