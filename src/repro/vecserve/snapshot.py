"""Immutable index snapshots and the blue/green compaction cycle.

The availability trick that makes the vector serving plane rebuildable
under load is the classic blue/green swap: readers always query a
*sealed* :class:`IndexSnapshot` — an index generation that will never
mutate again, so snapshot reads need no coordination beyond grabbing the
current reference — while a background builder composes the next
generation (snapshot live rows minus tombstones, plus the frozen delta)
off to the side. When the build finishes, :func:`compact` swaps the
reference atomically and releases the folded delta entries. A query that
started before the swap finishes on the old generation; one that starts
after sees the new one; none ever blocks or fails because a rebuild is
in flight.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.codec import (
    CodedVectors,
    VectorCodec,
    adc_topk,
    adc_topk_batch,
    codec_from_state,
    codec_to_state,
    make_codec,
)
from repro.errors import ValidationError
from repro.index.base import SearchResult, VectorIndex, _normalize_rows
from repro.vecserve.delta import DeltaFreeze, DeltaIndex

IndexFactory = Callable[[], VectorIndex]

#: A fresh untrained codec per sealed generation (or ``None`` for raw
#: float64 storage). Mirrors ``IndexFactory``: the builder trains/encodes
#: a new instance per snapshot so generations never share mutable state.
CodecFactory = Callable[[], VectorCodec]

#: Current coded-snapshot payload layout. Version 2 introduced pluggable
#: coded storage ("raw" float64 vs codec-compressed codes); version 1 was
#: the implicit pre-codec pickle layout, which is no longer readable.
SNAPSHOT_FORMAT_VERSION = 2

_EMPTY_RESULT = SearchResult(
    ids=np.empty(0, dtype=np.int64), scores=np.empty(0, dtype=float)
)


@dataclass(frozen=True)
class IndexSnapshot:
    """One sealed generation: built index *or* coded rows + id map.

    Storage comes in two sealed formats:

    * **raw** — ``index`` holds a built backend index over the float64
      normalized matrix (``codec``/``coded`` are ``None``);
    * **coded** — ``codec``/``coded`` hold a trained
      :class:`~repro.codec.VectorCodec` and its encoded rows; queries run
      the codec's ADC kernels over the codes (``index`` is ``None``).

    Either way nothing mutates after sealing, so concurrent queries are
    safe without coordination. All three of ``index``/``codec``/``coded``
    are ``None`` only for the empty generation.
    """

    generation: int
    index: VectorIndex | None
    ids: np.ndarray  # internal row -> external id
    created_at: float  # wall time the generation was sealed
    build_seconds: float = 0.0
    codec: VectorCodec | None = None  # trained codec for coded storage
    coded: CodedVectors | None = None  # the encoded rows, parallel to ids

    @property
    def size(self) -> int:
        return len(self.ids)

    @property
    def codec_kind(self) -> str:
        """Storage format label: ``"raw"`` or the codec kind."""
        return "raw" if self.codec is None else self.codec.kind

    @property
    def bytes_resident(self) -> int:
        """Resident bytes of this generation: rows + codec state + id map."""
        total = int(self.ids.nbytes)
        if self.coded is not None and self.codec is not None:
            total += self.coded.nbytes + self.codec.state_bytes
        elif self.index is not None and self.index.matrix is not None:
            total += int(self.index.matrix.nbytes)
        return total

    @property
    def vectors(self) -> np.ndarray | None:
        """The sealed normalized matrix (oracle scans, next-gen rebuilds).

        Coded generations *decode* on access — a full float64
        materialization, meant for the compaction/rebuild path, never the
        per-query path.
        """
        if self.coded is not None and self.codec is not None:
            return self.codec.decode(self.coded)
        return None if self.index is None else self.index.matrix

    def search(self, normalized_query: np.ndarray, k: int) -> SearchResult:
        """Top-k over the sealed generation, in external ids."""
        if self.size == 0:
            return _EMPTY_RESULT
        if self.coded is not None and self.codec is not None:
            positions, scores = adc_topk(
                self.codec, self.coded, normalized_query, min(k, self.size)
            )
            return SearchResult(ids=self.ids[positions], scores=scores)
        if self.index is None:
            return _EMPTY_RESULT
        result = self.index.query(normalized_query, min(k, self.size))
        return SearchResult(ids=self.ids[result.ids], scores=result.scores)

    def search_batch(
        self, normalized_queries: np.ndarray, k: int
    ) -> list[SearchResult]:
        """Batched top-k over the sealed generation, in external ids.

        Delegates to the index's vectorized batch path (exact indexes
        score the whole batch in one matmul) or the codec's batched ADC
        kernel, so a shard answers a micro-batch with one lock-free pass
        instead of q serialized ones.
        """
        if self.size == 0:
            return [_EMPTY_RESULT] * len(normalized_queries)
        if self.coded is not None and self.codec is not None:
            return [
                SearchResult(ids=self.ids[positions], scores=scores)
                for positions, scores in adc_topk_batch(
                    self.codec,
                    self.coded,
                    normalized_queries,
                    min(k, self.size),
                )
            ]
        if self.index is None:
            return [_EMPTY_RESULT] * len(normalized_queries)
        results = self.index.query_batch(
            normalized_queries, min(k, self.size)
        )
        return [
            SearchResult(ids=self.ids[result.ids], scores=result.scores)
            for result in results
        ]

    def search_exact(self, normalized_query: np.ndarray, k: int) -> SearchResult:
        """Exact top-k via a full scan of the sealed rows.

        For coded generations this is the full ADC scan — exact *with
        respect to the codes*; quantization loss vs the original floats
        is only visible against an fp32 oracle kept outside the snapshot
        (see ``keep_oracle`` in :mod:`repro.vecserve.shards`).
        """
        if self.coded is not None and self.codec is not None:
            return self.search(normalized_query, k)
        matrix = self.vectors
        if matrix is None or self.size == 0:
            return _EMPTY_RESULT
        scores = matrix @ normalized_query
        k = min(k, len(scores))
        top = np.argpartition(-scores, kth=k - 1)[:k]
        order = np.argsort(-scores[top])
        keep = top[order]
        return SearchResult(ids=self.ids[keep], scores=scores[keep])


def empty_snapshot(generation: int = 0) -> IndexSnapshot:
    return IndexSnapshot(
        generation=generation,
        index=None,
        ids=np.empty(0, dtype=np.int64),
        created_at=time.time(),
    )


def build_snapshot(
    ids: np.ndarray,
    vectors: np.ndarray,
    factory: IndexFactory,
    generation: int,
    codec: str | VectorCodec | CodecFactory | None = None,
) -> IndexSnapshot:
    """Seal a new generation from parallel ``(ids, vectors)`` arrays.

    With ``codec`` (a kind name, an untrained codec, or a factory), the
    generation is sealed *coded*: rows are L2-normalized (matching the
    backend indexes' cosine convention), the codec trains on them, and
    only the codes + trained state are retained — ``factory`` is unused
    on this path, since queries run ADC scans instead of a backend index.
    """
    ids = np.asarray(ids, dtype=np.int64)
    vectors = np.asarray(vectors, dtype=float)
    if len(ids) != len(vectors):
        raise ValidationError(
            f"snapshot got {len(ids)} ids for {len(vectors)} vectors"
        )
    if len(set(ids.tolist())) != len(ids):
        raise ValidationError("snapshot ids must be unique")
    if len(ids) == 0:
        return empty_snapshot(generation)
    start = time.perf_counter()
    if codec is not None:
        if callable(codec) and not isinstance(codec, VectorCodec):
            codec = codec()  # CodecFactory: fresh instance per generation
        built_codec = make_codec(codec)
        normalized = _normalize_rows(vectors)
        built_codec.train(normalized)
        return IndexSnapshot(
            generation=generation,
            index=None,
            ids=ids,
            created_at=time.time(),
            build_seconds=time.perf_counter() - start,
            codec=built_codec,
            coded=built_codec.encode(normalized),
        )
    index = factory()
    index.build(vectors)
    return IndexSnapshot(
        generation=generation,
        index=index,
        ids=ids,
        created_at=time.time(),
        build_seconds=time.perf_counter() - start,
    )


class SnapshotCell:
    """The blue/green reference readers grab and compaction swaps.

    Reads return the current sealed snapshot without blocking; ``swap``
    replaces it atomically and counts generations. (A bare attribute read
    is already atomic under the GIL — the lock documents intent and
    guards the swap-count bookkeeping.)
    """

    def __init__(self, initial: IndexSnapshot | None = None) -> None:
        self._lock = threading.Lock()
        self._current = initial or empty_snapshot()
        self.swaps = 0

    def current(self) -> IndexSnapshot:
        return self._current

    def swap(self, snapshot: IndexSnapshot) -> IndexSnapshot:
        """Install ``snapshot``; returns the generation it replaced."""
        with self._lock:
            previous = self._current
            self._current = snapshot
            self.swaps += 1
            return previous


@dataclass(frozen=True)
class CompactionStats:
    """What one compaction cycle did."""

    generation: int
    base_rows: int  # live rows carried over from the old snapshot
    folded_upserts: int  # delta rows folded into the new generation
    dropped_tombstones: int  # rows the cycle physically removed
    drained: int  # delta entries released after the swap
    build_seconds: float
    total_seconds: float
    codec_kind: str = "raw"  # storage format the new generation sealed with


def compose_live(
    snapshot: IndexSnapshot, freeze: DeltaFreeze
) -> tuple[np.ndarray, np.ndarray]:
    """The next generation's contents: base rows minus masked, plus delta.

    A snapshot row is *masked* when the freeze shadows it (re-upserted)
    or kills it (tombstoned); the frozen delta rows are appended after
    the survivors, so the (ids, vectors) pair stays parallel and unique.
    """
    masked = set(freeze.ids.tolist()) | set(freeze.tombstones)
    base_vectors = snapshot.vectors
    if snapshot.size and base_vectors is not None:
        if masked:
            keep = np.asarray(
                [external not in masked for external in snapshot.ids.tolist()],
                dtype=bool,
            )
            kept_ids = snapshot.ids[keep]
            kept_vectors = base_vectors[keep]
        else:
            kept_ids = snapshot.ids
            kept_vectors = base_vectors
    else:
        kept_ids = np.empty(0, dtype=np.int64)
        kept_vectors = np.empty((0, freeze.vectors.shape[1] if freeze.size else 0))
    if freeze.size == 0:
        return kept_ids, kept_vectors
    if len(kept_ids) == 0:
        return freeze.ids, freeze.vectors
    return (
        np.concatenate([kept_ids, freeze.ids]),
        np.vstack([kept_vectors, freeze.vectors]),
    )


def compact(
    cell: SnapshotCell,
    delta: DeltaIndex,
    factory: IndexFactory,
    codec: str | VectorCodec | CodecFactory | None = None,
) -> CompactionStats:
    """Run one blue/green cycle: freeze → build off to the side → swap.

    Readers keep hitting the old generation for the entire build; the
    swap is a pointer replacement plus a watermark-bounded delta release,
    so the write-path pause is O(delta), never O(index).

    ``codec`` selects the storage format of the *next* generation, which
    is how a live re-encode works: compose the live rows exactly as
    usual (decoding the old generation if it was coded), seal them in
    the new format, swap. The watermark-safe delta drain is untouched —
    re-encoding is just compaction with a different sealer.
    """
    start = time.perf_counter()
    base = cell.current()
    freeze = delta.freeze()
    ids, vectors = compose_live(base, freeze)
    next_generation = base.generation + 1
    if len(ids) == 0:
        snapshot = empty_snapshot(next_generation)
    else:
        snapshot = build_snapshot(
            ids, vectors, factory, next_generation, codec=codec
        )
    cell.swap(snapshot)
    drained = delta.release(freeze)
    return CompactionStats(
        generation=next_generation,
        base_rows=int(len(ids) - freeze.size),
        folded_upserts=int(freeze.size),
        dropped_tombstones=len(freeze.tombstones),
        drained=drained,
        build_seconds=snapshot.build_seconds,
        total_seconds=time.perf_counter() - start,
        codec_kind=snapshot.codec_kind,
    )


# -- serialization --------------------------------------------------------------


def serialize_snapshot(snapshot: IndexSnapshot) -> dict[str, object]:
    """Sealed generation → a plain, format-versioned payload dict.

    The payload is pickle/npz-friendly (numpy arrays + scalars only) and
    self-describing: ``format_version`` plus a ``storage`` tag of
    ``"raw"`` (float64 matrix; the backend index is rebuilt on load) or
    ``"coded"`` (codes + trained codec state; no index to rebuild).
    """
    payload: dict[str, object] = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "generation": snapshot.generation,
        "ids": snapshot.ids.copy(),
        "created_at": snapshot.created_at,
        "build_seconds": snapshot.build_seconds,
    }
    if snapshot.coded is not None and snapshot.codec is not None:
        payload["storage"] = "coded"
        payload["codes"] = snapshot.coded.codes.copy()
        payload["dim"] = snapshot.coded.dim
        payload["codec"] = codec_to_state(snapshot.codec)
    else:
        payload["storage"] = "raw"
        matrix = snapshot.vectors
        payload["vectors"] = None if matrix is None else matrix.copy()
    return payload


def deserialize_snapshot(
    payload: dict[str, object], factory: IndexFactory | None = None
) -> IndexSnapshot:
    """Payload dict → sealed generation, validating the format version.

    An unknown (or missing) ``format_version`` raises a
    :class:`~repro.errors.ValidationError` naming the supported version —
    the explicit failure mode that lets coded formats evolve without old
    readers exploding obscurely mid-query. ``factory`` is required only
    for non-empty ``"raw"`` payloads (the index is rebuilt on load).
    """
    version = payload.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise ValidationError(
            f"unsupported snapshot format_version {version!r}; this build "
            f"reads version {SNAPSHOT_FORMAT_VERSION} (re-seal the table "
            f"with compact() to migrate)"
        )
    storage = payload.get("storage")
    generation = int(payload["generation"])  # type: ignore[arg-type]
    ids = np.asarray(payload["ids"], dtype=np.int64)
    created_at = float(payload["created_at"])  # type: ignore[arg-type]
    build_seconds = float(payload.get("build_seconds", 0.0))  # type: ignore[arg-type]
    if storage == "coded":
        codec = codec_from_state(payload["codec"])  # type: ignore[arg-type]
        coded = CodedVectors(
            kind=codec.kind,
            codes=np.asarray(payload["codes"]),
            dim=int(payload["dim"]),  # type: ignore[arg-type]
        )
        if coded.n != len(ids):
            raise ValidationError(
                f"snapshot payload has {coded.n} coded rows for {len(ids)} ids"
            )
        return IndexSnapshot(
            generation=generation,
            index=None,
            ids=ids,
            created_at=created_at,
            build_seconds=build_seconds,
            codec=codec,
            coded=coded,
        )
    if storage == "raw":
        vectors = payload.get("vectors")
        if vectors is None or len(ids) == 0:
            return empty_snapshot(generation)
        if factory is None:
            raise ValidationError(
                "raw snapshot payloads need an IndexFactory to rebuild the "
                "backend index"
            )
        rebuilt = build_snapshot(ids, np.asarray(vectors), factory, generation)
        return IndexSnapshot(
            generation=generation,
            index=rebuilt.index,
            ids=rebuilt.ids,
            created_at=created_at,
            build_seconds=build_seconds,
        )
    raise ValidationError(
        f"unknown snapshot storage {storage!r}; expected 'raw' or 'coded'"
    )
