"""Online quality and latency telemetry for the vector serving plane.

An ANN service can silently rot in two independent ways: *latency* (a
shard falls behind, scatter-gather starts shedding it) and *quality*
(churn degrades the graph/cells until recall drifts below the SLO while
every query still "succeeds"). This module watches both:

* :class:`VectorServeMetrics` — per-shard latency histograms, query /
  partial-result / deadline-miss counters, delta-size and staleness
  gauges, compaction stats and the current blue/green generation. Every
  series is allocated through a
  :class:`~repro.runtime.telemetry.MetricsRegistry` (``vecserve_*``
  namespace, labelled by table); when a serving-metrics facade is
  attached (duck-typed — anything exposing ``endpoint(name)``),
  whole-query latencies and degradations are mirrored into a
  ``vector_search:<name>`` endpoint so the one serving dashboard covers
  vectors too.
* :class:`RecallMonitor` — sampled shadow queries: with probability
  ``sample_rate`` a served query is replayed against the exact
  brute-force oracle over the *same live set* (sealed matrix + delta)
  and the overlap becomes one recall@k observation in a sliding window.
  The resulting estimate is an *online* recall number — measured on real
  traffic against the current index state, not on a frozen eval set.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ValidationError
from repro.index.base import SearchResult
from repro.runtime.telemetry import Counter, LatencyHistogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - type checkers only (no runtime import)
    from repro.serving import ServingMetrics


class VectorServeMetrics:
    """All operational metrics for one served ``(name, version)`` table.

    ``registry`` defaults to a private
    :class:`~repro.runtime.telemetry.MetricsRegistry`; pass the owning
    service's registry (plus a ``table`` label) to merge every served
    table into one export. ``serving`` is the optional read-tier facade
    the whole-query series are mirrored into.
    """

    def __init__(
        self,
        serving: "ServingMetrics | None" = None,
        mirror_endpoint: str | None = None,
        registry: MetricsRegistry | None = None,
        table: str | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._label = {"table": table} if table is not None else {}
        label = self._label
        self.queries = self.registry.counter("vecserve_queries_total", **label)
        self.batched_queries = self.registry.counter(
            "vecserve_batched_queries_total", **label
        )
        # queries answered with >=1 shard missing
        self.partials = self.registry.counter("vecserve_partials_total", **label)
        # individual shard deadline misses
        self.shard_misses = self.registry.counter(
            "vecserve_shard_misses_total", **label
        )
        # individual shard failures (faults)
        self.shard_errors = self.registry.counter(
            "vecserve_shard_errors_total", **label
        )
        self.upserts = self.registry.counter("vecserve_upserts_total", **label)
        self.removes = self.registry.counter("vecserve_removes_total", **label)
        self.compactions = self.registry.counter(
            "vecserve_compactions_total", **label
        )
        self.search_latency = self.registry.histogram(
            "vecserve_search_latency_seconds", **label
        )
        self.delta_rows = self.registry.gauge("vecserve_delta_rows", **label)
        self.delta_tombstones = self.registry.gauge(
            "vecserve_delta_tombstones", **label
        )
        self.generation = self.registry.gauge("vecserve_generation", **label)
        self.snapshot_rows = self.registry.gauge(
            "vecserve_snapshot_rows", **label
        )
        # resident bytes of the sealed generations (codes + codec state)
        self.snapshot_bytes = self.registry.gauge(
            "vecserve_snapshot_bytes", **label
        )
        # per-row bytes of the sealed storage format (8*dim when raw)
        self.bytes_per_vector = self.registry.gauge(
            "vecserve_bytes_per_vector", **label
        )
        self._shard_latency: dict[int, LatencyHistogram] = {}
        self._lock = threading.Lock()
        self._compaction_seconds = 0.0
        self._staleness_s = 0.0  # age of the oldest un-compacted mutation
        self._serving = serving
        self._mirror_endpoint = mirror_endpoint

    # -- recording ------------------------------------------------------------

    def shard_latency(self, shard: int) -> LatencyHistogram:
        with self._lock:
            histogram = self._shard_latency.get(shard)
            if histogram is None:
                histogram = self._shard_latency[shard] = self.registry.histogram(
                    "vecserve_shard_latency_seconds",
                    shard=shard,
                    **self._label,
                )
            return histogram

    def record_query(self, seconds: float, partial: bool, missed: int) -> None:
        self.queries.inc()
        self.search_latency.record(seconds)
        if partial:
            self.partials.inc()
        if missed:
            self.shard_misses.inc(missed)
        if self._serving is not None and self._mirror_endpoint is not None:
            endpoint = self._serving.endpoint(self._mirror_endpoint)
            endpoint.requests.inc()
            endpoint.latency.record(seconds)
            if partial:
                endpoint.degraded.inc()

    def record_compaction(self, seconds: float, generation: int) -> None:
        self.compactions.inc()
        self.generation.set(generation)
        with self._lock:
            self._compaction_seconds += seconds

    def set_staleness(self, seconds: float) -> None:
        with self._lock:
            self._staleness_s = max(0.0, seconds)

    # -- reading --------------------------------------------------------------

    @property
    def compaction_seconds(self) -> float:
        with self._lock:
            return self._compaction_seconds

    @property
    def staleness_s(self) -> float:
        with self._lock:
            return self._staleness_s

    def shard_ids(self) -> list[int]:
        with self._lock:
            return sorted(self._shard_latency)

    def snapshot(self) -> dict[str, object]:
        """One dict with every gauge/counter plus per-shard percentiles."""
        return {
            "queries": self.queries.value,
            "batched_queries": self.batched_queries.value,
            "partials": self.partials.value,
            "shard_misses": self.shard_misses.value,
            "shard_errors": self.shard_errors.value,
            "upserts": self.upserts.value,
            "removes": self.removes.value,
            "compactions": self.compactions.value,
            "compaction_seconds": round(self.compaction_seconds, 6),
            "generation": self.generation.value,
            "snapshot_rows": self.snapshot_rows.value,
            "snapshot_bytes": self.snapshot_bytes.value,
            "bytes_per_vector": self.bytes_per_vector.value,
            "delta_rows": self.delta_rows.value,
            "delta_tombstones": self.delta_tombstones.value,
            "delta_staleness_s": round(self.staleness_s, 6),
            "latency": self.search_latency.summary(),
            "shards": {
                shard: self.shard_latency(shard).summary()
                for shard in self.shard_ids()
            },
        }


class RecallMonitor:
    """Sampled shadow-query recall@k estimation against an exact oracle.

    ``oracle`` maps ``(normalized_query, k)`` to the exact
    :class:`SearchResult` over the currently-live vector set (the sharded
    index's brute-force scan path). Sampling decisions come from a seeded
    private RNG so tests are deterministic; observations land in a
    bounded sliding window, so the estimate tracks the *recent* quality
    of the index rather than averaging over its whole lifetime.
    """

    def __init__(
        self,
        oracle,
        k: int = 10,
        sample_rate: float = 0.05,
        window: int = 256,
        seed: int = 0,
        context=None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValidationError(
                f"sample_rate must be in [0, 1] ({sample_rate=})"
            )
        if k <= 0:
            raise ValidationError(f"k must be positive ({k=})")
        if window <= 0:
            raise ValidationError(f"window must be positive ({window=})")
        self._oracle = oracle
        self.k = k
        self.sample_rate = sample_rate
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._window: deque[float] = deque(maxlen=window)
        # ``context`` (optional zero-arg callable, e.g. ``lambda:
        # (index.max_generation, index.codec_kind)``) labels each
        # observation with the serving state it was measured under, so a
        # re-encode swap that degrades recall is attributable: recall
        # keeps separate windows per (generation, codec) context.
        self._context = context
        self._window_size = window
        self._by_context: dict[str, deque[float]] = {}
        self.samples = Counter()

    def maybe_observe(
        self, normalized_query: np.ndarray, served: SearchResult
    ) -> float | None:
        """Shadow the query with probability ``sample_rate``.

        Returns the recall observation when sampled, else ``None``.
        """
        if self.sample_rate <= 0.0:
            return None
        with self._lock:
            sampled = self._rng.random() < self.sample_rate
        if not sampled:
            return None
        return self.observe(normalized_query, served)

    def observe(
        self, normalized_query: np.ndarray, served: SearchResult
    ) -> float:
        """Unconditionally shadow one query and record its recall@k."""
        exact = self._oracle(normalized_query, self.k)
        if len(exact) == 0:
            return 1.0  # empty index: nothing to recall
        # Judge overlap at the depth the caller actually received: a k=2
        # query shadowed against top-10 truth would cap recall at 0.2 no
        # matter how good the index is.
        k = min(self.k, len(exact), max(len(served), 1))
        truth = set(exact.ids[:k].tolist())
        found = set(served.ids[:k].tolist())
        recall = len(found & truth) / len(truth)
        label = self._context_label()
        with self._lock:
            self._window.append(recall)
            if label is not None:
                bucket = self._by_context.get(label)
                if bucket is None:
                    bucket = self._by_context[label] = deque(
                        maxlen=self._window_size
                    )
                bucket.append(recall)
        self.samples.inc()
        return recall

    def _context_label(self) -> str | None:
        if self._context is None:
            return None
        value = self._context()
        if isinstance(value, tuple):
            return ":".join(str(part) for part in value)
        return str(value)

    def recall_estimate(self) -> float | None:
        """Mean recall over the sliding window (``None`` before any sample)."""
        with self._lock:
            if not self._window:
                return None
            return sum(self._window) / len(self._window)

    def recall_by_context(self) -> dict[str, float]:
        """Mean recall per context label (e.g. ``"gen:codec"``) — the
        attribution view: did the number move when the format swapped?"""
        with self._lock:
            return {
                label: sum(bucket) / len(bucket)
                for label, bucket in sorted(self._by_context.items())
                if bucket
            }

    def window_size(self) -> int:
        with self._lock:
            return len(self._window)
