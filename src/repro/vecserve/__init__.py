"""The vector serving plane: sharded, versioned ANN search that stays live.

The paper's §3–4 thesis is that pretrained embeddings must become
first-class feature-store citizens — which means they need a *serving
plane*, not just a store. ``repro.index`` gives build-once indexes;
this package turns them into a production-shaped service:

* :mod:`repro.vecserve.shards` — hash-partitioned shards, scatter-gather
  top-k with deadline-bounded partial degradation;
* :mod:`repro.vecserve.snapshot` — immutable index generations with
  blue/green atomic swaps (rebuilds never block or fail a query), with
  pluggable coded storage (:mod:`repro.codec` int8/PQ formats scanned
  through ADC kernels) and format-versioned (de)serialization;
* :mod:`repro.vecserve.delta` — an exact side-buffer absorbing live
  upserts and tombstones, merged at query time, drained by compaction;
* :mod:`repro.vecserve.service` — the :class:`VectorService` façade:
  version routing, registration subscription, micro-batched queries;
* :mod:`repro.vecserve.monitor` — per-shard latency histograms, delta
  staleness gauges, and sampled online recall@k against an exact oracle;
* :mod:`repro.vecserve.bus_sink` — embedding upserts flowing through the
  durable ingestion bus, applied effectively once.
"""

from repro.vecserve.bus_sink import (
    VectorUpsertSink,
    decode_record,
    tombstone_record,
    upsert_record,
)
from repro.vecserve.delta import DeltaFreeze, DeltaIndex
from repro.vecserve.monitor import RecallMonitor, VectorServeMetrics
from repro.vecserve.service import BACKENDS, VectorQueryBatcher, VectorService
from repro.vecserve.shards import (
    ShardedSearchResult,
    ShardedVectorIndex,
    VectorShard,
    merge_topk,
    shard_for,
)
from repro.vecserve.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    CodecFactory,
    CompactionStats,
    IndexSnapshot,
    SnapshotCell,
    build_snapshot,
    compact,
    compose_live,
    deserialize_snapshot,
    empty_snapshot,
    serialize_snapshot,
)

__all__ = [
    "BACKENDS",
    "SNAPSHOT_FORMAT_VERSION",
    "CodecFactory",
    "CompactionStats",
    "DeltaFreeze",
    "DeltaIndex",
    "IndexSnapshot",
    "RecallMonitor",
    "ShardedSearchResult",
    "ShardedVectorIndex",
    "SnapshotCell",
    "VectorQueryBatcher",
    "VectorServeMetrics",
    "VectorService",
    "VectorShard",
    "VectorUpsertSink",
    "build_snapshot",
    "compact",
    "compose_live",
    "decode_record",
    "deserialize_snapshot",
    "empty_snapshot",
    "serialize_snapshot",
    "merge_topk",
    "shard_for",
    "tombstone_record",
    "upsert_record",
]
