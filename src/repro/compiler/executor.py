"""Fused execution: many plans over one table, one physical scan.

The scheduler routinely materializes several feature views off the same
event table at the same tick. Naively that is N full scans of the same
rows; :func:`execute_fused` builds **one** :class:`SharedScan` bounded by
the tick's as-of timestamp and points every plan's operators at it. Each
plan keeps its own predicate masks and output shape — fusion shares the
physical work (partition slicing, column decodes, the per-entity segment
index), never the semantics, which is why fused output stays
byte-identical to per-view execution.

Plans that cannot run on the columnar path (string-ordering predicates)
drop out of the group and run on the row engine individually; the stats
report exactly how many views actually fused.

Inside a fusion group every predicate is applied as a residual mask —
per-plan timestamp pushdown would shrink the shared range below what
other members need. The mask is exact, so this trades a little pruning
for N-1 saved scans.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.compiler.compile import (
    compile_plan,
    evaluate_on_scan,
    evaluate_on_scan_at,
)
from repro.compiler.plan import Plan, exclusive_end
from repro.errors import ValidationError
from repro.storage.offline import OfflineTable
from repro.storage.scan import SharedScan


def empty_stats() -> dict[str, int]:
    """The compiler-accounting shape, all zeros (one scheduler tick's unit)."""
    return {
        "views_compiled": 0,
        "fusion_groups": 0,
        "views_fused": 0,
        "scans_saved": 0,
        "rows_scanned": 0,
        "rows_pruned": 0,
        "columns_decoded": 0,
        "columns_pruned": 0,
    }


def merge_stats(total: dict[str, int], delta: dict[str, int]) -> None:
    """Accumulate one execution's stats into a running total, in place."""
    for key, value in delta.items():
        total[key] = total.get(key, 0) + int(value)


def execute_fused(
    plans: Sequence[Plan],
    table: OfflineTable,
    as_of: float,
    entity_ids: Sequence[int] | None = None,
) -> tuple[list[list[dict[str, object]]], dict[str, int]]:
    """Evaluate every plan as of one timestamp through one shared scan.

    Returns ``(rows_per_plan, stats)`` with results aligned to the input
    order. A single-plan "group" degenerates to normal compiled execution
    (no scans saved, no fusion reported).
    """
    if not plans:
        return [], empty_stats()
    compiled = [compile_plan(plan, table) for plan in plans]
    candidates = (
        [int(e) for e in entity_ids]
        if entity_ids is not None
        else table.entity_ids()
    )
    stats = empty_stats()
    stats["views_compiled"] = len(compiled)

    fusable = [c for c in compiled if c.strategy != "row-engine"]
    results: dict[int, list[dict[str, object]]] = {}

    if len(fusable) >= 2:
        scan = SharedScan(table, start=None, end=exclusive_end(as_of))
        for c in fusable:
            position = compiled.index(c)
            results[position] = evaluate_on_scan(
                c.plan, c.plan.predicates, scan, as_of, candidates
            )
        stats["fusion_groups"] = 1
        stats["views_fused"] = len(fusable)
        stats["scans_saved"] = len(fusable) - 1
        stats["rows_scanned"] = scan.rows_scanned
        stats["rows_pruned"] = scan.rows_pruned
        stats["columns_decoded"] = scan.columns_decoded
        shared_projection = set().union(
            *(c.plan.required_columns() for c in fusable)
        )
        stats["columns_pruned"] = len(
            set(table.schema.columns) - shared_projection
        )
    else:
        for c in fusable:
            position = compiled.index(c)
            results[position] = c.evaluate(as_of, entity_ids=candidates)
            merge_stats(stats, c.stats)

    for position, c in enumerate(compiled):
        if c.strategy == "row-engine":
            results[position] = c.evaluate(as_of, entity_ids=candidates)
            merge_stats(stats, c.stats)

    return [results[i] for i in range(len(compiled))], stats


def execute_fused_at(
    plans: Sequence[Plan],
    table: OfflineTable,
    entity_ids: Sequence[int],
    timestamps: Sequence[float],
) -> tuple[list[list[dict[str, object]]], dict[str, int]]:
    """Fused as-of join: every plan answers the same probe set, one scan."""
    if not plans:
        return [], empty_stats()
    eids = [int(e) for e in entity_ids]
    ts = [float(t) for t in timestamps]
    if len(eids) != len(ts):
        raise ValidationError(
            f"entity_ids and timestamps must align ({len(eids)} vs {len(ts)})"
        )
    compiled = [compile_plan(plan, table) for plan in plans]
    stats = empty_stats()
    stats["views_compiled"] = len(compiled)
    fusable = [c for c in compiled if c.strategy != "row-engine"]
    results: dict[int, list[dict[str, object]]] = {}

    if len(fusable) >= 2:
        horizon = max(ts) if ts else 0.0
        scan = SharedScan(table, start=None, end=exclusive_end(horizon))
        for c in fusable:
            position = compiled.index(c)
            results[position] = evaluate_on_scan_at(
                c.plan, c.plan.predicates, scan, eids, ts
            )
        stats["fusion_groups"] = 1
        stats["views_fused"] = len(fusable)
        stats["scans_saved"] = len(fusable) - 1
        stats["rows_scanned"] = scan.rows_scanned
        stats["rows_pruned"] = scan.rows_pruned
        stats["columns_decoded"] = scan.columns_decoded
        shared_projection = set().union(
            *(c.plan.required_columns() for c in fusable)
        )
        stats["columns_pruned"] = len(
            set(table.schema.columns) - shared_projection
        )
    else:
        for c in fusable:
            position = compiled.index(c)
            results[position] = c.evaluate_at(eids, ts)
            merge_stats(stats, c.stats)

    for position, c in enumerate(compiled):
        if c.strategy == "row-engine":
            results[position] = c.evaluate_at(eids, ts)
            merge_stats(stats, c.stats)

    return [results[i] for i in range(len(compiled))], stats


def explain_fused(plans: Sequence[Plan], table: OfflineTable) -> str:
    """Render the fusion group's physical layout."""
    compiled = [compile_plan(plan, table) for plan in plans]
    fusable = [c for c in compiled if c.strategy != "row-engine"]
    fallback = [c for c in compiled if c.strategy == "row-engine"]
    lines = [
        f"FusedGroup: table={table.name} plans={len(compiled)} "
        f"fused={len(fusable) if len(fusable) >= 2 else 0} "
        f"scans_saved={max(0, len(fusable) - 1) if len(fusable) >= 2 else 0}"
    ]
    if len(fusable) >= 2:
        shared = sorted(
            set().union(*(c.plan.required_columns() for c in fusable))
        )
        lines.append(f"  shared scan: {table.name}[-inf, as_of)")
        lines.append(f"  shared columns: {', '.join(shared)}")
    for c in compiled:
        role = "row-engine" if c in fallback else (
            "fused" if len(fusable) >= 2 else c.strategy
        )
        predicates = len(c.plan.predicates)
        lines.append(
            f"  - plan({c.plan.source_table}): {len(c.plan.features)} "
            f"feature(s), {predicates} predicate(s) [{role}]"
        )
    return "\n".join(lines)
