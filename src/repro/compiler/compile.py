"""Lowering plans onto the columnar kernels.

:func:`compile_plan` turns a logical :class:`~repro.compiler.plan.Plan`
into a :class:`CompiledPlan` carrying a physical strategy:

``asof-index``
    No predicates: the plan is exactly the shape the batched as-of
    kernels were built for — ``latest_before_index_batch`` for
    latest/derived features, ``events_between_index_batch`` plus one
    :meth:`~repro.storage.offline.OfflineTable.gather_numeric` per window
    column. No scan at all.

``shared-scan``
    Predicates present: one :class:`~repro.storage.scan.SharedScan`
    bounded by as-of (and any timestamp predicates pushed into the scan
    range — pruned partitions are never decoded), a numpy mask per
    residual predicate, and per-entity ``searchsorted`` sub-windows.

``row-engine``
    Ordering/membership predicates on string columns cannot become numpy
    masks (``None`` payloads in object arrays explode); fall back to the
    reference row engine, which is always correct.

Projection pruning is implicit in all strategies: only columns named by
the plan's features and predicates are ever gathered or decoded.

All strategies are byte-identical to ``Plan.execute_rows`` /
``Plan.execute_rows_at`` — enforced by the parity suite — because they
feed the exact same float64 values, in the same order, to the exact same
aggregation callables (:func:`repro.core.transforms.aggregate_fn`).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.compiler.plan import Derived, Latest, Plan, WindowAgg, exclusive_end
from repro.core.transforms import aggregate_fn
from repro.errors import ValidationError
from repro.storage.offline import OfflineTable
from repro.storage.query import _STRING_ROW_PATH_OPS, Predicate
from repro.storage.scan import SharedScan


def _column_kind(table: OfflineTable, column: str) -> str:
    if column == "timestamp":
        return "float"
    if column == "entity_id":
        return "int"
    return table.schema.column_kind(column)


def _pushdown_time_bounds(
    predicates: Sequence[Predicate],
) -> tuple[float | None, float | None, tuple[Predicate, ...]]:
    """Split timestamp range predicates into scan bounds.

    ``ts >= v`` / ``ts > v`` / ``ts < v`` / ``ts <= v`` are *exactly*
    expressible as a half-open ``[start, end)`` scan range, so they are
    removed from the residual mask set entirely; pushing them down is
    semantics-preserving because a pruned row could never have matched.
    Other timestamp predicates (``==``, ``in``, ...) stay residual.
    """
    start: float | None = None
    end: float | None = None
    residual: list[Predicate] = []
    for predicate in predicates:
        if predicate.column != "timestamp" or predicate.op not in (
            ">=", ">", "<", "<=",
        ):
            residual.append(predicate)
            continue
        value = float(predicate.value)  # type: ignore[arg-type]
        if predicate.op == ">=":
            bound = value
            start = bound if start is None else max(start, bound)
        elif predicate.op == ">":
            bound = float(np.nextafter(value, np.inf))
            start = bound if start is None else max(start, bound)
        elif predicate.op == "<":
            bound = value
            end = bound if end is None else min(end, bound)
        else:  # "<="
            bound = float(np.nextafter(value, np.inf))
            end = bound if end is None else min(end, bound)
    return start, end, tuple(residual)


def compile_plan(plan: Plan, table: OfflineTable) -> "CompiledPlan":
    """Pick a physical strategy for ``plan`` over ``table``."""
    bound = plan if plan.is_bound else plan.bind(table.schema)
    if bound.source_table != table.name:
        raise ValidationError(
            f"plan reads table {bound.source_table!r} but was compiled "
            f"against {table.name!r}"
        )
    start, end, residual = _pushdown_time_bounds(bound.predicates)
    strategy = "shared-scan" if bound.predicates else "asof-index"
    for predicate in residual:
        if (
            _column_kind(table, predicate.column) == "string"
            and predicate.op in _STRING_ROW_PATH_OPS
        ):
            strategy = "row-engine"
            break
    return CompiledPlan(
        plan=bound,
        table=table,
        strategy=strategy,
        pushed_start=start,
        pushed_end=end,
        residual=residual,
    )


class CompiledPlan:
    """A plan bound to a table with a chosen physical strategy.

    ``evaluate`` produces the materialization shape (one row per entity
    with at least one matching event); ``evaluate_at`` is the as-of join
    (one row per probe, all-None when nothing matched). ``stats`` after a
    call reports what the optimizer saved.
    """

    def __init__(
        self,
        plan: Plan,
        table: OfflineTable,
        strategy: str,
        pushed_start: float | None,
        pushed_end: float | None,
        residual: tuple[Predicate, ...],
    ) -> None:
        self.plan = plan
        self.table = table
        self.strategy = strategy
        self.pushed_start = pushed_start
        self.pushed_end = pushed_end
        self.residual = residual
        self.stats: dict[str, int] = {}

    # -- columns the physical plan actually touches -----------------------

    def projected_columns(self) -> list[str]:
        """Columns decoded/gathered, vs. everything the table stores."""
        return sorted(self.plan.required_columns())

    def pruned_columns(self) -> list[str]:
        all_columns = set(self.table.schema.columns)
        return sorted(all_columns - self.plan.required_columns())

    # -- evaluation --------------------------------------------------------

    def evaluate(
        self, as_of: float, entity_ids: Sequence[int] | None = None
    ) -> list[dict[str, object]]:
        """One output row per candidate entity with >= 1 matching event."""
        candidates = (
            [int(e) for e in entity_ids]
            if entity_ids is not None
            else self.table.entity_ids()
        )
        if self.strategy == "row-engine":
            self.stats = {
                "rows_scanned": len(self.table),
                "rows_pruned": 0,
                "columns_decoded": 0,
                "columns_pruned": 0,
            }
            return self.plan.execute_rows(
                self.table, as_of, entity_ids=candidates
            )
        if self.strategy == "asof-index":
            return self._evaluate_index(as_of, candidates)
        return self._evaluate_scan(as_of, candidates)

    def evaluate_at(
        self,
        entity_ids: Sequence[int] | np.ndarray,
        timestamps: Sequence[float] | np.ndarray,
    ) -> list[dict[str, object]]:
        """As-of join: one output row per ``(entity, ts)`` probe."""
        eids = [int(e) for e in entity_ids]
        ts = [float(t) for t in timestamps]
        if len(eids) != len(ts):
            raise ValidationError(
                f"entity_ids and timestamps must align ({len(eids)} vs {len(ts)})"
            )
        if self.strategy == "row-engine":
            self.stats = {
                "rows_scanned": len(self.table),
                "rows_pruned": 0,
                "columns_decoded": 0,
                "columns_pruned": 0,
            }
            return self.plan.execute_rows_at(self.table, eids, ts)
        if self.strategy == "asof-index":
            return self._evaluate_index_at(eids, ts)
        return self._evaluate_scan_at(eids, ts)

    # -- asof-index strategy ----------------------------------------------

    def _evaluate_index(
        self, as_of: float, candidates: list[int]
    ) -> list[dict[str, object]]:
        probes = np.full(len(candidates), as_of, dtype=np.float64)
        rows = self._index_rows(np.asarray(candidates, dtype=np.int64), probes)
        out = [row for row in rows if row is not None]
        self.stats = {
            "rows_scanned": 0,
            "rows_pruned": len(self.table),
            "columns_decoded": len(self._window_columns()),
            "columns_pruned": len(self.pruned_columns()),
        }
        return out

    def _evaluate_index_at(
        self, eids: list[int], ts: list[float]
    ) -> list[dict[str, object]]:
        rows = self._index_rows(
            np.asarray(eids, dtype=np.int64),
            np.asarray(ts, dtype=np.float64),
            emit_misses=True,
        )
        self.stats = {
            "rows_scanned": 0,
            "rows_pruned": len(self.table),
            "columns_decoded": len(self._window_columns()),
            "columns_pruned": len(self.pruned_columns()),
        }
        return [row for row in rows if row is not None]

    def _window_columns(self) -> list[str]:
        return sorted(
            {
                f.op.column
                for f in self.plan.features
                if isinstance(f.op, WindowAgg)
            }
        )

    def _index_rows(
        self,
        eids: np.ndarray,
        ts: np.ndarray,
        emit_misses: bool = False,
    ) -> list[dict[str, object] | None]:
        """Shared core of the index strategy.

        Per probe: resolve the latest row index once, resolve each window
        feature's event-index window once, gather each window column once
        (flattened across probes), then assemble rows. ``emit_misses``
        selects the as-of-join shape (all-None rows for empty probes).
        """
        table = self.table
        latest_idx = table.latest_before_index_batch(eids, ts)
        hit = latest_idx >= 0

        window_features = [
            (f.name, f.op)
            for f in self.plan.features
            if isinstance(f.op, WindowAgg)
        ]
        # window -> per-probe (values, null) slices, one flat gather per feature
        window_values: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {}
        for name, op in window_features:
            windows = table.events_between_index_batch(
                eids, ts - op.window, ts
            )
            flat = (
                np.concatenate(windows)
                if windows
                else np.empty(0, dtype=np.int64)
            )
            values, null = table.gather_numeric(op.column, flat)
            offsets = np.concatenate(
                ([0], np.cumsum([len(w) for w in windows]))
            ).astype(np.int64)
            window_values[name] = [
                (values[offsets[i] : offsets[i + 1]], null[offsets[i] : offsets[i + 1]])
                for i in range(len(windows))
            ]

        aggregates = {
            name: aggregate_fn(op.agg) for name, op in window_features
        }
        out: list[dict[str, object] | None] = []
        for probe in range(len(eids)):
            if not hit[probe] and not emit_misses:
                out.append(None)
                continue
            row_out: dict[str, object] = {
                "entity_id": int(eids[probe]),
                "timestamp": float(ts[probe]),
            }
            latest = (
                table.row_at(int(latest_idx[probe])) if hit[probe] else None
            )
            for feature in self.plan.features:
                op = feature.op
                if isinstance(op, Latest):
                    row_out[feature.name] = (
                        latest.get(op.column) if latest is not None else None
                    )
                elif isinstance(op, Derived):
                    if latest is None:
                        row_out[feature.name] = None
                    else:
                        args = [latest.get(c) for c in op.inputs]
                        row_out[feature.name] = (
                            None if any(a is None for a in args) else op.fn(*args)
                        )
                else:  # WindowAgg
                    if latest is None:
                        # as-of-join miss: no visible events at all
                        row_out[feature.name] = None
                        continue
                    values, null = window_values[feature.name][probe]
                    valid = values[~null].astype(np.float64)
                    if len(valid) == 0:
                        row_out[feature.name] = (
                            0.0 if op.agg == "count" else None
                        )
                    else:
                        row_out[feature.name] = aggregates[feature.name](valid)
            out.append(row_out)
        return out

    # -- shared-scan strategy ---------------------------------------------

    def scan_bounds(self, horizon: float) -> tuple[float | None, float]:
        """The physical scan range after pushdown, capped at the horizon."""
        end = exclusive_end(horizon)
        if self.pushed_end is not None:
            end = min(end, self.pushed_end)
        return self.pushed_start, end

    def _build_scan(self, horizon: float) -> SharedScan:
        start, end = self.scan_bounds(horizon)
        return SharedScan(self.table, start=start, end=end)

    def _evaluate_scan(
        self, as_of: float, candidates: list[int]
    ) -> list[dict[str, object]]:
        scan = self._build_scan(as_of)
        rows = evaluate_on_scan(self.plan, self.residual, scan, as_of, candidates)
        self.stats = {
            "rows_scanned": scan.rows_scanned,
            "rows_pruned": scan.rows_pruned,
            "columns_decoded": scan.columns_decoded,
            "columns_pruned": len(self.pruned_columns()),
        }
        return rows

    def _evaluate_scan_at(
        self, eids: list[int], ts: list[float]
    ) -> list[dict[str, object]]:
        horizon = max(ts) if ts else 0.0
        scan = self._build_scan(horizon)
        rows = evaluate_on_scan_at(self.plan, self.residual, scan, eids, ts)
        self.stats = {
            "rows_scanned": scan.rows_scanned,
            "rows_pruned": scan.rows_pruned,
            "columns_decoded": scan.columns_decoded,
            "columns_pruned": len(self.pruned_columns()),
        }
        return rows

    # -- explain -----------------------------------------------------------

    def explain(self) -> str:
        """Logical plan plus the physical strategy underneath it."""
        lines = [self.plan.explain(), f"Physical: strategy={self.strategy}"]
        if self.strategy == "asof-index":
            lines.append(
                "  asof: latest_before_index_batch + "
                "events_between_index_batch (no scan)"
            )
        elif self.strategy == "shared-scan":
            start = "-inf" if self.pushed_start is None else f"{self.pushed_start:g}"
            end = "as_of" if self.pushed_end is None else f"{self.pushed_end:g}"
            lines.append(f"  scan: {self.table.name}[{start}, {end})")
            for predicate in self.residual:
                lines.append(
                    f"  mask: {predicate.column} {predicate.op} "
                    f"{predicate.value!r}"
                )
            pushed = len(self.plan.predicates) - len(self.residual)
            if pushed:
                lines.append(f"  pushdown: {pushed} timestamp predicate(s) -> scan range")
        else:
            lines.append("  fallback: string-ordering predicate forces the row engine")
        lines.append(
            f"  project: {', '.join(self.projected_columns()) or '(none)'}"
            + (
                f"  [pruned: {', '.join(self.pruned_columns())}]"
                if self.pruned_columns()
                else ""
            )
        )
        return "\n".join(lines)


# -- scan-based operators (also the fusion substrate) --------------------------


def _residual_mask(
    residual: Sequence[Predicate], scan: SharedScan
) -> np.ndarray | None:
    """AND of all residual predicate masks over the scanned rows."""
    mask: np.ndarray | None = None
    for predicate in residual:
        values, null = scan.column(predicate.column)
        hit = predicate.mask(values, null)
        mask = hit if mask is None else (mask & hit)
    return mask


def _matching_positions(
    scan: SharedScan, mask: np.ndarray | None, entity_id: int
) -> np.ndarray:
    """One entity's matching global scan positions, in time order."""
    positions = scan.segment_of(entity_id)
    if mask is None or len(positions) == 0:
        return positions
    return positions[mask[positions]]


def _window_value(
    op: WindowAgg,
    seg_ts: np.ndarray,
    seg_values: np.ndarray,
    seg_null: np.ndarray,
    as_of: float,
) -> float | None:
    """One window aggregate over an entity's matching segment arrays.

    ``seg_*`` cover events with ``ts <= as_of``; the sub-window
    ``as_of - window < ts <= as_of`` is two ``searchsorted`` calls.
    """
    lo = int(np.searchsorted(seg_ts, as_of - op.window, side="right"))
    hi = int(np.searchsorted(seg_ts, as_of, side="right"))
    values = seg_values[lo:hi]
    null = seg_null[lo:hi]
    valid = values[~null].astype(np.float64)
    if len(valid) == 0:
        return 0.0 if op.agg == "count" else None
    return aggregate_fn(op.agg)(valid)


def _evaluate_entity(
    plan: Plan,
    scan: SharedScan,
    positions: np.ndarray,
    as_of: float,
    columns: dict[str, tuple[np.ndarray, np.ndarray]],
) -> dict[str, object]:
    """Feature values for one entity from its matching positions (non-empty)."""
    seg_ts = scan.timestamps[positions]
    hi = int(np.searchsorted(seg_ts, as_of, side="right"))
    latest = scan.row_at(int(positions[hi - 1])) if hi > 0 else None
    out: dict[str, object] = {}
    for feature in plan.features:
        op = feature.op
        if isinstance(op, Latest):
            out[feature.name] = latest.get(op.column) if latest else None
        elif isinstance(op, Derived):
            if latest is None:
                out[feature.name] = None
            else:
                args = [latest.get(c) for c in op.inputs]
                out[feature.name] = (
                    None if any(a is None for a in args) else op.fn(*args)
                )
        else:  # WindowAgg
            values, null = columns[op.column]
            out[feature.name] = _window_value(
                op, seg_ts[:hi], values[positions[:hi]], null[positions[:hi]], as_of
            )
    return out


def evaluate_on_scan(
    plan: Plan,
    residual: Sequence[Predicate],
    scan: SharedScan,
    as_of: float,
    candidates: Sequence[int],
) -> list[dict[str, object]]:
    """Materialization shape over a (possibly shared) scan.

    The scan must already be bounded by ``ts <= as_of``; this is what lets
    a fusion group hand the *same* scan to every member plan.
    """
    mask = _residual_mask(residual, scan)
    columns = {
        column: scan.column(column)
        for column in _numeric_window_columns(plan)
    }
    out: list[dict[str, object]] = []
    for entity in candidates:
        positions = _matching_positions(scan, mask, int(entity))
        if len(positions) == 0:
            continue
        values = _evaluate_entity(plan, scan, positions, as_of, columns)
        out.append(
            {"entity_id": int(entity), "timestamp": as_of, **values}
        )
    return out


def evaluate_on_scan_at(
    plan: Plan,
    residual: Sequence[Predicate],
    scan: SharedScan,
    eids: Sequence[int],
    ts: Sequence[float],
) -> list[dict[str, object]]:
    """As-of join shape over a (possibly shared) scan: a row per probe."""
    mask = _residual_mask(residual, scan)
    columns = {
        column: scan.column(column)
        for column in _numeric_window_columns(plan)
    }
    out: list[dict[str, object]] = []
    for entity, t in zip(eids, ts):
        positions = _matching_positions(scan, mask, int(entity))
        seg_ts = scan.timestamps[positions]
        hi = int(np.searchsorted(seg_ts, t, side="right"))
        row_out: dict[str, object] = {
            "entity_id": int(entity), "timestamp": float(t),
        }
        if hi == 0:
            for feature in plan.features:
                row_out[feature.name] = None
        else:
            row_out.update(
                _evaluate_entity(plan, scan, positions[:hi], t, columns)
            )
        out.append(row_out)
    return out


def _numeric_window_columns(plan: Plan) -> set[str]:
    return {
        f.op.column for f in plan.features if isinstance(f.op, WindowAgg)
    }
