"""The declarative feature-plan language.

Feature views today are opaque Python callables; a :class:`Plan` makes the
definition *declarative* — a source table plus filter / select / window /
as-of-join / aggregate nodes — so the compiler, not the user, decides how
the pipeline physically runs (predicate pushdown, projection pruning,
shared-scan fusion across views).

A plan is built fluently, mirroring the protocol-driven feature-store
client shape::

    plan = (scan("trips")
            .filter("fare", ">", 0.0)
            .latest("city")
            .window("fare", "mean", 3600.0, as_="fare_mean_1h")
            .derived("fare_per_km", lambda f, d: f / d,
                     inputs=("fare", "distance")))

Plan semantics, evaluated per entity *as of* a timestamp ``t``:

* only source events with ``timestamp <= t`` that satisfy **every** filter
  participate; an entity with no matching event emits no row;
* ``latest(col)`` — the column value of the last matching event (ties on
  timestamp broken by insertion order, i.e. upsert semantics);
* ``window(col, agg, w)`` — ``agg`` over the non-NULL values of ``col``
  among matching events with ``t - w < timestamp <= t`` (empty window:
  ``count`` -> 0.0, everything else -> None);
* ``derived(name, fn, inputs)`` — ``fn`` over the latest matching event's
  input columns (None in -> None out).

:meth:`Plan.execute_rows` is the **reference row engine**: a plain scan +
per-row predicate match + the existing :mod:`repro.core.transforms`
evaluated per entity. It defines the semantics; the compiled paths
(:mod:`repro.compiler.compile`, :mod:`repro.compiler.executor`) are held
byte-identical to it by the parity suite.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.core.feature_view import Feature, FeatureView
from repro.core.transforms import (
    ColumnRef,
    RowTransform,
    Transformation,
    WindowAggregate,
    available_aggregations,
)
from repro.compiler.schema import check_declared_dtype, map_dtype
from repro.errors import ValidationError
from repro.storage.offline import OfflineTable, TableSchema
from repro.storage.query import Predicate

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.compiler.compile import CompiledPlan


def exclusive_end(as_of: float) -> float:
    """Smallest float strictly greater than ``as_of``.

    Scan ranges are half-open (``ts < end``) while as-of semantics are
    inclusive (``ts <= as_of``); ``nextafter`` converts exactly.
    """
    return float(np.nextafter(as_of, np.inf))


# -- feature operators ---------------------------------------------------------


@dataclass(frozen=True)
class Latest:
    """The column value of the latest matching event."""

    column: str

    @property
    def input_columns(self) -> tuple[str, ...]:
        return (self.column,)

    def infer_dtype(self, schema: TableSchema) -> str:
        if self.column == "timestamp":
            return "float"
        if self.column == "entity_id":
            return "int"
        return schema.column_kind(self.column)

    def to_transform(self) -> Transformation:
        return ColumnRef(self.column)

    def describe(self) -> str:
        return f"latest({self.column})"


@dataclass(frozen=True)
class WindowAgg:
    """A trailing-window aggregate of one column (``t - window < ts <= t``)."""

    column: str
    agg: str
    window: float

    def __post_init__(self) -> None:
        if self.agg not in available_aggregations():
            raise ValidationError(
                f"unknown aggregation {self.agg!r}; "
                f"allowed: {available_aggregations()}"
            )
        if self.window <= 0:
            raise ValidationError(f"window must be positive ({self.window=})")

    @property
    def input_columns(self) -> tuple[str, ...]:
        return (self.column,)

    def infer_dtype(self, schema: TableSchema) -> str:
        return "float"

    def to_transform(self) -> Transformation:
        return WindowAggregate(column=self.column, agg=self.agg, window=self.window)

    def describe(self) -> str:
        return f"window({self.column}, {self.agg}, {self.window:g}s)"


@dataclass(frozen=True)
class Derived:
    """A function of the latest matching event's input columns."""

    fn: Callable[..., float | int | str | None]
    inputs: tuple[str, ...]
    dtype: str = "float"

    def __post_init__(self) -> None:
        if not self.inputs:
            raise ValidationError("derived feature needs at least one input column")
        map_dtype(self.dtype)  # raises on unknown names

    @property
    def input_columns(self) -> tuple[str, ...]:
        return self.inputs

    def infer_dtype(self, schema: TableSchema) -> str:
        return map_dtype(self.dtype)

    def to_transform(self) -> Transformation:
        return RowTransform(fn=self.fn, inputs=self.inputs)

    def describe(self) -> str:
        name = getattr(self.fn, "__name__", "fn")
        return f"derived({name}: {', '.join(self.inputs)})"


FeatureOp = Latest | WindowAgg | Derived


@dataclass(frozen=True)
class PlanFeature:
    """One named output column of a plan."""

    name: str
    op: FeatureOp

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ValidationError(
                f"plan feature name must be an identifier ({self.name!r})"
            )


# -- the plan ------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class Plan:
    """An immutable declarative feature pipeline over one source table.

    Builder methods return *new* plans; the original is never mutated, so
    a partially-built plan can be shared and extended divergently.
    """

    source_table: str
    predicates: tuple[Predicate, ...] = ()
    features: tuple[PlanFeature, ...] = ()
    schema: TableSchema | None = field(default=None)

    # -- builder ----------------------------------------------------------

    def filter(self, column: str, op: str, value: object = None) -> "Plan":
        """Keep only events matching the predicate (NULL never matches)."""
        predicate = Predicate(column=column, op=op, value=value)
        return replace(self, predicates=self.predicates + (predicate,))

    def latest(self, column: str, as_: str | None = None) -> "Plan":
        return self._with_feature(PlanFeature(as_ or column, Latest(column)))

    def select(self, *columns: str) -> "Plan":
        """Sugar: one :meth:`latest` feature per named column."""
        plan = self
        for column in columns:
            plan = plan.latest(column)
        return plan

    def window(
        self, column: str, agg: str, window: float, as_: str | None = None
    ) -> "Plan":
        name = as_ or f"{column}_{agg}_{int(window)}s"
        return self._with_feature(PlanFeature(name, WindowAgg(column, agg, window)))

    def derived(
        self,
        name: str,
        fn: Callable[..., float | int | str | None],
        inputs: Sequence[str],
        dtype: str = "float",
    ) -> "Plan":
        return self._with_feature(
            PlanFeature(name, Derived(fn=fn, inputs=tuple(inputs), dtype=dtype))
        )

    def _with_feature(self, feature: PlanFeature) -> "Plan":
        if any(f.name == feature.name for f in self.features):
            raise ValidationError(
                f"plan already defines a feature named {feature.name!r}"
            )
        return replace(self, features=self.features + (feature,))

    # -- introspection ----------------------------------------------------

    @property
    def is_bound(self) -> bool:
        return self.schema is not None

    @property
    def feature_names(self) -> list[str]:
        return [f.name for f in self.features]

    @property
    def max_window(self) -> float | None:
        windows = [f.op.window for f in self.features if isinstance(f.op, WindowAgg)]
        return max(windows) if windows else None

    @property
    def has_latest_ops(self) -> bool:
        return any(isinstance(f.op, (Latest, Derived)) for f in self.features)

    def required_columns(self) -> set[str]:
        """Source columns the plan reads: feature inputs + predicate columns."""
        out: set[str] = set()
        for feature in self.features:
            out.update(feature.op.input_columns)
        for predicate in self.predicates:
            out.add(predicate.column)
        return out

    # -- binding & schema validation --------------------------------------

    def bind(self, schema: TableSchema) -> "Plan":
        """Attach the source schema, validating every referenced column."""
        if not self.features:
            raise ValidationError(
                f"plan over {self.source_table!r} defines no features"
            )
        known = set(schema.columns) | {"entity_id", "timestamp"}
        unknown = self.required_columns() - known
        if unknown:
            raise ValidationError(
                f"plan over {self.source_table!r} references columns "
                f"{sorted(unknown)} the table does not declare"
            )
        for feature in self.features:
            feature.op.infer_dtype(schema)  # raises on bad dtype names
            if isinstance(feature.op, WindowAgg):
                column = feature.op.column
                if column not in schema.columns or (
                    schema.column_kind(column) == "string"
                ):
                    raise ValidationError(
                        f"feature {feature.name!r}: window aggregates need a "
                        f"declared numeric column, got {column!r}"
                    )
        return replace(self, schema=schema)

    def feature_schema(self) -> dict[str, str]:
        """Inferred output dtype per feature (requires a bound plan)."""
        if self.schema is None:
            raise ValidationError("plan is unbound; call bind(schema) first")
        return {f.name: f.op.infer_dtype(self.schema) for f in self.features}

    def validate_view(self, view: FeatureView) -> None:
        """Check a view's declared feature dtypes against the compiled schema.

        Called by the registry at publish time; raises
        :class:`ValidationError` on any plan/schema dtype mismatch.
        """
        inferred = self.feature_schema()
        declared = {f.name: f.dtype for f in view.features}
        if set(declared) != set(inferred):
            raise ValidationError(
                f"view {view.name!r} declares features {sorted(declared)} but "
                f"its plan produces {sorted(inferred)}"
            )
        for name, dtype in declared.items():
            check_declared_dtype(
                dtype, inferred[name], context=f"view {view.name!r} feature {name!r}"
            )

    def to_view(
        self,
        name: str,
        entity: str,
        schema: TableSchema,
        cadence: float = 3600.0,
        ttl: float | None = None,
        owner: str = "",
        description: str = "",
        tags: tuple[str, ...] = (),
    ) -> FeatureView:
        """Lower the plan to a publishable :class:`FeatureView`.

        Feature dtypes come from the compiled schema inference; each
        feature also carries an equivalent row-engine transform so
        non-compiled consumers (and the parity suite) can evaluate it.
        """
        bound = self.bind(schema)
        features = tuple(
            Feature(
                name=f.name,
                dtype=f.op.infer_dtype(schema),
                transform=f.op.to_transform(),
                description=f.op.describe(),
            )
            for f in bound.features
        )
        return FeatureView(
            name=name,
            source_table=self.source_table,
            entity=entity,
            features=features,
            cadence=cadence,
            ttl=ttl,
            owner=owner,
            description=description,
            tags=tags,
            plan=bound,
        )

    # -- explain ----------------------------------------------------------

    def explain(self) -> str:
        """Render the logical plan tree."""
        lines = [f"Plan: scan({self.source_table})"]
        for predicate in self.predicates:
            if predicate.op == "not_null":
                lines.append(f"  filter: {predicate.column} IS NOT NULL")
            else:
                lines.append(
                    f"  filter: {predicate.column} {predicate.op} {predicate.value!r}"
                )
        for feature in self.features:
            lines.append(f"  feature: {feature.name} = {feature.op.describe()}")
        if self.schema is not None:
            schema = self.feature_schema()
            lines.append(
                "  schema: "
                + ", ".join(f"{n}:{schema[n]}" for n in self.feature_names)
            )
        return "\n".join(lines)

    # -- execution --------------------------------------------------------

    def compile(self, table: OfflineTable) -> "CompiledPlan":
        """Lower onto the columnar kernels; the optimizer picks the strategy."""
        from repro.compiler.compile import compile_plan

        return compile_plan(self, table)

    def execute(
        self,
        table: OfflineTable,
        as_of: float,
        entity_ids: Sequence[int] | None = None,
    ) -> list[dict[str, object]]:
        """Compile and evaluate as of one timestamp (materialization shape)."""
        return self.compile(table).evaluate(as_of, entity_ids=entity_ids)

    def materialize_group(
        self,
        plans: "Sequence[Plan]",
        table: OfflineTable,
        as_of: float,
        entity_ids: Sequence[int] | None = None,
    ) -> tuple[list[list[dict[str, object]]], dict[str, int]]:
        """Fused execution of many plans over one table (one shared scan).

        Defined on the plan (rather than as a free function) so layers
        below the compiler — the feature store's ``materialize_many`` —
        can invoke fusion through the plan object without importing
        ``repro.compiler``.
        """
        from repro.compiler.executor import execute_fused

        return execute_fused(list(plans), table, as_of, entity_ids=entity_ids)

    # -- reference row engine ---------------------------------------------

    def matching_events(
        self,
        table: OfflineTable,
        as_of: float,
        entity_ids: Sequence[int] | None = None,
    ) -> dict[int, list[dict[str, object]]]:
        """Per-entity matching events (``ts <= as_of``), by full row scan."""
        wanted = None if entity_ids is None else set(entity_ids)
        events: dict[int, list[dict[str, object]]] = {}
        for row in table.scan(end=exclusive_end(as_of)):
            entity = int(row["entity_id"])  # type: ignore[arg-type]
            if wanted is not None and entity not in wanted:
                continue
            if all(p.matches(row) for p in self.predicates):
                events.setdefault(entity, []).append(row)
        return events

    def execute_rows(
        self,
        table: OfflineTable,
        as_of: float,
        entity_ids: Sequence[int] | None = None,
    ) -> list[dict[str, object]]:
        """The naive per-view scan: reference semantics and bench baseline."""
        candidates = (
            list(entity_ids) if entity_ids is not None else table.entity_ids()
        )
        events = self.matching_events(table, as_of, entity_ids=entity_ids)
        transforms = [(f.name, f.op.to_transform()) for f in self.features]
        out: list[dict[str, object]] = []
        for entity in candidates:
            entity_events = events.get(int(entity), [])
            if not entity_events:
                continue
            values: dict[str, object] = {
                name: transform.evaluate(entity_events, as_of)
                for name, transform in transforms
            }
            out.append({"entity_id": int(entity), "timestamp": as_of, **values})
        return out

    def execute_rows_at(
        self,
        table: OfflineTable,
        entity_ids: Sequence[int] | np.ndarray,
        timestamps: Sequence[float] | np.ndarray,
    ) -> list[dict[str, object]]:
        """Reference as-of join: one output row per ``(entity, ts)`` probe.

        Unlike the materialization shape, every probe emits a row; probes
        with no matching event get ``None`` for every feature (the
        training-join contract — never a value from the future).
        """
        eids = [int(e) for e in entity_ids]
        ts = [float(t) for t in timestamps]
        if len(eids) != len(ts):
            raise ValidationError(
                f"entity_ids and timestamps must align ({len(eids)} vs {len(ts)})"
            )
        transforms = [(f.name, f.op.to_transform()) for f in self.features]
        horizon = max(ts) if ts else 0.0
        events = self.matching_events(table, horizon, entity_ids=set(eids))
        out: list[dict[str, object]] = []
        for entity, t in zip(eids, ts):
            visible = [
                row
                for row in events.get(entity, [])
                if float(row["timestamp"]) <= t  # type: ignore[arg-type]
            ]
            row_out: dict[str, object] = {"entity_id": entity, "timestamp": t}
            for name, transform in transforms:
                row_out[name] = (
                    transform.evaluate(visible, t) if visible else None
                )
            out.append(row_out)
        return out


def scan(source_table: str) -> Plan:
    """Fluent entry point: ``scan("trips").filter(...).window(...)``."""
    if not source_table:
        raise ValidationError("source_table must be non-empty")
    return Plan(source_table=source_table)
