"""The declarative feature-pipeline compiler.

Feature definitions become data (:class:`Plan`), and an optimizing
compiler — not the author — decides the physical execution: predicate
pushdown into partition-pruned scan ranges, projection pruning down to
the columns a plan actually reads, and shared-scan fusion so N views
over the same table cost one physical scan instead of N.

Layering: this package sits beside ``repro.core`` and above
``repro.storage``; nothing below it imports it (core reaches plan
behaviour through duck-typed methods on the plan object a view carries).

Entry points::

    from repro.compiler import scan

    plan = (scan("trips")
            .filter("fare", ">", 0.0)
            .window("fare", "mean", 3600.0))
    view = plan.to_view("trip_stats", entity="driver", schema=table.schema)
    rows = plan.execute(table, as_of=now)          # compiled single plan
    print(plan.compile(table).explain())           # logical + physical
"""

from repro.compiler.compile import CompiledPlan, compile_plan
from repro.compiler.executor import (
    execute_fused,
    execute_fused_at,
    explain_fused,
)
from repro.compiler.plan import (
    Derived,
    Latest,
    Plan,
    PlanFeature,
    WindowAgg,
    scan,
)
from repro.compiler.schema import (
    FEATURE_DTYPES,
    check_declared_dtype,
    map_dtype,
)

__all__ = [
    "CompiledPlan",
    "Derived",
    "FEATURE_DTYPES",
    "Latest",
    "Plan",
    "PlanFeature",
    "WindowAgg",
    "check_declared_dtype",
    "compile_plan",
    "execute_fused",
    "execute_fused_at",
    "explain_fused",
    "map_dtype",
    "scan",
]
