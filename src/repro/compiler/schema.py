"""Dtype mapping between plan expressions, numpy, and feature schemas.

The registry validates at publish time that a plan-backed view's declared
feature dtypes agree with what the compiler will actually produce — the
``feature_schema_mapper`` idea from production feature stores: source
(warehouse/numpy) types are mapped onto the feature store's small type
system once, centrally, instead of every pipeline hand-rolling casts.

The mapping is deliberately strict: the only permitted widening is
``int -> float`` (the offline :class:`~repro.storage.offline.TableSchema`
already accepts ints in float columns), everything else is a
:class:`~repro.errors.ValidationError` at registration time — not a NaN
or a wrong dtype surfacing mid-training.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

#: the feature store's type system (matches TableSchema / Feature dtypes)
FEATURE_DTYPES = ("float", "int", "string")

#: numpy dtype *kind* character -> feature dtype
_NUMPY_KIND_TO_FEATURE = {
    "f": "float",
    "i": "int",
    "u": "int",
    "b": "int",
    "O": "string",
    "U": "string",
    "S": "string",
}

#: widenings the validator accepts: (inferred, declared)
_ALLOWED_WIDENINGS = {("int", "float")}


def map_dtype(kind: str) -> str:
    """Normalize a dtype name onto the feature type system.

    Accepts the feature dtypes themselves (``"float"``/``"int"``/
    ``"string"``) and any numpy dtype name (``"float64"``, ``"int32"``,
    ``"object"``, ...). Unknown names raise :class:`ValidationError`.
    """
    if kind in FEATURE_DTYPES:
        return kind
    try:
        resolved = np.dtype(kind)
    except TypeError:
        raise ValidationError(
            f"unknown dtype {kind!r}; use one of {FEATURE_DTYPES} "
            "or a numpy dtype name"
        ) from None
    feature = _NUMPY_KIND_TO_FEATURE.get(resolved.kind)
    if feature is None:
        raise ValidationError(
            f"numpy dtype {kind!r} (kind {resolved.kind!r}) has no feature "
            f"dtype mapping; allowed kinds: {sorted(_NUMPY_KIND_TO_FEATURE)}"
        )
    return feature


def check_declared_dtype(declared: str, inferred: str, context: str) -> None:
    """Raise unless ``declared`` can hold the compiler's ``inferred`` output."""
    declared = map_dtype(declared)
    if declared == inferred:
        return
    if (inferred, declared) in _ALLOWED_WIDENINGS:
        return
    raise ValidationError(
        f"{context}: declared dtype {declared!r} does not match the "
        f"compiled plan's output dtype {inferred!r} "
        f"(only int -> float widening is allowed)"
    )
