"""The runtime kernel: lifecycle, telemetry, and resilience for every plane.

This is the bottom operational layer of the reproduction — the paper's
feature-store *stack* (ingestion, storage, serving, embedding/vector
planes, §2–§3) runs in industry on a common control plane that provides
health, metrics and orderly shutdown to every component uniformly. Here
that substrate is:

* :mod:`repro.runtime.lifecycle` — :class:`Service` (idempotent
  start/stop/close state machine, owned worker threads, health),
  :class:`PeriodicTask` (background maintenance loops) and
  :class:`ServiceGroup` (ordered startup, reverse-order drain);
* :mod:`repro.runtime.telemetry` — thread-safe :class:`Counter` /
  :class:`Gauge` / :class:`LatencyHistogram` primitives behind one
  :class:`MetricsRegistry` with JSON and Prometheus-text exporters;
* :mod:`repro.runtime.resilience` — :class:`FaultPolicy` +
  :class:`FaultInjector` (seeded fault rehearsal), :class:`Deadline`,
  :class:`RetryPolicy` and :func:`retry_call`.

Layering contract (enforced by ``tools/check_layering.py``): this
package imports nothing above it — only the stdlib, ``repro.errors``
and ``repro.clock``. Every plane imports *down* into it.
"""

from repro.runtime.lifecycle import (
    LifecycleError,
    PeriodicTask,
    Service,
    ServiceGroup,
    ServiceState,
    await_condition,
)
from repro.runtime.resilience import (
    Deadline,
    FaultInjector,
    FaultPolicy,
    RetryPolicy,
    retry_call,
)
from repro.runtime.telemetry import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)

__all__ = [
    "Counter",
    "Deadline",
    "FaultInjector",
    "FaultPolicy",
    "Gauge",
    "LatencyHistogram",
    "LifecycleError",
    "MetricsRegistry",
    "PeriodicTask",
    "RetryPolicy",
    "Service",
    "ServiceGroup",
    "ServiceState",
    "await_condition",
    "get_registry",
    "retry_call",
    "set_registry",
]
