"""Service lifecycle: one state machine under every plane.

The reproduction grew four planes (serving gateway, ingestion bus,
vector service, streaming) that each reinvented thread ownership,
``stop()``/``close()`` semantics and shutdown ordering — four slightly
different ways to leak a worker thread. This module is the single
substrate they all inherit now:

* :class:`Service` — the lifecycle base: an explicit state machine
  (``NEW → STARTING → RUNNING → STOPPING → STOPPED``, with ``FAILED``
  off ``STARTING``), idempotent and thread-safe :meth:`start` /
  :meth:`stop` / :meth:`close`, owned worker threads
  (:meth:`_spawn` + automatic join on stop), a shared stop event, and a
  :meth:`health` snapshot every service exports for free.
* :class:`PeriodicTask` — a :class:`Service` that runs a callable every
  ``interval_s`` seconds on an owned daemon thread (auto-compaction,
  lag sampling, cache sweeps) with exception containment.
* :class:`ServiceGroup` — a :class:`Service` *of* services: dependencies
  start in registration order and drain in **reverse** on shutdown, so
  a stack wired as ``bus → stores → gateway → vecserve`` tears down
  consumers before the log and front-ends before back-ends. A failure
  mid-start rolls back: later services never start, earlier ones are
  drained.

Objects predating the refactor (anything exposing ``start``/``stop`` or
``close``) participate through a duck-typing adapter, so a
:class:`ServiceGroup` can manage a legacy component unchanged.
"""

from __future__ import annotations

import enum
import threading
import time
from collections.abc import Callable

from repro.errors import ValidationError


class LifecycleError(ValidationError):
    """An illegal service state transition (e.g. restarting a stopped
    service, or submitting work to one that is shut down).

    Subclasses :class:`~repro.errors.ValidationError` so pre-runtime
    callers that caught ``ValidationError`` around ``submit()``-after-
    ``stop()`` keep working unchanged.
    """


class ServiceState(enum.Enum):
    """The lifecycle states every :class:`Service` moves through."""

    NEW = "new"
    STARTING = "starting"
    RUNNING = "running"
    STOPPING = "stopping"
    STOPPED = "stopped"
    FAILED = "failed"


class Service:
    """Base class: idempotent start/stop/close + owned worker threads.

    Subclasses override :meth:`_on_start` (allocate resources, spawn
    workers via :meth:`_spawn`) and :meth:`_on_stop` (signal + drain; the
    default sets :attr:`_stop_event` and joins every spawned worker).
    Both hooks run at most once, under the lifecycle lock, no matter how
    many threads race ``start()``/``stop()``/``close()`` — double-close
    is a no-op by construction, and a ``stop()`` racing in-flight work
    blocks until the first stopper finishes draining.
    """

    #: join budget per owned worker thread on stop
    join_timeout_s: float = 2.0

    def __init__(self, name: str | None = None) -> None:
        self._name = name or type(self).__name__
        self._state = ServiceState.NEW
        self._state_lock = threading.RLock()
        self._stopped_event = threading.Event()
        self._stop_event = threading.Event()
        self._threads: list[threading.Thread] = []
        self._failure: BaseException | None = None

    # -- introspection --------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def state(self) -> ServiceState:
        with self._state_lock:
            return self._state

    @property
    def running(self) -> bool:
        return self.state is ServiceState.RUNNING

    def health(self) -> dict[str, object]:
        """One JSON-able health record (aggregated by :class:`ServiceGroup`)."""
        state = self.state
        record: dict[str, object] = {
            "name": self._name,
            "state": state.value,
            "healthy": state is ServiceState.RUNNING,
        }
        if self._failure is not None:
            record["failure"] = repr(self._failure)
        alive = [t.name for t in self._threads if t.is_alive()]
        if alive:
            record["threads"] = alive
        return record

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "Service":
        """Bring the service up (idempotent while starting/running)."""
        with self._state_lock:
            if self._state in (ServiceState.STARTING, ServiceState.RUNNING):
                return self
            if self._state is not ServiceState.NEW:
                raise LifecycleError(
                    f"{self._name}: cannot start from state "
                    f"{self._state.value!r} (services do not restart)"
                )
            self._state = ServiceState.STARTING
            try:
                self._on_start()
            except BaseException as exc:
                self._state = ServiceState.FAILED
                self._failure = exc
                raise
            self._state = ServiceState.RUNNING
        return self

    def stop(self) -> None:
        """Drain and shut down (idempotent, safe from any thread/state).

        A never-started service jumps straight to ``STOPPED`` without
        invoking :meth:`_on_stop`; concurrent stoppers block until the
        first one finishes, so by the time any ``stop()`` call returns
        the service is fully drained.
        """
        with self._state_lock:
            if self._state is ServiceState.STOPPED:
                return
            if self._state is ServiceState.STOPPING:
                # Re-entrant stop (the RLock means only the stopping
                # thread itself can observe this): the outer frame is
                # already draining, nothing to do.
                return
            if self._state is ServiceState.NEW:
                self._state = ServiceState.STOPPED
                self._stopped_event.set()
                return
            self._state = ServiceState.STOPPING
            try:
                self._on_stop()
            finally:
                self._state = ServiceState.STOPPED
                self._stopped_event.set()

    def close(self) -> None:
        """Alias of :meth:`stop` (the pre-runtime planes called it this)."""
        self.stop()

    def __enter__(self) -> "Service":
        if self.state is ServiceState.NEW:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- hooks ----------------------------------------------------------------

    def _on_start(self) -> None:
        """Allocate resources / spawn workers. Runs exactly once."""

    def _on_stop(self) -> None:
        """Signal and drain. Default: set the stop event, join workers."""
        self._stop_event.set()
        self._join_workers()

    # -- worker threads -------------------------------------------------------

    def _spawn(
        self, target: Callable[[], None], name: str | None = None
    ) -> threading.Thread:
        """Start an owned daemon thread (joined automatically on stop)."""
        thread = threading.Thread(
            target=target,
            name=name or f"{self._name}-worker-{len(self._threads)}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()
        return thread

    def _join_workers(self, timeout_s: float | None = None) -> None:
        budget = self.join_timeout_s if timeout_s is None else timeout_s
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=budget)

    def _check_running(self, action: str = "submit work") -> None:
        """Guard for request paths: raise unless the service is running."""
        if self.state is not ServiceState.RUNNING:
            raise LifecycleError(
                f"{self._name}: cannot {action}; service is "
                f"{self.state.value}"
            )


class PeriodicTask(Service):
    """Run ``fn()`` every ``interval_s`` seconds until stopped.

    Exceptions are contained: the loop records them (``errors`` /
    ``last_error``) and keeps ticking — a single failed compaction pass
    must not silently kill background maintenance forever.
    """

    def __init__(
        self,
        fn: Callable[[], object],
        interval_s: float,
        name: str | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValidationError(f"interval_s must be positive ({interval_s=})")
        super().__init__(name=name or f"periodic:{getattr(fn, '__name__', 'task')}")
        self._fn = fn
        self.interval_s = interval_s
        self.ticks = 0
        self.errors = 0
        self.last_error: BaseException | None = None

    def _on_start(self) -> None:
        self._spawn(self._loop, name=f"{self.name}-loop")

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            try:
                self._fn()
            except Exception as exc:  # noqa: BLE001 - contained by design
                self.errors += 1
                self.last_error = exc
            self.ticks += 1

    def health(self) -> dict[str, object]:
        record = super().health()
        record["ticks"] = self.ticks
        record["errors"] = self.errors
        return record


class _ServiceAdapter(Service):
    """Duck-typing shim: manage any start/stop(/close) object as a Service."""

    def __init__(self, wrapped: object, name: str | None = None) -> None:
        super().__init__(name=name or type(wrapped).__name__)
        self.wrapped = wrapped

    def _on_start(self) -> None:
        start = getattr(self.wrapped, "start", None)
        if callable(start):
            start()

    def _on_stop(self) -> None:
        for method_name in ("stop", "close", "shutdown"):
            method = getattr(self.wrapped, method_name, None)
            if callable(method):
                method()
                return


class ServiceGroup(Service):
    """Ordered composite: start dependencies first, drain them last.

    ``add()`` order is dependency order — the log before its consumers,
    stores before the gateway, the gateway before the vector plane.
    :meth:`_on_start` walks forward; on a mid-start failure the services
    already running are drained in reverse and the failure propagates
    (later services are never started). :meth:`_on_stop` walks backward
    unconditionally, collecting per-service failures so one bad actor
    cannot block the rest of the drain.
    """

    def __init__(self, name: str = "stack") -> None:
        super().__init__(name=name)
        self._members: list[Service] = []
        self._started_members: list[Service] = []

    def add(self, service: object, name: str | None = None) -> object:
        """Register the next dependency; returns it for fluent wiring.

        Accepts a :class:`Service` directly, or any object exposing
        ``start()`` and/or ``stop()``/``close()``/``shutdown()`` via the
        adapter. Registration after start is rejected (ordering would be
        meaningless).
        """
        with self._state_lock:
            if self._state is not ServiceState.NEW:
                raise LifecycleError(
                    f"{self.name}: cannot add services after start"
                )
            member = (
                service
                if isinstance(service, Service)
                else _ServiceAdapter(service, name=name)
            )
            self._members.append(member)
        return service

    @property
    def services(self) -> list[Service]:
        return list(self._members)

    def start_order(self) -> list[str]:
        return [member.name for member in self._members]

    def _on_start(self) -> None:
        for member in self._members:
            try:
                member.start()
            except BaseException:
                self._drain(list(self._started_members))
                raise
            self._started_members.append(member)

    def _on_stop(self) -> None:
        self._drain(list(self._started_members))
        self._started_members.clear()

    @staticmethod
    def _drain(started: list[Service]) -> None:
        failures: list[BaseException] = []
        for member in reversed(started):
            try:
                member.stop()
            except BaseException as exc:  # noqa: BLE001 - keep draining
                failures.append(exc)
        if failures:
            raise failures[0]

    def health(self) -> dict[str, object]:
        record = super().health()
        record["services"] = [member.health() for member in self._members]
        record["healthy"] = record["healthy"] and all(
            m.health()["healthy"] for m in self._members
        )
        return record


def await_condition(
    predicate: Callable[[], bool],
    timeout_s: float = 5.0,
    interval_s: float = 0.005,
) -> bool:
    """Poll ``predicate`` until true or the timeout elapses (test helper)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()
