"""Process-wide telemetry: counters, gauges, histograms, one registry.

Paper §2.2.3 argues that operational metrics are what "allow users to be
informed of potential 'gremlins' in the system". Before this layer
existed every plane (serving gateway, ingestion bus, vector service)
hand-rolled its own metric plumbing on top of the serving tier's
primitives — an upward-import tangle and three different snapshot
formats. This module is the one substrate they all share now:

* **primitives** — :class:`Counter`, :class:`Gauge`,
  :class:`LatencyHistogram`: thread-safe, allocation-light (histograms
  are log-bucketed fixed arrays; ``record()`` is O(1) with no per-sample
  storage). Latencies are *wall* seconds (``time.monotonic``) — tail
  latency is a property of the real machine, not the simulated clock.
* **registry** — :class:`MetricsRegistry`: named, labelled, get-or-create
  metric storage. Every facade (``ServingMetrics``, ``BusMetrics``,
  ``VectorServeMetrics``) allocates its primitives *through* a registry,
  so one registry handed to every plane yields one flat, exportable view
  of the whole deployment.
* **exporters** — :meth:`MetricsRegistry.snapshot` (nested JSON-able
  dict) and :meth:`MetricsRegistry.to_prometheus` (Prometheus text
  exposition format) cover every registered metric; the operator
  dashboard's telemetry section renders straight from the registry.

A process-wide default registry is available via :func:`get_registry`
for applications that want exactly one pane; libraries and tests create
private registries for isolation.
"""

from __future__ import annotations

import json
import math
import threading
import time

from repro.errors import ValidationError

#: Histogram bucket geometry: bucket ``i`` holds samples in
#: ``[_BASE * _GROWTH**i, _BASE * _GROWTH**(i+1))`` seconds.
_BASE = 1e-6  # 1 microsecond
_GROWTH = math.sqrt(2.0)
_N_BUCKETS = 64  # covers 1us .. ~4.3e3 s


class Counter:
    """A monotonically increasing, thread-safe counter."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A thread-safe up/down gauge tracking an instantaneous quantity.

    Tracks the high-water mark too, so a snapshot taken after the storm
    still shows how deep the queue got.
    """

    def __init__(self) -> None:
        self._value = 0
        self._peak = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount
            self._peak = max(self._peak, self._value)

    def dec(self, amount: int = 1) -> None:
        with self._lock:
            self._value -= amount

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value
            self._peak = max(self._peak, value)

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    @property
    def peak(self) -> int:
        with self._lock:
            return self._peak


class LatencyHistogram:
    """Log-bucketed latency histogram with percentile estimation.

    ``record()`` is O(1); ``percentile()`` walks the cumulative counts and
    returns the geometric midpoint of the bucket containing the requested
    rank (the classic Prometheus-style estimate — exact to within one
    bucket width, ~±19% with sqrt(2) growth).
    """

    def __init__(self) -> None:
        self._counts = [0] * _N_BUCKETS
        self._lock = threading.Lock()
        self.count = 0
        self.total_seconds = 0.0

    @staticmethod
    def _bucket_index(seconds: float) -> int:
        if seconds < _BASE:
            return 0
        index = int(math.log(seconds / _BASE) / math.log(_GROWTH))
        return min(index, _N_BUCKETS - 1)

    @staticmethod
    def _bucket_midpoint(index: int) -> float:
        low = _BASE * _GROWTH**index
        return low * math.sqrt(_GROWTH)  # geometric midpoint of [low, low*G)

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValidationError(f"latency cannot be negative ({seconds=})")
        index = self._bucket_index(seconds)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total_seconds += seconds

    def percentile(self, p: float) -> float:
        """Estimated latency (seconds) at percentile ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValidationError(f"percentile must be in [0, 100] ({p=})")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = max(1, math.ceil(self.count * p / 100.0))
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank:
                    return self._bucket_midpoint(index)
            return self._bucket_midpoint(_N_BUCKETS - 1)

    def mean(self) -> float:
        with self._lock:
            return self.total_seconds / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """count / mean / p50 / p95 / p99 in one locked-per-call bundle."""
        return {
            "count": float(self.count),
            "mean_s": self.mean(),
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
        }


Metric = Counter | Gauge | LatencyHistogram

_KINDS = {Counter: "counter", Gauge: "gauge", LatencyHistogram: "histogram"}

_NAME_OK = set("abcdefghijklmnopqrstuvwxyz0123456789_:")


def _validate_name(name: str) -> None:
    if not name or name[0].isdigit() or not set(name.lower()) <= _NAME_OK:
        raise ValidationError(
            f"metric name must be non-empty [a-zA-Z_:][a-zA-Z0-9_:]* ({name=})"
        )


class MetricsRegistry:
    """Named, labelled, thread-safe get-or-create metric storage.

    A metric's identity is ``(name, sorted(labels))``. Asking twice for
    the same identity returns the *same* object (the Prometheus
    convention), so two facades pointed at one registry genuinely share
    series — the ingestion bus's per-namespace freshness histogram *is*
    the serving tier's, no mirroring copies required. Asking for the same
    name with a conflicting metric kind raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Metric] = {}
        self._lock = threading.Lock()
        self._started = time.monotonic()

    # -- get-or-create --------------------------------------------------------

    def _get(self, kind: type, name: str, labels: dict[str, str]):
        _validate_name(name)
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = kind()
            elif not isinstance(metric, kind):
                raise ValidationError(
                    f"metric {name!r} already registered as "
                    f"{_KINDS[type(metric)]}, requested {_KINDS[kind]}"
                )
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> LatencyHistogram:
        return self._get(LatencyHistogram, name, labels)

    # -- introspection --------------------------------------------------------

    def collect(self) -> list[tuple[str, dict[str, str], Metric]]:
        """Every registered series, sorted by ``(name, labels)``."""
        with self._lock:
            items = sorted(self._metrics.items())
        return [(name, dict(labels), metric) for (name, labels), metric in items]

    def names(self) -> list[str]:
        with self._lock:
            return sorted({name for name, __ in self._metrics})

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    # -- exporters ------------------------------------------------------------

    def snapshot(self) -> dict[str, list[dict[str, object]]]:
        """One JSON-able dict: ``{name: [{labels, type, ...values}]}``.

        Counters export ``value``; gauges ``value`` and ``peak``;
        histograms the standard count/mean/p50/p95/p99 summary.
        """
        out: dict[str, list[dict[str, object]]] = {}
        for name, labels, metric in self.collect():
            entry: dict[str, object] = {
                "labels": labels,
                "type": _KINDS[type(metric)],
            }
            if isinstance(metric, Counter):
                entry["value"] = metric.value
            elif isinstance(metric, Gauge):
                entry["value"] = metric.value
                entry["peak"] = metric.peak
            else:
                entry.update(metric.summary())
            out.setdefault(name, []).append(entry)
        return out

    def to_json(self, indent: int | None = None) -> str:
        """The :meth:`snapshot` serialized (the HTTP ``/metrics.json`` body)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format covering every series.

        Counters become ``name{labels} value`` with a ``# TYPE`` header;
        gauges additionally export ``name_peak``; histograms export
        ``name_count``, ``name_sum`` and p50/p95/p99 quantile series
        (summary-style — the log-bucketed histogram's native read API).
        """
        lines: list[str] = []
        typed: set[tuple[str, str]] = set()

        def emit_type(name: str, kind: str) -> None:
            if (name, kind) not in typed:
                typed.add((name, kind))
                lines.append(f"# TYPE {name} {kind}")

        def fmt(name: str, labels: dict[str, str], value: float) -> str:
            if labels:
                body = ",".join(
                    f'{k}="{v}"' for k, v in sorted(labels.items())
                )
                return f"{name}{{{body}}} {value:g}"
            return f"{name} {value:g}"

        for name, labels, metric in self.collect():
            if isinstance(metric, Counter):
                emit_type(name, "counter")
                lines.append(fmt(name, labels, metric.value))
            elif isinstance(metric, Gauge):
                emit_type(name, "gauge")
                lines.append(fmt(name, labels, metric.value))
                emit_type(f"{name}_peak", "gauge")
                lines.append(fmt(f"{name}_peak", labels, metric.peak))
            else:
                emit_type(name, "summary")
                summary = metric.summary()
                for quantile, key in (
                    ("0.5", "p50_s"),
                    ("0.95", "p95_s"),
                    ("0.99", "p99_s"),
                ):
                    lines.append(
                        fmt(name, {**labels, "quantile": quantile}, summary[key])
                    )
                lines.append(fmt(f"{name}_count", labels, summary["count"]))
                lines.append(
                    fmt(f"{name}_sum", labels, metric.total_seconds)
                )
        return "\n".join(lines) + ("\n" if lines else "")


_DEFAULT_REGISTRY = MetricsRegistry()
_DEFAULT_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (lazy, shared, never reset)."""
    return _DEFAULT_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default (returns the previous one; tests)."""
    global _DEFAULT_REGISTRY
    with _DEFAULT_LOCK:
        previous = _DEFAULT_REGISTRY
        _DEFAULT_REGISTRY = registry
        return previous
