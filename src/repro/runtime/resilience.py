"""Resilience primitives: fault policies, deadlines, retry/backoff.

Every plane rehearses and survives the same failure shapes — network
round-trip latency, transient timeouts, fast-fail blips, exhausted
latency budgets. Before this layer the machinery lived in
``repro.serving.faults`` and was imported *upward* by the vector plane
(a layering violation the import lint now forbids); the duplicated
fault-roll logic lived once in the store wrapper and once in the shard
fan-out. This module is the single home:

* :class:`FaultPolicy` — what to inject and how often (the dataclass the
  fault-injecting store wrapper and the per-shard injector both consume);
* :class:`FaultInjector` — the seeded, thread-safe roll-and-raise engine
  both wrappers now share (latency burn, timeout raise, error raise,
  injection counters);
* :class:`Deadline` — an absolute monotonic budget with ``remaining()``;
* :class:`RetryPolicy` + :func:`retry_call` — bounded retries with
  exponential backoff under a deadline, the gateway's read-path loop as
  a reusable helper.

Old import paths (``repro.serving.faults.FaultPolicy``) keep working via
deprecation shims.
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import (
    DeadlineExceededError,
    TransientStoreError,
    ValidationError,
)
from repro.runtime.telemetry import Counter


@dataclass(frozen=True)
class FaultPolicy:
    """What a fault injector injects, and how often."""

    timeout_rate: float = 0.0
    error_rate: float = 0.0
    base_latency_s: float = 0.0
    per_key_latency_s: float = 0.0
    timeout_latency_s: float = 0.0  # time burned before a timeout surfaces
    seed: int | None = None

    def validate(self) -> None:
        for name in ("timeout_rate", "error_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1] ({rate=})")
        for name in ("base_latency_s", "per_key_latency_s", "timeout_latency_s"):
            value = getattr(self, name)
            if value < 0:
                raise ValidationError(f"{name} must be >= 0 ({value=})")


class FaultInjector:
    """Seeded, thread-safe execution of a :class:`FaultPolicy`.

    One :meth:`inject` call simulates one backend call: burn the
    simulated round-trip latency, then roll once — a roll below
    ``timeout_rate`` burns ``timeout_latency_s`` and raises, a roll in
    the next ``error_rate`` band fails fast. Both raise
    :class:`~repro.errors.TransientStoreError`, so retry machinery
    engages identically for real and injected faults. Counters record
    what was injected, for test assertions.
    """

    def __init__(self, policy: FaultPolicy) -> None:
        policy.validate()
        self.policy = policy
        self._rng = random.Random(policy.seed)
        self._rng_lock = threading.Lock()
        self.injected_timeouts = Counter()
        self.injected_errors = Counter()
        self.calls = Counter()

    def roll(self) -> float:
        with self._rng_lock:
            return self._rng.random()

    def inject(self, n_keys: int = 1) -> None:
        """Simulate one ``n_keys``-wide backend call (may raise)."""
        self.calls.inc()
        policy = self.policy
        latency = policy.base_latency_s + policy.per_key_latency_s * n_keys
        if latency > 0:
            time.sleep(latency)
        roll = self.roll()
        if roll < policy.timeout_rate:
            self.injected_timeouts.inc()
            if policy.timeout_latency_s > 0:
                time.sleep(policy.timeout_latency_s)
            raise TransientStoreError(
                f"injected timeout (rate={policy.timeout_rate})"
            )
        if roll < policy.timeout_rate + policy.error_rate:
            self.injected_errors.inc()
            raise TransientStoreError(f"injected error (rate={policy.error_rate})")


@dataclass
class Deadline:
    """An absolute latency budget on the ``time.monotonic`` scale."""

    at: float  # absolute monotonic timestamp

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """Budget starting now. Non-positive budgets are *already expired*
        (a caller-supplied negative deadline means "fail fast", not a
        configuration error)."""
        return cls(at=time.monotonic() + seconds)

    def remaining(self) -> float:
        return self.at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def sleep(self, seconds: float) -> None:
        """Sleep at most ``seconds``, clamped to the remaining budget."""
        time.sleep(min(seconds, max(self.remaining(), 0.0)))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with capped exponential backoff."""

    max_retries: int = 2
    backoff_s: float = 0.0005
    multiplier: float = 2.0
    max_backoff_s: float = 0.25
    retry_on: tuple[type[BaseException], ...] = field(
        default=(TransientStoreError,)
    )

    def validate(self) -> None:
        if self.max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0 ({self.max_retries=})")
        if self.backoff_s < 0:
            raise ValidationError(f"backoff_s must be >= 0 ({self.backoff_s=})")
        if self.multiplier < 1.0:
            raise ValidationError(f"multiplier must be >= 1 ({self.multiplier=})")

    def backoff_for(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based first retry)."""
        return min(
            self.backoff_s * self.multiplier ** max(attempt - 1, 0),
            self.max_backoff_s,
        )


def retry_call(
    fn: Callable[[], object],
    retry: RetryPolicy | None = None,
    deadline: Deadline | None = None,
    on_retry: Callable[[BaseException], None] | None = None,
):
    """Call ``fn`` with bounded retries under an optional deadline.

    Retries only on ``retry.retry_on`` exceptions; any other exception
    propagates immediately. Exhausting the deadline raises
    :class:`~repro.errors.DeadlineExceededError` chaining the last
    failure; exhausting the retry budget re-raises the last failure.
    """
    retry = retry or RetryPolicy()
    retry.validate()
    attempts = 0
    last_error: BaseException | None = None
    while True:
        if deadline is not None and deadline.expired:
            raise DeadlineExceededError(
                f"deadline exhausted after {attempts} attempt(s); "
                f"last error: {last_error!r}"
            ) from last_error
        attempts += 1
        try:
            return fn()
        except retry.retry_on as exc:
            last_error = exc
            if attempts > retry.max_retries:
                raise
            if on_retry is not None:
                on_retry(exc)
            backoff = retry.backoff_for(attempts)
            if deadline is not None:
                deadline.sleep(backoff)
            else:
                time.sleep(backoff)
