"""The I/O substrate: one selector loop under every socket in the system.

Before this module existed the two top-of-DAG planes owned their own
networking: ``repro.net`` burned a thread per connection inside
``ThreadingHTTPServer`` and ``repro.cluster`` had no wire at all (its
``LocalTransport`` is an in-process call). Both now stand on the same
kernel substrate:

* :class:`Connection` — a non-blocking socket with buffered writes
  (``send()`` is thread-safe from any worker thread), chunked reads
  delivered to an ``on_data`` callback on the loop thread, EVENT_WRITE
  interest toggled on only while the out-buffer is non-empty, an
  optional per-connection idle timeout, and ``close_when_drained()``
  half-close semantics for ``Connection: close`` responses.
* :class:`Listener` — a non-blocking accepting socket; every accepted
  client gets ``TCP_NODELAY`` and a fresh :class:`Connection` handed to
  the listener's ``on_accept`` callback.
* :class:`FrameBuffer` / :func:`length_prefix` — the length-prefixed
  frame codec (4-byte big-endian length + payload) socket protocols
  build on; ``FrameBuffer.feed`` is an incremental decoder that tolerates
  arbitrary chunk boundaries.
* :class:`IoLoop` — the event loop itself, a proper runtime
  :class:`~repro.runtime.lifecycle.Service`: one owned selector thread,
  a socketpair wakeup for cross-thread work (:meth:`IoLoop.call_soon` /
  :meth:`IoLoop.run_on_loop`), periodic idle reaping, and a drain that
  closes every listener, connection and fd it ever opened — zero leaked
  threads or file descriptors by construction.

Telemetry rides in the shared :class:`~repro.runtime.MetricsRegistry`
(``io_open_connections`` gauge with high-water mark, byte and
accept/reap counters), so one registry shows the whole deployment's
socket picture next to its request metrics.

Layering: this module is part of the runtime kernel and imports nothing
above it. Lint rule 7 (``tools/check_layering.py``) additionally pins
its *consumers*: only the two networked planes — ``repro.net`` and
``repro.cluster`` — may import it; everything else stays socket-free.
"""

from __future__ import annotations

import selectors
import socket
import struct
import threading
import time
from collections import deque
from collections.abc import Callable

from repro.errors import ValidationError
from repro.runtime.lifecycle import Service
from repro.runtime.telemetry import MetricsRegistry, get_registry

#: bytes pulled per recv() call on a readable connection
RECV_CHUNK = 65536
#: consecutive accept() calls per readable-listener event
ACCEPT_BATCH = 128
#: default loop tick: upper bound on idle-reap / wakeup latency
DEFAULT_TICK_S = 0.05

_LEN = struct.Struct("!I")

#: refuse frames larger than this (a corrupt/hostile length prefix must
#: not make the decoder buffer gigabytes)
MAX_FRAME_BYTES = 64 * 1024 * 1024


# -- the frame codec ----------------------------------------------------------


def length_prefix(payload: bytes) -> bytes:
    """``payload`` -> one wire frame: 4-byte big-endian length + bytes."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ValidationError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _LEN.pack(len(payload)) + payload


class FrameBuffer:
    """Incremental decoder for :func:`length_prefix` frames.

    Feed it chunks as they arrive off the socket — any split, including
    mid-prefix — and it yields each completed payload exactly once.
    Single-threaded by design: it lives with its connection on the loop
    thread (or inside one blocking client socket).
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buf = bytearray()

    def feed(self, chunk: bytes) -> list[bytes]:
        """Absorb ``chunk``; return every frame completed by it."""
        self._buf += chunk
        frames: list[bytes] = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buf)
            if length > self.max_frame_bytes:
                raise ValidationError(
                    f"incoming frame of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            end = _LEN.size + length
            if len(self._buf) < end:
                return frames
            frames.append(bytes(self._buf[_LEN.size : end]))
            del self._buf[:end]

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)


# -- connections --------------------------------------------------------------


class Connection:
    """One accepted socket under the loop.

    Reads happen on the loop thread: each readable event recv()s and
    hands the chunk to :attr:`on_data` (protocol parsers keep their own
    reassembly state). Writes are buffered: :meth:`send` appends under a
    lock from *any* thread and schedules a flush on the loop, which
    writes as much as the kernel accepts and registers EVENT_WRITE
    interest only while bytes remain. :attr:`on_close` fires exactly
    once, on the loop thread, with a reason string (``"peer"``,
    ``"idle"``, ``"local"``, ``"error"``, ``"shutdown"``).
    """

    def __init__(
        self,
        loop: "IoLoop",
        sock: socket.socket,
        peer: tuple,
        idle_timeout_s: float | None = None,
    ) -> None:
        self.loop = loop
        self.sock = sock
        self.peer = peer
        self.idle_timeout_s = idle_timeout_s
        #: set True by the protocol while a request is being served, so
        #: the idle reaper never kills a connection mid-response
        self.reap_exempt = False
        self.on_data: Callable[["Connection", bytes], None] | None = None
        self.on_close: Callable[["Connection", str], None] | None = None
        self.close_reason: str | None = None
        self.bytes_read = 0
        self.bytes_written = 0
        self._outbuf = bytearray()
        self._outbuf_lock = threading.Lock()
        self._events = selectors.EVENT_READ
        self._close_when_drained = False
        self._closed = False
        self._last_activity = time.monotonic()

    # -- thread-safe surface (any thread) -------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, data: bytes) -> None:
        """Queue ``data`` for the peer; flushed by the loop. No-op once
        the connection is closed (the caller learns via ``on_close``)."""
        if not data:
            return
        with self._outbuf_lock:
            if self._closed:
                return
            self._outbuf += data
        self.loop.call_soon(self._flush)

    def close(self, reason: str = "local") -> None:
        """Close from any thread (asynchronously, via the loop)."""
        self.loop.call_soon(lambda: self.loop._close_connection(self, reason))

    def close_when_drained(self) -> None:
        """Close as soon as the out-buffer is fully written — the
        socket half of ``Connection: close``."""

        def _mark() -> None:
            self._close_when_drained = True
            self._flush()

        self.loop.call_soon(_mark)

    def touch(self) -> None:
        """Reset the idle clock (reads/writes do this automatically)."""
        self._last_activity = time.monotonic()

    def idle_seconds(self, now: float | None = None) -> float:
        return (time.monotonic() if now is None else now) - self._last_activity

    def pending_out_bytes(self) -> int:
        with self._outbuf_lock:
            return len(self._outbuf)

    # -- loop-thread internals -------------------------------------------------

    def _handle_event(self, mask: int) -> None:
        if self._closed:
            return
        if mask & selectors.EVENT_READ:
            self._handle_read()
        if not self._closed and mask & selectors.EVENT_WRITE:
            self._flush()

    def _handle_read(self) -> None:
        peer_closed = False
        errored = False
        chunks: list[bytes] = []
        try:
            # drain a few chunks per event; level-triggered select
            # re-fires if more is waiting, which keeps dispatch fair
            # across thousands of connections
            for __ in range(4):
                data = self.sock.recv(RECV_CHUNK)
                if not data:
                    peer_closed = True
                    break
                chunks.append(data)
                if len(data) < RECV_CHUNK:
                    break
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            errored = True
        if chunks:
            self.touch()
            total = sum(len(c) for c in chunks)
            self.bytes_read += total
            self.loop.bytes_read.inc(total)
        for data in chunks:
            if self._closed:
                return
            if self.on_data is not None:
                try:
                    self.on_data(self, data)
                except Exception:  # noqa: BLE001 - protocol violation
                    self.loop._close_connection(self, "error")
                    return
        if peer_closed:
            self.loop._close_connection(self, "peer")
        elif errored:
            self.loop._close_connection(self, "error")

    def _flush(self) -> None:
        if self._closed:
            return
        errored = False
        with self._outbuf_lock:
            while self._outbuf:
                try:
                    sent = self.sock.send(self._outbuf)
                except (BlockingIOError, InterruptedError):
                    break
                except OSError:
                    errored = True
                    break
                del self._outbuf[:sent]
                self.bytes_written += sent
                self.loop.bytes_written.inc(sent)
            pending = bool(self._outbuf)
        self.touch()
        if errored:
            self.loop._close_connection(self, "error")
            return
        want = selectors.EVENT_READ | (selectors.EVENT_WRITE if pending else 0)
        if want != self._events:
            self._events = want
            self.loop._set_interest(self, want)
        if not pending and self._close_when_drained:
            self.loop._close_connection(self, "local")


class Listener:
    """A non-blocking accepting socket owned by the loop."""

    def __init__(
        self,
        loop: "IoLoop",
        sock: socket.socket,
        on_accept: Callable[[Connection], None],
        idle_timeout_s: float | None,
    ) -> None:
        self.loop = loop
        self.sock = sock
        self.on_accept = on_accept
        self.idle_timeout_s = idle_timeout_s
        self.host, self.port = sock.getsockname()[:2]
        self.closed = False

    def close(self) -> None:
        """Stop accepting (existing connections live on); any thread."""
        self.loop.run_on_loop(lambda: self.loop._close_listener(self))

    # loop thread only
    def _handle_accept(self, mask: int) -> None:
        for __ in range(ACCEPT_BATCH):
            try:
                client, addr = self.sock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener racing close
            client.setblocking(False)
            try:
                client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = Connection(
                self.loop, client, addr, idle_timeout_s=self.idle_timeout_s
            )
            self.loop._register_connection(conn)
            try:
                self.on_accept(conn)
            except Exception:  # noqa: BLE001 - acceptor bug, not fatal
                self.loop._close_connection(conn, "error")


# -- the loop -----------------------------------------------------------------


class IoLoop(Service):
    """One selector thread serving every listener and connection.

    A proper runtime :class:`Service`: ``start()`` spawns the loop
    thread and the socketpair wakeup; ``stop()`` joins the thread and
    then closes every listener, connection, the selector and the wakeup
    pair — nothing survives a drain. All selector mutation happens on
    the loop thread; other threads talk to it through
    :meth:`call_soon` (fire-and-forget) or :meth:`run_on_loop`
    (synchronous round trip).
    """

    def __init__(
        self,
        name: str = "ioloop",
        registry: MetricsRegistry | None = None,
        tick_s: float = DEFAULT_TICK_S,
    ) -> None:
        super().__init__(name=name)
        if tick_s <= 0:
            raise ValidationError(f"tick_s must be positive ({tick_s=})")
        registry = registry if registry is not None else get_registry()
        self.tick_s = tick_s
        self._selector: selectors.BaseSelector | None = None
        self._wakeup_recv: socket.socket | None = None
        self._wakeup_send: socket.socket | None = None
        self._pending: deque[Callable[[], None]] = deque()
        self._pending_lock = threading.Lock()
        self._listeners: list[Listener] = []
        self._connections: set[Connection] = set()
        self._loop_thread: threading.Thread | None = None
        self._last_reap = 0.0
        self.open_connections = registry.gauge(
            "io_open_connections", loop=self.name
        )
        self.bytes_read = registry.counter("io_bytes_read_total", loop=self.name)
        self.bytes_written = registry.counter(
            "io_bytes_written_total", loop=self.name
        )
        self.accepted = registry.counter(
            "io_connections_accepted_total", loop=self.name
        )
        self.reaped = registry.counter(
            "io_connections_reaped_total", loop=self.name
        )

    # -- lifecycle ------------------------------------------------------------

    def _on_start(self) -> None:
        self._selector = selectors.DefaultSelector()
        self._wakeup_recv, self._wakeup_send = socket.socketpair()
        self._wakeup_recv.setblocking(False)
        self._wakeup_send.setblocking(False)
        self._selector.register(
            self._wakeup_recv, selectors.EVENT_READ, data=self._drain_wakeup
        )
        self._loop_thread = self._spawn(self._run, name=f"{self.name}-loop")

    def _on_stop(self) -> None:
        self._stop_event.set()
        self._wake()
        self._join_workers()
        # The loop thread is gone; tear down from here. Close order:
        # listeners (no new connections), then connections, then the
        # selector + wakeup pair.
        for listener in list(self._listeners):
            self._close_listener(listener)
        for conn in list(self._connections):
            self._close_connection(conn, "shutdown")
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        for sock in (self._wakeup_recv, self._wakeup_send):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._wakeup_recv = self._wakeup_send = None
        with self._pending_lock:
            self._pending.clear()

    # -- cross-thread scheduling ----------------------------------------------

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the loop thread at the next tick (any thread)."""
        with self._pending_lock:
            self._pending.append(fn)
        self._wake()

    def run_on_loop(self, fn: Callable[[], object], timeout_s: float = 5.0):
        """Run ``fn`` on the loop thread and wait for its result.

        Called *from* the loop thread (or with the loop not running, as
        during shutdown) it degrades to a direct call.
        """
        if (
            self._loop_thread is None
            or not self._loop_thread.is_alive()
            or threading.current_thread() is self._loop_thread
        ):
            return fn()
        done = threading.Event()
        box: dict[str, object] = {}

        def wrapper() -> None:
            try:
                box["result"] = fn()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box["error"] = exc
            finally:
                done.set()

        self.call_soon(wrapper)
        if not done.wait(timeout_s):
            raise TimeoutError(f"{self.name}: loop did not run fn in {timeout_s}s")
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box.get("result")

    def _wake(self) -> None:
        sock = self._wakeup_send
        if sock is None:
            return
        try:
            sock.send(b"\0")
        except (BlockingIOError, InterruptedError):
            pass  # wakeup already pending
        except OSError:
            pass  # racing shutdown

    def _drain_wakeup(self, mask: int) -> None:
        assert self._wakeup_recv is not None
        try:
            while self._wakeup_recv.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            pass

    # -- listeners ------------------------------------------------------------

    def listen(
        self,
        host: str,
        port: int,
        on_accept: Callable[[Connection], None],
        backlog: int = 1024,
        idle_timeout_s: float | None = None,
    ) -> Listener:
        """Bind + listen and register with the selector; returns the
        listener with its (possibly ephemeral) bound port resolved."""
        self._check_running("listen")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((host, port))
            sock.listen(backlog)
        except OSError:
            sock.close()
            raise
        sock.setblocking(False)
        listener = Listener(self, sock, on_accept, idle_timeout_s)

        def _register() -> None:
            assert self._selector is not None
            self._selector.register(
                sock, selectors.EVENT_READ, data=listener._handle_accept
            )
            self._listeners.append(listener)

        self.run_on_loop(_register)
        return listener

    def _close_listener(self, listener: Listener) -> None:
        if listener.closed:
            return
        listener.closed = True
        if self._selector is not None:
            try:
                self._selector.unregister(listener.sock)
            except (KeyError, ValueError):
                pass
        try:
            listener.sock.close()
        except OSError:
            pass
        if listener in self._listeners:
            self._listeners.remove(listener)

    # -- connections ----------------------------------------------------------

    def connections(self) -> list[Connection]:
        """Snapshot of live connections (loop thread mutates the set;
        callers get a copy)."""
        return list(self._connections)

    @property
    def connection_count(self) -> int:
        return len(self._connections)

    def _register_connection(self, conn: Connection) -> None:
        assert self._selector is not None
        self._selector.register(
            conn.sock, selectors.EVENT_READ, data=conn._handle_event
        )
        self._connections.add(conn)
        self.open_connections.inc()
        self.accepted.inc()

    def _set_interest(self, conn: Connection, events: int) -> None:
        if self._selector is None or conn._closed:
            return
        try:
            self._selector.modify(conn.sock, events, data=conn._handle_event)
        except (KeyError, ValueError, OSError):
            pass

    def _close_connection(self, conn: Connection, reason: str) -> None:
        if conn._closed:
            return
        with conn._outbuf_lock:
            conn._closed = True
            conn._outbuf.clear()
        conn.close_reason = reason
        if self._selector is not None:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
        try:
            conn.sock.close()
        except OSError:
            pass
        self._connections.discard(conn)
        self.open_connections.dec()
        if reason == "idle":
            self.reaped.inc()
        if conn.on_close is not None:
            try:
                conn.on_close(conn, reason)
            except Exception:  # noqa: BLE001 - observer bug, contained
                pass

    # -- the loop body --------------------------------------------------------

    def _run(self) -> None:
        assert self._selector is not None
        while not self._stop_event.is_set():
            try:
                events = self._selector.select(self.tick_s)
            except OSError:
                continue  # racing fd churn; re-select
            for key, mask in events:
                if self._stop_event.is_set():
                    break
                key.data(mask)
            self._run_pending()
            self._reap_idle()

    def _run_pending(self) -> None:
        while True:
            with self._pending_lock:
                if not self._pending:
                    return
                fn = self._pending.popleft()
            try:
                fn()
            except Exception:  # noqa: BLE001 - scheduled work is contained
                pass

    def _reap_idle(self) -> None:
        now = time.monotonic()
        if now - self._last_reap < self.tick_s:
            return
        self._last_reap = now
        for conn in list(self._connections):
            timeout = conn.idle_timeout_s
            if timeout is None or conn.reap_exempt:
                continue
            if conn.idle_seconds(now) >= timeout and not conn.pending_out_bytes():
                self._close_connection(conn, "idle")

    # -- introspection --------------------------------------------------------

    def health(self) -> dict[str, object]:
        record = super().health()
        record["connections"] = self.connection_count
        record["listeners"] = [
            (listener.host, listener.port) for listener in self._listeners
        ]
        return record
