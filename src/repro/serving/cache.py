"""Read-through serving cache: LRU + TTL + a Zipfian-aware hot-key tier.

Online feature traffic is heavily skewed ("power users" dominate request
logs the same way Zipfian entities dominate the ride workload in
:mod:`repro.datagen.tabular`), so a small cache in front of the store
absorbs most reads. Two design points follow from skew:

* **LRU tier** — bounded ``OrderedDict``; recency approximates frequency
  well enough for the warm middle of the distribution.
* **Hot tier** — keys whose access count crosses a promotion threshold
  move into a separate bounded dict that LRU churn can never evict: a
  burst of one-off cold keys (a scan, a crawler) cannot wash the head of
  the Zipf distribution out of the cache.

Entries are TTL-aware: a lookup distinguishes *hit* (present and fresh),
*stale* (present but older than ``ttl``) and *miss*. Stale entries are
kept — the gateway serves them as graceful degradation when the backing
store times out (``FreshnessPolicy.SERVE_ANYWAY``).

Invalidation is push-based: the gateway registers a write listener on the
:class:`~repro.storage.online.OnlineStore`, so any writer that lands a new
value (materializer, stream processor, backfill) evicts the cached copy.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Hashable

from repro.errors import ValidationError

CacheKey = Hashable


class LookupStatus(Enum):
    HIT = "hit"
    STALE = "stale"
    MISS = "miss"


@dataclass
class CacheEntry:
    """One cached value with its bookkeeping."""

    value: object
    stored_at: float
    accesses: int = 0


@dataclass(frozen=True)
class CacheStats:
    hits: int
    stale_hits: int
    misses: int
    hot_hits: int
    evictions: int
    invalidations: int
    promotions: int
    size: int
    hot_size: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.stale_hits + self.misses
        return self.hits / total if total else 0.0


class ReadThroughCache:
    """Thread-safe LRU+TTL cache with a frequency-promoted hot tier.

    ``ttl`` bounds how long an entry may be served as *fresh*; ``None``
    disables expiry. ``hot_capacity=0`` disables the hot tier entirely.
    A key is promoted once it accumulates ``hot_promote_hits`` lookups;
    when the hot tier is full the least-accessed hot key is demoted back
    to the LRU tier, so the hot set tracks the true head over time.
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl: float | None = None,
        hot_capacity: int = 0,
        hot_promote_hits: int = 8,
        now: Callable[[], float] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValidationError(f"capacity must be positive ({capacity=})")
        if ttl is not None and ttl <= 0:
            raise ValidationError(f"ttl must be positive or None ({ttl=})")
        if hot_capacity < 0:
            raise ValidationError(f"hot_capacity must be >= 0 ({hot_capacity=})")
        if hot_promote_hits < 1:
            raise ValidationError(
                f"hot_promote_hits must be >= 1 ({hot_promote_hits=})"
            )
        self.capacity = capacity
        self.ttl = ttl
        self.hot_capacity = hot_capacity
        self.hot_promote_hits = hot_promote_hits
        self._now = now or time.monotonic
        self._lru: OrderedDict[CacheKey, CacheEntry] = OrderedDict()
        self._hot: dict[CacheKey, CacheEntry] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._stale_hits = 0
        self._misses = 0
        self._hot_hits = 0
        self._evictions = 0
        self._invalidations = 0
        self._promotions = 0

    # -- lookup ---------------------------------------------------------------

    def lookup(self, key: CacheKey) -> tuple[LookupStatus, CacheEntry | None]:
        """Classify a key as hit / stale / miss; return the entry if present.

        A *stale* entry is returned (not dropped) so the caller can use it
        for serve-stale degradation; it still counts as a miss for
        hit-rate purposes because the read-through path must refresh it.
        """
        with self._lock:
            entry = self._hot.get(key)
            in_hot = entry is not None
            if entry is None:
                entry = self._lru.get(key)
                if entry is not None:
                    self._lru.move_to_end(key)
            if entry is None:
                self._misses += 1
                return LookupStatus.MISS, None
            entry.accesses += 1
            if self.ttl is not None and self._now() - entry.stored_at > self.ttl:
                self._stale_hits += 1
                return LookupStatus.STALE, entry
            self._hits += 1
            if in_hot:
                self._hot_hits += 1
            else:
                self._maybe_promote(key, entry)
            return LookupStatus.HIT, entry

    def _maybe_promote(self, key: CacheKey, entry: CacheEntry) -> None:
        # Caller holds the lock.
        if self.hot_capacity == 0 or entry.accesses < self.hot_promote_hits:
            return
        if len(self._hot) >= self.hot_capacity:
            coldest = min(self._hot, key=lambda k: self._hot[k].accesses)
            if self._hot[coldest].accesses >= entry.accesses:
                return  # the incumbent head is hotter; keep it
            demoted = self._hot.pop(coldest)
            self._store_lru(coldest, demoted)
        self._lru.pop(key, None)
        self._hot[key] = entry
        self._promotions += 1

    # -- write path -----------------------------------------------------------

    def put(self, key: CacheKey, value: object) -> None:
        """Insert or refresh a value (resets its TTL clock)."""
        with self._lock:
            stored_at = self._now()
            hot_entry = self._hot.get(key)
            if hot_entry is not None:
                hot_entry.value = value
                hot_entry.stored_at = stored_at
                return
            existing = self._lru.get(key)
            if existing is not None:
                existing.value = value
                existing.stored_at = stored_at
                self._lru.move_to_end(key)
                return
            self._store_lru(key, CacheEntry(value=value, stored_at=stored_at))

    def _store_lru(self, key: CacheKey, entry: CacheEntry) -> None:
        # Caller holds the lock.
        self._lru[key] = entry
        self._lru.move_to_end(key)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
            self._evictions += 1

    def invalidate(self, key: CacheKey) -> bool:
        """Drop a key from both tiers; returns whether anything was dropped."""
        with self._lock:
            dropped = self._hot.pop(key, None) is not None
            dropped = (self._lru.pop(key, None) is not None) or dropped
            if dropped:
                self._invalidations += 1
            return dropped

    def invalidate_where(self, predicate: Callable[[CacheKey], bool]) -> int:
        """Drop every key matching ``predicate`` (e.g. a whole namespace)."""
        with self._lock:
            doomed = [k for k in self._hot if predicate(k)]
            doomed += [k for k in self._lru if predicate(k)]
            for key in doomed:
                self._hot.pop(key, None)
                self._lru.pop(key, None)
            self._invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._lru.clear()
            self._hot.clear()

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru) + len(self._hot)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._lru or key in self._hot

    def hot_keys(self) -> list[CacheKey]:
        with self._lock:
            return list(self._hot)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                stale_hits=self._stale_hits,
                misses=self._misses,
                hot_hits=self._hot_hits,
                evictions=self._evictions,
                invalidations=self._invalidations,
                promotions=self._promotions,
                size=len(self._lru) + len(self._hot),
                hot_size=len(self._hot),
            )
