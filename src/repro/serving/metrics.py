"""Serving observability: the gateway facade over the runtime registry.

Paper section 2.2.3 argues that operational metrics are what "allow users
to be informed of potential 'gremlins' in the system"; an online serving
tier is the component where those gremlins cost real traffic, so the
gateway records per-endpoint latency distributions (p50/p95/p99), request
and error rates, cache effectiveness and queue pressure.

The thread-safe primitives (:class:`Counter`, :class:`Gauge`,
:class:`LatencyHistogram`) now live in :mod:`repro.runtime.telemetry`
and are re-exported here for backward compatibility. Every metric a
:class:`ServingMetrics` facade exposes is allocated through a
:class:`~repro.runtime.telemetry.MetricsRegistry` — hand the same
registry to the bus and vector planes and the whole deployment exports
through one Prometheus/JSON endpoint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

# Backward-compatible re-exports: the primitives' canonical home is the
# runtime layer now (import them from repro.runtime.telemetry in new code).
from repro.runtime.telemetry import (  # noqa: F401 - re-exported shims
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
)


@dataclass
class EndpointMetrics:
    """All per-endpoint serving metrics."""

    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    requests: Counter = field(default_factory=Counter)
    errors: Counter = field(default_factory=Counter)
    degraded: Counter = field(default_factory=Counter)
    stale_served: Counter = field(default_factory=Counter)
    retries: Counter = field(default_factory=Counter)
    cache_hits: Counter = field(default_factory=Counter)
    cache_misses: Counter = field(default_factory=Counter)

    @classmethod
    def from_registry(
        cls, registry: MetricsRegistry, endpoint: str
    ) -> "EndpointMetrics":
        """Allocate every per-endpoint series through ``registry``."""
        label = {"endpoint": endpoint}
        return cls(
            latency=registry.histogram("serving_latency_seconds", **label),
            requests=registry.counter("serving_requests_total", **label),
            errors=registry.counter("serving_errors_total", **label),
            degraded=registry.counter("serving_degraded_total", **label),
            stale_served=registry.counter("serving_stale_served_total", **label),
            retries=registry.counter("serving_retries_total", **label),
            cache_hits=registry.counter("serving_cache_hits_total", **label),
            cache_misses=registry.counter("serving_cache_misses_total", **label),
        )

    def hit_rate(self) -> float:
        hits, misses = self.cache_hits.value, self.cache_misses.value
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self, elapsed_s: float) -> dict[str, float]:
        latency = self.latency.summary()
        requests = self.requests.value
        return {
            "requests": float(requests),
            "qps": requests / elapsed_s if elapsed_s > 0 else 0.0,
            "errors": float(self.errors.value),
            "degraded": float(self.degraded.value),
            "stale_served": float(self.stale_served.value),
            "retries": float(self.retries.value),
            "cache_hits": float(self.cache_hits.value),
            "cache_misses": float(self.cache_misses.value),
            "cache_hit_rate": self.hit_rate(),
            **latency,
        }


class ServingMetrics:
    """Per-endpoint metrics plus gateway-wide gauges, registry-backed.

    ``registry`` defaults to a private
    :class:`~repro.runtime.telemetry.MetricsRegistry` (full isolation,
    the pre-runtime behaviour); pass a shared one to merge the serving
    tier into a process-wide export.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._endpoints: dict[str, EndpointMetrics] = {}
        self._started = time.monotonic()
        self.inflight = self.registry.gauge("serving_inflight")
        self.queue_depth = self.registry.gauge("serving_queue_depth")

    def freshness(self, namespace: str) -> LatencyHistogram:
        """Per-namespace end-to-end freshness lag (event_time → write_time).

        The write plane (the ingestion bus's online sinks, see
        :mod:`repro.bus.metrics`) records into these histograms, so the
        serving tier's snapshot shows how stale each namespace's values
        were *when they landed* — the counterpart of the read-path
        ``stale_served`` counter. When the bus shares this registry the
        histogram object is literally the same series.
        """
        return self.registry.histogram(
            "serving_freshness_lag_seconds", namespace=namespace
        )

    def freshness_namespaces(self) -> list[str]:
        return sorted(
            labels["namespace"]
            for name, labels, __ in self.registry.collect()
            if name == "serving_freshness_lag_seconds"
        )

    def endpoint(self, name: str) -> EndpointMetrics:
        # dict access is atomic under the GIL; creation races produce the
        # same registry-backed series either way, so last-write-wins on
        # the facade cache is benign.
        metrics = self._endpoints.get(name)
        if metrics is None:
            metrics = self._endpoints[name] = EndpointMetrics.from_registry(
                self.registry, name
            )
        return metrics

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    def reset_window(self) -> None:
        """Restart the QPS window (keeps histograms and counters)."""
        self._started = time.monotonic()

    def snapshot(self) -> dict[str, object]:
        """One nested dict with every endpoint plus gateway-wide gauges."""
        elapsed = self.elapsed_s()
        return {
            "elapsed_s": elapsed,
            "inflight": self.inflight.value,
            "inflight_peak": self.inflight.peak,
            "queue_depth": self.queue_depth.value,
            "queue_depth_peak": self.queue_depth.peak,
            "endpoints": {
                name: self.endpoint(name).snapshot(elapsed)
                for name in self.endpoints()
            },
            "freshness": {
                namespace: self.freshness(namespace).summary()
                for namespace in self.freshness_namespaces()
            },
        }
