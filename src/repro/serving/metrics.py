"""Serving observability primitives: counters, gauges, latency histograms.

Paper section 2.2.3 argues that operational metrics are what "allow users
to be informed of potential 'gremlins' in the system"; an online serving
tier is the component where those gremlins cost real traffic, so the
gateway records per-endpoint latency distributions (p50/p95/p99), request
and error rates, cache effectiveness and queue pressure.

Everything here is thread-safe and allocation-light: histograms are
log-bucketed fixed arrays (record() is O(1), no per-sample storage), and
counters/gauges are plain ints behind a lock. Latencies are measured in
*wall* seconds (``time.monotonic``) — unlike event-time freshness, tail
latency is a property of the real machine, not the simulated clock.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ValidationError

#: Histogram bucket geometry: bucket ``i`` holds samples in
#: ``[_BASE * _GROWTH**i, _BASE * _GROWTH**(i+1))`` seconds.
_BASE = 1e-6  # 1 microsecond
_GROWTH = math.sqrt(2.0)
_N_BUCKETS = 64  # covers 1us .. ~4.3e3 s


class Counter:
    """A monotonically increasing, thread-safe counter."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A thread-safe up/down gauge tracking an instantaneous quantity.

    Tracks the high-water mark too, so a snapshot taken after the storm
    still shows how deep the queue got.
    """

    def __init__(self) -> None:
        self._value = 0
        self._peak = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount
            self._peak = max(self._peak, self._value)

    def dec(self, amount: int = 1) -> None:
        with self._lock:
            self._value -= amount

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value
            self._peak = max(self._peak, value)

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    @property
    def peak(self) -> int:
        with self._lock:
            return self._peak


class LatencyHistogram:
    """Log-bucketed latency histogram with percentile estimation.

    ``record()`` is O(1); ``percentile()`` walks the cumulative counts and
    returns the geometric midpoint of the bucket containing the requested
    rank (the classic Prometheus-style estimate — exact to within one
    bucket width, ~±19% with sqrt(2) growth).
    """

    def __init__(self) -> None:
        self._counts = [0] * _N_BUCKETS
        self._lock = threading.Lock()
        self.count = 0
        self.total_seconds = 0.0

    @staticmethod
    def _bucket_index(seconds: float) -> int:
        if seconds < _BASE:
            return 0
        index = int(math.log(seconds / _BASE) / math.log(_GROWTH))
        return min(index, _N_BUCKETS - 1)

    @staticmethod
    def _bucket_midpoint(index: int) -> float:
        low = _BASE * _GROWTH**index
        return low * math.sqrt(_GROWTH)  # geometric midpoint of [low, low*G)

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValidationError(f"latency cannot be negative ({seconds=})")
        index = self._bucket_index(seconds)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total_seconds += seconds

    def percentile(self, p: float) -> float:
        """Estimated latency (seconds) at percentile ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValidationError(f"percentile must be in [0, 100] ({p=})")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = max(1, math.ceil(self.count * p / 100.0))
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank:
                    return self._bucket_midpoint(index)
            return self._bucket_midpoint(_N_BUCKETS - 1)

    def mean(self) -> float:
        with self._lock:
            return self.total_seconds / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """count / mean / p50 / p95 / p99 in one locked-per-call bundle."""
        return {
            "count": float(self.count),
            "mean_s": self.mean(),
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
        }


@dataclass
class EndpointMetrics:
    """All per-endpoint serving metrics."""

    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    requests: Counter = field(default_factory=Counter)
    errors: Counter = field(default_factory=Counter)
    degraded: Counter = field(default_factory=Counter)
    stale_served: Counter = field(default_factory=Counter)
    retries: Counter = field(default_factory=Counter)
    cache_hits: Counter = field(default_factory=Counter)
    cache_misses: Counter = field(default_factory=Counter)

    def hit_rate(self) -> float:
        hits, misses = self.cache_hits.value, self.cache_misses.value
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self, elapsed_s: float) -> dict[str, float]:
        latency = self.latency.summary()
        requests = self.requests.value
        return {
            "requests": float(requests),
            "qps": requests / elapsed_s if elapsed_s > 0 else 0.0,
            "errors": float(self.errors.value),
            "degraded": float(self.degraded.value),
            "stale_served": float(self.stale_served.value),
            "retries": float(self.retries.value),
            "cache_hits": float(self.cache_hits.value),
            "cache_misses": float(self.cache_misses.value),
            "cache_hit_rate": self.hit_rate(),
            **latency,
        }


class ServingMetrics:
    """Registry of per-endpoint metrics plus gateway-wide gauges."""

    def __init__(self) -> None:
        self._endpoints: dict[str, EndpointMetrics] = {}
        self._freshness: dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.inflight = Gauge()
        self.queue_depth = Gauge()

    def freshness(self, namespace: str) -> LatencyHistogram:
        """Per-namespace end-to-end freshness lag (event_time → write_time).

        The write plane (the ingestion bus's online sinks, see
        :mod:`repro.bus.metrics`) records into these histograms, so the
        serving tier's snapshot shows how stale each namespace's values
        were *when they landed* — the counterpart of the read-path
        ``stale_served`` counter.
        """
        with self._lock:
            histogram = self._freshness.get(namespace)
            if histogram is None:
                histogram = self._freshness[namespace] = LatencyHistogram()
            return histogram

    def freshness_namespaces(self) -> list[str]:
        with self._lock:
            return sorted(self._freshness)

    def endpoint(self, name: str) -> EndpointMetrics:
        with self._lock:
            metrics = self._endpoints.get(name)
            if metrics is None:
                metrics = self._endpoints[name] = EndpointMetrics()
            return metrics

    def endpoints(self) -> list[str]:
        with self._lock:
            return sorted(self._endpoints)

    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    def reset_window(self) -> None:
        """Restart the QPS window (keeps histograms and counters)."""
        self._started = time.monotonic()

    def snapshot(self) -> dict[str, object]:
        """One nested dict with every endpoint plus gateway-wide gauges."""
        elapsed = self.elapsed_s()
        return {
            "elapsed_s": elapsed,
            "inflight": self.inflight.value,
            "inflight_peak": self.inflight.peak,
            "queue_depth": self.queue_depth.value,
            "queue_depth_peak": self.queue_depth.peak,
            "endpoints": {
                name: self.endpoint(name).snapshot(elapsed)
                for name in self.endpoints()
            },
            "freshness": {
                namespace: self.freshness(namespace).summary()
                for namespace in self.freshness_namespaces()
            },
        }
