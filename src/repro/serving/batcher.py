"""Micro-batching: coalesce concurrent point lookups into batched reads.

"Unified Embedding" (PAPERS.md) reports that web-scale serving lives or
dies by batched, cache-friendly lookup paths; the same trick applies to a
feature store's online tier. Many concurrent callers each want one key —
issuing one store round trip per key pays the per-call overhead (lock
acquisition here; a network hop against a real Redis/Cassandra tier) once
*per key*. The micro-batcher puts requests on a queue; a small bounded
worker pool drains the queue in batches of up to ``max_batch_size``
(waiting at most ``max_wait_s`` for stragglers), groups them by
``(namespace, policy)`` and issues one ``read_many`` per group, paying the
per-call overhead once *per batch*.

Callers block on a :class:`concurrent.futures.Future`, which also gives
the gateway its per-request deadline (``future.result(timeout=...)``).

The batcher is a :class:`repro.runtime.Service`: the worker pool starts
in the constructor (the historical contract), ``stop()``/``close()`` are
idempotent and safe while requests are in flight (queued work drains
before the workers exit), and the lifecycle state machine is shared with
every other plane.
"""

from __future__ import annotations

import queue
import time
from collections.abc import Callable
from concurrent.futures import Future
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.runtime import Counter, LifecycleError, Service
from repro.storage.online import FreshnessPolicy

ReadManyFn = Callable[
    [str, list[int], FreshnessPolicy], list[dict[str, object] | None]
]


@dataclass
class _Request:
    namespace: str
    entity_id: int
    policy: FreshnessPolicy
    future: Future


_STOP = object()


class MicroBatcher(Service):
    """Queue + bounded worker pool that batches point reads.

    ``read_many`` is the backing batched read (typically the online
    store's — or its fault-injecting wrapper's — ``read_many``). Workers
    are daemon threads owned by the service; call :meth:`stop` (or use
    the gateway as a context manager) for an orderly shutdown. Requests
    already queued when ``stop()`` lands are completed before the pool
    exits — the stop sentinel enqueues *behind* them.
    """

    def __init__(
        self,
        read_many: ReadManyFn,
        max_batch_size: int = 64,
        max_wait_s: float = 0.001,
        n_workers: int = 2,
    ) -> None:
        if max_batch_size < 1:
            raise ValidationError(f"max_batch_size must be >= 1 ({max_batch_size=})")
        if max_wait_s < 0:
            raise ValidationError(f"max_wait_s must be >= 0 ({max_wait_s=})")
        if n_workers < 1:
            raise ValidationError(f"n_workers must be >= 1 ({n_workers=})")
        super().__init__(name="microbatcher")
        self._read_many = read_many
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.n_workers = n_workers
        self._queue: queue.Queue = queue.Queue()
        self.batches = Counter()
        self.batched_requests = Counter()
        self.start()  # historical contract: constructed == running

    def _on_start(self) -> None:
        for i in range(self.n_workers):
            self._spawn(self._worker_loop, name=f"microbatch-{i}")

    def _on_stop(self) -> None:
        self._queue.put(_STOP)
        self._join_workers()

    # -- client side ----------------------------------------------------------

    def submit(
        self,
        namespace: str,
        entity_id: int,
        policy: FreshnessPolicy = FreshnessPolicy.SERVE_ANYWAY,
    ) -> Future:
        """Enqueue one point lookup; resolve via the returned future.

        The running-check and the enqueue happen under the lifecycle
        lock: a request either lands ahead of the stop sentinel (and is
        served during the drain) or is rejected — it can never slip in
        behind the sentinel and strand its future forever.
        """
        with self._state_lock:
            if not self.running:
                raise LifecycleError("batcher is stopped")
            future: Future = Future()
            self._queue.put(_Request(namespace, entity_id, policy, future))
        return future

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def mean_batch_size(self) -> float:
        batches = self.batches.value
        return self.batched_requests.value / batches if batches else 0.0

    def health(self) -> dict[str, object]:
        record = super().health()
        record["queue_depth"] = self.queue_depth()
        record["batches"] = self.batches.value
        return record

    # -- worker side ----------------------------------------------------------

    def _collect_batch(self, first: _Request) -> list[_Request]:
        batch = [first]
        deadline = time.monotonic() + self.max_wait_s
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.monotonic()
            try:
                # Even with no wait budget left, drain anything already
                # queued — coalescing backlog is free.
                item = self._queue.get(
                    block=remaining > 0, timeout=max(remaining, 0) or None
                )
            except queue.Empty:
                break
            if item is _STOP:
                self._queue.put(_STOP)  # let sibling workers see it too
                break
            batch.append(item)
        return batch

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.put(_STOP)
                return
            batch = self._collect_batch(item)
            self.batches.inc()
            self.batched_requests.inc(len(batch))
            self._execute(batch)

    def _execute(self, batch: list[_Request]) -> None:
        groups: dict[tuple[str, FreshnessPolicy], list[_Request]] = {}
        for request in batch:
            groups.setdefault((request.namespace, request.policy), []).append(
                request
            )
        for (namespace, policy), requests in groups.items():
            try:
                values = self._read_many(
                    namespace, [r.entity_id for r in requests], policy
                )
            except BaseException as exc:  # noqa: BLE001 - forwarded to callers
                for request in requests:
                    if not request.future.cancelled():
                        request.future.set_exception(exc)
                continue
            for request, value in zip(requests, values):
                if not request.future.cancelled():
                    request.future.set_result(value)
