"""The serving gateway: one concurrent request path over both stores.

The paper's product surface (§2.2.2, §3) is low-latency online serving of
features *and* embeddings to deployed models. Industrial feature stores
put a dedicated serving tier in front of the storage layer (Microsoft's
geo-distributed feature store ships an online gateway with caching and
SLO monitoring; see PAPERS.md); this module is that tier for ``repro``:

* **one API** — :meth:`get_features`, :meth:`get_embeddings`,
  :meth:`nearest_neighbors`, and the fused :meth:`enrich` that returns a
  feature vector plus the compatibility-checked embedding row in a single
  round trip;
* **micro-batching** — concurrent point lookups coalesce into batched
  store reads (:mod:`repro.serving.batcher`);
* **read-through caching** — LRU + TTL + Zipfian hot tier
  (:mod:`repro.serving.cache`), invalidated by the store's write path;
* **robust execution** — a bounded worker pool, per-request deadlines,
  retry-with-backoff on :class:`~repro.errors.TransientStoreError`, and
  graceful degradation: on an exhausted budget the gateway serves the
  stale cached value, returns ``None``, or raises, according to the
  request's :class:`~repro.storage.online.FreshnessPolicy`;
* **observability** — per-endpoint latency histograms, QPS, hit rates,
  inflight/queue-depth gauges and error/degraded counters
  (:mod:`repro.serving.metrics`), rendered by
  :func:`repro.monitoring.dashboard.serving_section`.

Freshness caveat: the cache bounds value age with the *wall-clock*
``cache_ttl_s``; pick it no larger than the tightest namespace TTL if
freshness contracts must hold through the cache.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.core.embedding_store import EmbeddingStore
from repro.errors import (
    DeadlineExceededError,
    TransientStoreError,
    ValidationError,
)
from repro.runtime import Deadline, MetricsRegistry, RetryPolicy, Service
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import CacheEntry, LookupStatus, ReadThroughCache
from repro.serving.metrics import EndpointMetrics, ServingMetrics
from repro.storage.online import FreshnessPolicy


@dataclass(frozen=True)
class GatewayConfig:
    """Tuning knobs for the serving gateway."""

    enable_cache: bool = True
    cache_capacity: int = 2048
    cache_ttl_s: float | None = None
    hot_capacity: int = 128
    hot_promote_hits: int = 4
    enable_batching: bool = True
    max_batch_size: int = 64
    batch_wait_s: float = 0.0005
    n_workers: int = 4
    default_deadline_s: float = 0.25
    max_retries: int = 2
    retry_backoff_s: float = 0.0005

    def validate(self) -> None:
        if self.default_deadline_s <= 0:
            raise ValidationError(
                f"default_deadline_s must be positive ({self.default_deadline_s=})"
            )
        if self.max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0 ({self.max_retries=})")
        if self.retry_backoff_s < 0:
            raise ValidationError(
                f"retry_backoff_s must be >= 0 ({self.retry_backoff_s=})"
            )


@dataclass(frozen=True)
class EnrichResult:
    """The fused response: features + pinned-version embedding, one call."""

    entity_id: int
    features: dict[str, object] | None
    embedding: np.ndarray | None
    embedding_name: str
    embedding_version: int
    degraded: bool = False


@dataclass
class _Attempt:
    """Mutable bookkeeping for one deadline-bounded request."""

    deadline: Deadline
    last_error: Exception | None = None
    attempts: int = 0

    def remaining(self) -> float:
        return self.deadline.remaining()


class ServingGateway(Service):
    """Concurrent, cached, batched, observable serving over both stores.

    ``online`` may be a plain :class:`~repro.storage.online.OnlineStore`
    or its fault-injecting wrapper; anything exposing ``read`` /
    ``read_many`` / ``write`` / ``add_write_listener`` works. The
    gateway is a :class:`repro.runtime.Service` — constructed running,
    with idempotent thread-safe :meth:`stop`/:meth:`close`; use it as a
    context manager (or in a
    :class:`~repro.runtime.ServiceGroup`) for orderly shutdown.

    ``registry`` threads a shared
    :class:`~repro.runtime.telemetry.MetricsRegistry` into the gateway's
    :class:`~repro.serving.metrics.ServingMetrics`, merging the serving
    tier into one process-wide telemetry export.
    """

    _FEATURE = "feat"
    _EMBEDDING = "emb"

    def __init__(
        self,
        online,
        embeddings: EmbeddingStore | None = None,
        config: GatewayConfig | None = None,
        vectors=None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(name="gateway")
        self.config = config or GatewayConfig()
        self.config.validate()
        self.online = online
        self.embeddings = embeddings
        self.vectors = vectors  # a repro.vecserve.VectorService, if attached
        self.metrics = ServingMetrics(registry=registry)
        self._retry_policy = RetryPolicy(
            max_retries=self.config.max_retries,
            backoff_s=self.config.retry_backoff_s,
        )
        self.cache: ReadThroughCache | None = (
            ReadThroughCache(
                capacity=self.config.cache_capacity,
                ttl=self.config.cache_ttl_s,
                hot_capacity=self.config.hot_capacity,
                hot_promote_hits=self.config.hot_promote_hits,
            )
            if self.config.enable_cache
            else None
        )
        self.batcher: MicroBatcher | None = None
        self._listening = False
        self.start()  # historical contract: constructed == serving

    # -- lifecycle ------------------------------------------------------------

    def _on_start(self) -> None:
        if self.config.enable_batching:
            self.batcher = MicroBatcher(
                read_many=self._upstream_read_many,
                max_batch_size=self.config.max_batch_size,
                max_wait_s=self.config.batch_wait_s,
                n_workers=self.config.n_workers,
            )
        if hasattr(self.online, "add_write_listener"):
            self.online.add_write_listener(self._on_store_write)
            self._listening = True

    def _on_stop(self) -> None:
        if self.batcher is not None:
            self.batcher.stop()
        if self._listening and hasattr(self.online, "remove_write_listener"):
            self.online.remove_write_listener(self._on_store_write)
            self._listening = False

    # -- plumbing -------------------------------------------------------------

    def _upstream_read_many(self, namespace, entity_ids, policy):
        return self.online.read_many(namespace, entity_ids, policy)

    def _on_store_write(self, namespace: str, entity_id: int) -> None:
        """Write-path invalidation hook (registered on the online store)."""
        if self.cache is not None:
            self.cache.invalidate((self._FEATURE, namespace, entity_id))

    @contextmanager
    def _observe(self, endpoint: str):
        metrics = self.metrics.endpoint(endpoint)
        metrics.requests.inc()
        self.metrics.inflight.inc()
        start = time.monotonic()
        try:
            yield metrics
        except Exception:
            metrics.errors.inc()
            raise
        finally:
            metrics.latency.record(time.monotonic() - start)
            self.metrics.inflight.dec()
            if self.batcher is not None:
                self.metrics.queue_depth.set(self.batcher.queue_depth())

    def _cache_lookup(
        self, key, metrics: EndpointMetrics
    ) -> tuple[bool, CacheEntry | None]:
        """Returns (fresh_hit, entry). ``entry`` may be stale for degradation."""
        if self.cache is None:
            metrics.cache_misses.inc()
            return False, None
        status, entry = self.cache.lookup(key)
        if status is LookupStatus.HIT:
            metrics.cache_hits.inc()
            return True, entry
        metrics.cache_misses.inc()
        return False, entry

    def _degrade(
        self,
        policy: FreshnessPolicy,
        stale_entry: CacheEntry | None,
        metrics: EndpointMetrics,
        state: _Attempt,
    ):
        """Budget exhausted: serve stale, default, or raise — per policy."""
        metrics.degraded.inc()
        if policy is FreshnessPolicy.RAISE:
            raise DeadlineExceededError(
                f"request exhausted its deadline after {state.attempts} "
                f"attempt(s); last error: {state.last_error!r}"
            ) from state.last_error
        if policy is FreshnessPolicy.SERVE_ANYWAY and stale_entry is not None:
            metrics.stale_served.inc()
            return stale_entry.value
        return None  # RETURN_NONE, or SERVE_ANYWAY with nothing cached

    def _read_with_retries(
        self,
        namespace: str,
        entity_id: int,
        policy: FreshnessPolicy,
        state: _Attempt,
        metrics: EndpointMetrics,
    ):
        """One point read: batched if possible, retried, deadline-bounded.

        Raises ``TransientStoreError``/``FutureTimeoutError`` (wrapped into
        ``state.last_error``) only indirectly: on exhaustion the caller
        invokes :meth:`_degrade`. Returns the read value on success.

        ``FreshnessPolicy.RAISE`` requests bypass the batcher: a batched
        ``read_many`` raises for the *whole* group when any key is stale,
        which would fail innocent co-batched requests.
        """
        use_batcher = (
            self.batcher is not None and policy is not FreshnessPolicy.RAISE
        )
        while True:
            remaining = state.remaining()
            if remaining <= 0:
                if state.last_error is None:
                    state.last_error = DeadlineExceededError(
                        f"deadline elapsed before a store read "
                        f"({namespace!r}/{entity_id})"
                    )
                return _EXHAUSTED
            state.attempts += 1
            try:
                if use_batcher:
                    future = self.batcher.submit(namespace, entity_id, policy)
                    try:
                        return future.result(timeout=remaining)
                    except FutureTimeoutError as exc:
                        future.cancel()
                        state.last_error = exc
                        return _EXHAUSTED  # budget gone; no retry possible
                else:
                    return self.online.read(namespace, entity_id, policy)
            except TransientStoreError as exc:
                state.last_error = exc
                if state.attempts > self._retry_policy.max_retries:
                    return _EXHAUSTED
                metrics.retries.inc()
                state.deadline.sleep(
                    self._retry_policy.backoff_for(state.attempts)
                )

    # -- endpoints ------------------------------------------------------------

    def _serve_feature(
        self,
        namespace: str,
        entity_id: int,
        policy: FreshnessPolicy,
        deadline_s: float | None,
        metrics: EndpointMetrics,
    ) -> tuple[object, bool]:
        """Shared point-lookup path; returns ``(value, degraded)``."""
        key = (self._FEATURE, namespace, entity_id)
        fresh, entry = self._cache_lookup(key, metrics)
        if fresh:
            return entry.value, False  # type: ignore[union-attr]
        state = _Attempt(
            deadline=Deadline.after(deadline_s or self.config.default_deadline_s)
        )
        value = self._read_with_retries(namespace, entity_id, policy, state, metrics)
        if value is _EXHAUSTED:
            return self._degrade(policy, entry, metrics, state), True
        if self.cache is not None and value is not None:
            self.cache.put(key, value)
        return value, False

    def get_features(
        self,
        namespace: str,
        entity_id: int,
        policy: FreshnessPolicy = FreshnessPolicy.SERVE_ANYWAY,
        deadline_s: float | None = None,
    ) -> dict[str, object] | None:
        """Point feature lookup: cache, then (batched) read-through."""
        with self._observe("get_features") as metrics:
            value, __ = self._serve_feature(
                namespace, entity_id, policy, deadline_s, metrics
            )
            return value  # type: ignore[return-value]

    def get_features_batch(
        self,
        namespace: str,
        entity_ids: list[int],
        policy: FreshnessPolicy = FreshnessPolicy.SERVE_ANYWAY,
        deadline_s: float | None = None,
    ) -> list[dict[str, object] | None]:
        """Multi-key lookup: cached keys are skipped, the rest read once."""
        with self._observe("get_features_batch") as metrics:
            out: list[object] = [None] * len(entity_ids)
            stale: dict[int, CacheEntry | None] = {}
            missing: list[int] = []  # positions
            for position, entity_id in enumerate(entity_ids):
                key = (self._FEATURE, namespace, entity_id)
                fresh, entry = self._cache_lookup(key, metrics)
                if fresh:
                    out[position] = entry.value  # type: ignore[union-attr]
                else:
                    missing.append(position)
                    stale[position] = entry
            if not missing:
                return out
            state = _Attempt(
                deadline=Deadline.after(
                    deadline_s or self.config.default_deadline_s
                )
            )
            missing_ids = [entity_ids[p] for p in missing]
            values = self._batch_read_with_retries(
                namespace, missing_ids, policy, state, metrics
            )
            if values is _EXHAUSTED:
                for position in missing:
                    out[position] = self._degrade(
                        policy, stale[position], metrics, state
                    )
                return out
            for position, value in zip(missing, values):
                out[position] = value
                if self.cache is not None and value is not None:
                    self.cache.put(
                        (self._FEATURE, namespace, entity_ids[position]), value
                    )
            return out

    def _batch_read_with_retries(self, namespace, entity_ids, policy, state, metrics):
        while True:
            if state.remaining() <= 0:
                return _EXHAUSTED
            state.attempts += 1
            try:
                return self.online.read_many(namespace, entity_ids, policy)
            except TransientStoreError as exc:
                state.last_error = exc
                if state.attempts > self._retry_policy.max_retries:
                    return _EXHAUSTED
                metrics.retries.inc()
                state.deadline.sleep(
                    self._retry_policy.backoff_for(state.attempts)
                )

    def _serve_embeddings(
        self,
        name: str,
        entity_ids: list[int],
        pinned_version: int | None,
        version: int | None,
        metrics: EndpointMetrics,
    ) -> tuple[np.ndarray, int]:
        """Shared embedding-row path; returns ``(rows, served_version)``."""
        if self.embeddings is None:
            raise ValidationError("gateway was built without an EmbeddingStore")
        record = self.embeddings.get(name, version)
        missing: list[int] = []
        rows: dict[int, np.ndarray] = {}
        for entity_id in entity_ids:
            key = (self._EMBEDDING, name, record.version, entity_id)
            fresh, entry = self._cache_lookup(key, metrics)
            if fresh:
                rows[entity_id] = entry.value  # type: ignore[assignment]
            else:
                missing.append(entity_id)
        if missing:
            fetched = self.embeddings.vectors_for_model(
                name,
                pinned_version if pinned_version is not None else record.version,
                np.asarray(missing, dtype=np.int64),
                serve_version=record.version,
            )
            for entity_id, row in zip(missing, fetched):
                rows[entity_id] = row
                if self.cache is not None:
                    self.cache.put(
                        (self._EMBEDDING, name, record.version, entity_id), row
                    )
        elif pinned_version is not None and not self.embeddings.is_compatible(
            name, pinned_version, record.version
        ):
            # All rows were cached, but the contract still applies.
            self.embeddings.vectors_for_model(
                name,
                pinned_version,
                np.asarray([], dtype=np.int64),
                serve_version=record.version,
            )
        stacked = (
            np.stack([rows[e] for e in entity_ids])
            if entity_ids
            else np.empty((0, record.embedding.dim))
        )
        return stacked, record.version

    def get_embeddings(
        self,
        name: str,
        entity_ids: list[int],
        pinned_version: int | None = None,
        version: int | None = None,
    ) -> np.ndarray:
        """Serve embedding rows, enforcing the compatibility contract.

        With ``pinned_version`` set, behaves like
        :meth:`~repro.core.embedding_store.EmbeddingStore.vectors_for_model`
        (latest-compatible serving); rows are cached per
        ``(name, served_version, entity_id)``. Embedding versions are
        immutable, so cached rows never need invalidation.
        """
        with self._observe("get_embeddings") as metrics:
            rows, __ = self._serve_embeddings(
                name, entity_ids, pinned_version, version, metrics
            )
            return rows

    def nearest_neighbors(
        self,
        name: str,
        query: np.ndarray,
        k: int = 10,
        version: int | None = None,
        index_kind: str = "brute",
    ):
        """k-NN over a stored embedding version (lazily indexed)."""
        with self._observe("nearest_neighbors"):
            if self.embeddings is None:
                raise ValidationError("gateway was built without an EmbeddingStore")
            return self.embeddings.search(
                name, query, k=k, version=version, index_kind=index_kind
            )

    def search_neighbors(
        self,
        name: str,
        query: np.ndarray,
        k: int = 10,
        version: int | None = None,
        deadline_s: float | None = None,
    ):
        """Top-k over the live vector serving plane (``repro.vecserve``).

        Unlike :meth:`nearest_neighbors` (a lazily indexed scan of a
        sealed store version), this endpoint hits the attached
        :class:`~repro.vecserve.service.VectorService`: sharded
        scatter-gather, delta-fresh upserts, blue/green rebuilds and
        sampled recall monitoring — and, when the service was built with
        ``batch_queries=True``, concurrent callers coalesce into
        micro-batched shard fan-outs. Returns a
        :class:`~repro.vecserve.shards.ShardedSearchResult` whose
        ``partial`` flag is the degradation signal (mirrored into the
        endpoint's ``degraded`` counter).
        """
        with self._observe("search_neighbors") as metrics:
            if self.vectors is None:
                raise ValidationError("gateway was built without a VectorService")
            result = self.vectors.search(
                name, query, k=k, version=version, deadline_s=deadline_s
            )
            if getattr(result, "partial", False):
                metrics.degraded.inc()
            return result

    def search_neighbors_batch(
        self,
        name: str,
        queries: np.ndarray,
        k: int = 10,
        version: int | None = None,
        deadline_s: float | None = None,
    ):
        """Explicitly batched :meth:`search_neighbors` (one fan-out)."""
        with self._observe("search_neighbors") as metrics:
            if self.vectors is None:
                raise ValidationError("gateway was built without a VectorService")
            results = self.vectors.search_batch(
                name, queries, k=k, version=version, deadline_s=deadline_s
            )
            if any(getattr(r, "partial", False) for r in results):
                metrics.degraded.inc()
            return results

    def enrich(
        self,
        namespace: str,
        entity_id: int,
        embedding_name: str,
        pinned_version: int | None = None,
        policy: FreshnessPolicy = FreshnessPolicy.SERVE_ANYWAY,
        deadline_s: float | None = None,
    ) -> EnrichResult:
        """The fused endpoint: features + embedding row, one round trip.

        This is the request shape a deployed ranking model issues per
        candidate: tabular features from the online store joined with the
        entity's pinned-version-compatible embedding. Cache and
        degradation metrics for the fused path are attributed to the
        ``enrich`` endpoint, not to ``get_features``/``get_embeddings``.
        """
        with self._observe("enrich") as metrics:
            features, degraded = self._serve_feature(
                namespace, entity_id, policy, deadline_s, metrics
            )
            embedding_row: np.ndarray | None = None
            embedding_version = 0
            if self.embeddings is not None:
                record = self.embeddings.get(embedding_name)
                embedding_version = record.version
                if 0 <= entity_id < record.embedding.n:
                    rows, embedding_version = self._serve_embeddings(
                        embedding_name,
                        [entity_id],
                        pinned_version,
                        None,
                        metrics,
                    )
                    embedding_row = rows[0]
            return EnrichResult(
                entity_id=entity_id,
                features=features,  # type: ignore[arg-type]
                embedding=embedding_row,
                embedding_name=embedding_name,
                embedding_version=embedding_version,
                degraded=degraded,
            )

    # -- write path -----------------------------------------------------------

    def write_features(
        self,
        namespace: str,
        entity_id: int,
        values: dict[str, object],
        event_time: float,
    ) -> None:
        """Write through to the store; the write listener invalidates the
        cached copy so no reader can observe the overwritten value."""
        with self._observe("write_features"):
            self.online.write(namespace, entity_id, values, event_time)
            if not self._listening and self.cache is not None:
                # Store without listener support: invalidate directly.
                self.cache.invalidate((self._FEATURE, namespace, entity_id))

    # -- introspection --------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Metrics + cache + batcher state in one dict (dashboard food)."""
        snap = self.metrics.snapshot()
        if self.cache is not None:
            snap["cache"] = self.cache.stats()
        if self.batcher is not None:
            snap["batch"] = {
                "batches": self.batcher.batches.value,
                "batched_requests": self.batcher.batched_requests.value,
                "mean_batch_size": self.batcher.mean_batch_size(),
            }
        return snap


class _Exhausted:
    """Sentinel: the retry loop ran out of budget (distinct from None)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<budget exhausted>"


_EXHAUSTED = _Exhausted()
