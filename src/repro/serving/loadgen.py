"""Closed-loop load generation for the serving gateway.

A *closed-loop* generator models ``n_clients`` synchronous callers (the
deployed model replicas of paper §2.2.2): each client issues its next
request only after the previous one returns, so offered load adapts to
observed latency exactly the way a fleet of blocking RPC clients does.
Keys are drawn from a Zipfian popularity distribution
(:func:`repro.datagen.workloads.generate_zipfian_keys`) — the skew that
makes the gateway's hot-key cache tier earn its keep.

Latencies are measured per request with ``time.perf_counter`` and merged
across clients into exact (non-bucketed) percentiles, so benchmark
numbers are independent of the gateway's own histogram resolution.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.datagen.workloads import ZipfianWorkloadConfig, generate_zipfian_keys
from repro.errors import ValidationError


@dataclass(frozen=True)
class LoadConfig:
    """Shape of one closed-loop run."""

    n_clients: int = 4
    requests_per_client: int = 200
    n_keys: int = 1000
    zipf_skew: float = 1.0
    seed: int = 0

    def validate(self) -> None:
        if self.n_clients < 1:
            raise ValidationError(f"n_clients must be >= 1 ({self.n_clients=})")
        if self.requests_per_client < 1:
            raise ValidationError(
                f"requests_per_client must be >= 1 ({self.requests_per_client=})"
            )


@dataclass(frozen=True)
class LoadReport:
    """Merged results of a closed-loop run."""

    total_requests: int
    errors: int
    duration_s: float
    qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float

    def row(self, label: str) -> list[object]:
        """A table row for the benchmark report fixture."""
        return [
            label,
            f"{self.qps:,.0f}",
            self.p50_ms,
            self.p99_ms,
            self.errors,
        ]


def run_closed_loop(
    request_fn: Callable[[int], object],
    config: LoadConfig,
) -> LoadReport:
    """Drive ``request_fn(key)`` from ``n_clients`` threads; merge stats.

    ``request_fn`` is typically a bound gateway endpoint, e.g.
    ``lambda key: gateway.get_features("ns", key)``. Exceptions are
    counted as errors, not propagated — a load test should survive the
    fault-injection runs it is pointed at.
    """
    config.validate()
    per_client_latencies: list[list[float]] = [[] for _ in range(config.n_clients)]
    per_client_errors = [0] * config.n_clients
    key_streams = [
        generate_zipfian_keys(
            ZipfianWorkloadConfig(
                n_keys=config.n_keys,
                n_requests=config.requests_per_client,
                skew=config.zipf_skew,
            ),
            seed=config.seed + client,
        )
        for client in range(config.n_clients)
    ]
    barrier = threading.Barrier(config.n_clients + 1)

    def client_loop(client: int) -> None:
        latencies = per_client_latencies[client]
        barrier.wait()
        for key in key_streams[client]:
            start = time.perf_counter()
            try:
                request_fn(int(key))
            except Exception:  # noqa: BLE001 - counted, see docstring
                per_client_errors[client] += 1
            latencies.append(time.perf_counter() - start)

    threads = [
        threading.Thread(target=client_loop, args=(client,), daemon=True)
        for client in range(config.n_clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started

    merged = np.array([lat for client in per_client_latencies for lat in client])
    total = len(merged)
    return LoadReport(
        total_requests=total,
        errors=sum(per_client_errors),
        duration_s=duration,
        qps=total / duration if duration > 0 else 0.0,
        p50_ms=float(np.percentile(merged, 50)) * 1e3,
        p95_ms=float(np.percentile(merged, 95)) * 1e3,
        p99_ms=float(np.percentile(merged, 99)) * 1e3,
        mean_ms=float(merged.mean()) * 1e3,
    )
