"""Fault injection for the online store: latency, timeouts, blips.

The in-process :class:`~repro.storage.online.OnlineStore` is a stand-in
for a remote serving tier (Redis, Cassandra, DynamoDB — paper §2.2.2's
"in-memory DBMS"). Real remote tiers have two properties the plain dict
lacks and the gateway must be engineered against:

* **a per-call network round trip** — simulated as ``base_latency_s``
  per store call plus ``per_key_latency_s`` per key. Note the shape: a
  batched ``read_many`` of 64 keys pays the round trip *once*, which is
  exactly the economics that make micro-batching win.
* **transient failures** — with probability ``timeout_rate`` a call
  times out and with ``error_rate`` it fails fast; both raise
  :class:`~repro.errors.TransientStoreError` so the gateway's
  retry/degradation machinery engages.

The policy dataclass and the seeded roll-and-raise engine now live in
:mod:`repro.runtime.resilience` (they are shared with the vector plane's
per-shard injector); ``FaultPolicy`` is re-exported here so existing
``repro.serving.faults.FaultPolicy`` imports keep working.
"""

from __future__ import annotations

# Backward-compatible re-export: the canonical home is the runtime layer
# (import from repro.runtime.resilience in new code).
from repro.runtime.resilience import (  # noqa: F401 - re-exported shim
    FaultInjector,
    FaultPolicy,
)
from repro.storage.online import FreshnessPolicy, OnlineStore


class FaultInjectingOnlineStore:
    """Wrap an :class:`OnlineStore`, injecting faults on the read path.

    Everything not intercepted (writes, namespace admin, counters) is
    delegated to the wrapped store untouched, so the wrapper is a drop-in
    replacement anywhere an ``OnlineStore`` is expected.
    """

    def __init__(self, store: OnlineStore, policy: FaultPolicy) -> None:
        self._store = store
        self._injector = FaultInjector(policy)
        self.injected_timeouts = self._injector.injected_timeouts
        self.injected_errors = self._injector.injected_errors
        self.calls = self._injector.calls

    def __getattr__(self, name: str):
        return getattr(self._store, name)

    @property
    def policy(self) -> FaultPolicy:
        return self._injector.policy

    @policy.setter
    def policy(self, policy: FaultPolicy) -> None:
        """Swap the live policy (tests flip a healthy store to 'dark')."""
        policy.validate()
        self._injector.policy = policy

    @property
    def wrapped(self) -> OnlineStore:
        return self._store

    # -- intercepted read path ------------------------------------------------

    def read(
        self,
        namespace: str,
        entity_id: int,
        policy: FreshnessPolicy = FreshnessPolicy.SERVE_ANYWAY,
    ) -> dict[str, object] | None:
        self._injector.inject(n_keys=1)
        return self._store.read(namespace, entity_id, policy)

    def read_many(
        self,
        namespace: str,
        entity_ids: list[int],
        policy: FreshnessPolicy = FreshnessPolicy.SERVE_ANYWAY,
    ) -> list[dict[str, object] | None]:
        self._injector.inject(n_keys=len(entity_ids))
        return self._store.read_many(namespace, entity_ids, policy)
