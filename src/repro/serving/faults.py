"""Fault injection for the online store: latency, timeouts, blips.

The in-process :class:`~repro.storage.online.OnlineStore` is a stand-in
for a remote serving tier (Redis, Cassandra, DynamoDB — paper §2.2.2's
"in-memory DBMS"). Real remote tiers have two properties the plain dict
lacks and the gateway must be engineered against:

* **a per-call network round trip** — simulated as ``base_latency_s``
  per store call plus ``per_key_latency_s`` per key. Note the shape: a
  batched ``read_many`` of 64 keys pays the round trip *once*, which is
  exactly the economics that make micro-batching win.
* **transient failures** — with probability ``timeout_rate`` a call
  times out and with ``error_rate`` it fails fast; both raise
  :class:`~repro.errors.TransientStoreError` so the gateway's
  retry/degradation machinery engages.

Fault decisions come from a seeded private RNG, so tests are
deterministic; counters record what was injected for assertions.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from repro.errors import TransientStoreError, ValidationError
from repro.serving.metrics import Counter
from repro.storage.online import FreshnessPolicy, OnlineStore


@dataclass(frozen=True)
class FaultPolicy:
    """What the wrapper injects, and how often."""

    timeout_rate: float = 0.0
    error_rate: float = 0.0
    base_latency_s: float = 0.0
    per_key_latency_s: float = 0.0
    timeout_latency_s: float = 0.0  # time burned before a timeout surfaces
    seed: int | None = None

    def validate(self) -> None:
        for name in ("timeout_rate", "error_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1] ({rate=})")
        for name in ("base_latency_s", "per_key_latency_s", "timeout_latency_s"):
            value = getattr(self, name)
            if value < 0:
                raise ValidationError(f"{name} must be >= 0 ({value=})")


class FaultInjectingOnlineStore:
    """Wrap an :class:`OnlineStore`, injecting faults on the read path.

    Everything not intercepted (writes, namespace admin, counters) is
    delegated to the wrapped store untouched, so the wrapper is a drop-in
    replacement anywhere an ``OnlineStore`` is expected.
    """

    def __init__(self, store: OnlineStore, policy: FaultPolicy) -> None:
        policy.validate()
        self._store = store
        self.policy = policy
        self._rng = random.Random(policy.seed)
        self._rng_lock = threading.Lock()
        self.injected_timeouts = Counter()
        self.injected_errors = Counter()
        self.calls = Counter()

    def __getattr__(self, name: str):
        return getattr(self._store, name)

    @property
    def wrapped(self) -> OnlineStore:
        return self._store

    def _roll(self) -> float:
        with self._rng_lock:
            return self._rng.random()

    def _simulate(self, n_keys: int) -> None:
        self.calls.inc()
        policy = self.policy
        latency = policy.base_latency_s + policy.per_key_latency_s * n_keys
        if latency > 0:
            time.sleep(latency)
        roll = self._roll()
        if roll < policy.timeout_rate:
            self.injected_timeouts.inc()
            if policy.timeout_latency_s > 0:
                time.sleep(policy.timeout_latency_s)
            raise TransientStoreError(
                f"injected timeout (rate={policy.timeout_rate})"
            )
        if roll < policy.timeout_rate + policy.error_rate:
            self.injected_errors.inc()
            raise TransientStoreError(f"injected error (rate={policy.error_rate})")

    # -- intercepted read path ------------------------------------------------

    def read(
        self,
        namespace: str,
        entity_id: int,
        policy: FreshnessPolicy = FreshnessPolicy.SERVE_ANYWAY,
    ) -> dict[str, object] | None:
        self._simulate(n_keys=1)
        return self._store.read(namespace, entity_id, policy)

    def read_many(
        self,
        namespace: str,
        entity_ids: list[int],
        policy: FreshnessPolicy = FreshnessPolicy.SERVE_ANYWAY,
    ) -> list[dict[str, object] | None]:
        self._simulate(n_keys=len(entity_ids))
        return self._store.read_many(namespace, entity_ids, policy)
