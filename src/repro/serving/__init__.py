"""Online serving tier: the concurrent gateway over both stores.

The paper's product surface (§2.2.2, §3) is low-latency serving of
features *and* embeddings to deployed models. This package is that tier:

* :mod:`repro.serving.gateway` — the :class:`ServingGateway` request API
  (``get_features`` / ``get_embeddings`` / ``nearest_neighbors`` / fused
  ``enrich``) with deadlines, retries and graceful degradation;
* :mod:`repro.serving.cache` — read-through LRU+TTL cache with a
  Zipfian-aware hot-key tier and write-path invalidation;
* :mod:`repro.serving.batcher` — micro-batching of concurrent point
  lookups into batched store reads;
* :mod:`repro.serving.faults` — fault-injecting store wrapper (latency,
  timeouts, transient errors) the robustness machinery is tested against;
* :mod:`repro.serving.metrics` — latency histograms, counters, gauges;
* :mod:`repro.serving.loadgen` — closed-loop Zipfian load generation.
"""

from repro.serving.batcher import MicroBatcher

# Re-exported so higher planes (repro.net) can name freshness semantics
# without importing the storage layer directly.
from repro.storage.online import FreshnessPolicy
from repro.serving.cache import (
    CacheEntry,
    CacheStats,
    LookupStatus,
    ReadThroughCache,
)
from repro.serving.faults import FaultInjectingOnlineStore, FaultPolicy
from repro.serving.gateway import EnrichResult, GatewayConfig, ServingGateway
from repro.serving.loadgen import LoadConfig, LoadReport, run_closed_loop
from repro.serving.metrics import (
    Counter,
    EndpointMetrics,
    Gauge,
    LatencyHistogram,
    ServingMetrics,
)

__all__ = [
    "CacheEntry",
    "CacheStats",
    "Counter",
    "EndpointMetrics",
    "EnrichResult",
    "FaultInjectingOnlineStore",
    "FaultPolicy",
    "FreshnessPolicy",
    "Gauge",
    "GatewayConfig",
    "LatencyHistogram",
    "LoadConfig",
    "LoadReport",
    "LookupStatus",
    "MicroBatcher",
    "ReadThroughCache",
    "ServingGateway",
    "ServingMetrics",
    "run_closed_loop",
]
