"""Streaming feature ingestion.

Paper section 2.2.1: "For streaming features, users provide aggregation
functions that are applied on the raw streaming features. The aggregated
features are persisted to the online store and logged to the offline store."

* :mod:`repro.streaming.windows` — incremental per-entity aggregators
  (tumbling windows, sliding windows, exponentially weighted averages).
* :mod:`repro.streaming.processor` — the ingestion loop that applies the
  aggregators to an event stream and fans results out to both stores.
"""

from repro.streaming.processor import (
    ProcessorStats,
    StreamFeature,
    StreamProcessor,
)
from repro.streaming.pump import StreamPump
from repro.streaming.windows import (
    EwmaAggregator,
    SlidingWindowAggregator,
    StreamAggregator,
    TumblingWindowAggregator,
)

__all__ = [
    "EwmaAggregator",
    "ProcessorStats",
    "SlidingWindowAggregator",
    "StreamAggregator",
    "StreamFeature",
    "StreamPump",
    "StreamProcessor",
    "TumblingWindowAggregator",
]
