"""Stream ingestion: aggregate events and fan out to both stores.

The processor realizes the paper's streaming path (section 2.2.1): raw
events flow through user-provided aggregators; on a configurable emit
cadence the current aggregates are **persisted to the online store** and
**logged to the offline store**, so batch training sets and online serving
see the same feature values.

Emit efficiency
---------------
An emit only writes entities that received at least one event since the
previous emit (the *dirty set*) — re-writing every entity ever seen turns
each emit into an O(all entities) scan and floods the stores with
duplicate rows. Pass ``emit_all=True`` to restore the rewrite-everything
behaviour; that is the right call when aggregates decay *between* events
(e.g. a sliding window emptying out with no new traffic) and the online
value must track the decay even for quiet entities. Skipped writes are
reported in :attr:`ProcessorStats.skipped_writes`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.streams import StreamEvent
from repro.errors import ValidationError
from repro.storage.offline import OfflineStore, TableSchema
from repro.storage.online import OnlineStore
from repro.streaming.windows import StreamAggregator


@dataclass(frozen=True)
class StreamFeature:
    """One named streaming feature backed by an aggregator."""

    name: str
    aggregator: StreamAggregator


@dataclass(frozen=True)
class ProcessorStats:
    """Summary of a processing run.

    ``skipped_writes`` counts entity-emits avoided by dirty tracking:
    entities that were seen before but received no event during the emit
    interval, and therefore were not re-written (always 0 under
    ``emit_all=True``).
    """

    events_processed: int
    emits: int
    online_writes: int
    offline_rows: int
    skipped_writes: int = 0


class StreamProcessor:
    """Applies aggregators to an event stream and persists the results.

    Emission happens every ``emit_interval`` seconds of *event time*: the
    current value of each feature is written to the online namespace (one
    batched :meth:`~repro.storage.online.OnlineStore.write_many` per emit)
    and appended to the offline log table — for the entities touched since
    the last emit, or for every entity ever seen if ``emit_all=True``.
    """

    def __init__(
        self,
        features: list[StreamFeature],
        online: OnlineStore,
        offline: OfflineStore,
        namespace: str,
        log_table: str,
        emit_interval: float = 60.0,
        ttl: float | None = None,
        emit_all: bool = False,
    ) -> None:
        if not features:
            raise ValidationError("processor needs at least one stream feature")
        names = [f.name for f in features]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate stream feature names: {names}")
        if emit_interval <= 0:
            raise ValidationError(f"emit_interval must be positive ({emit_interval=})")

        self.features = list(features)
        self.online = online
        self.offline = offline
        self.namespace = namespace
        self.log_table = log_table
        self.emit_interval = emit_interval
        self.emit_all = emit_all

        if namespace not in self.online.namespaces():
            self.online.create_namespace(namespace, ttl=ttl)
        if not self.offline.has_table(log_table):
            self.offline.create_table(
                log_table,
                TableSchema(columns={f.name: "float" for f in self.features}),
            )
        self._seen_entities: set[int] = set()
        self._dirty_entities: set[int] = set()
        self._next_emit: float | None = None

    def process(self, events: list[StreamEvent] | object) -> ProcessorStats:
        """Consume an event-time-ordered stream, emitting on the interval.

        A final emit is issued at the last event's timestamp so the stores
        reflect the stream's end state.
        """
        processed = 0
        emits = 0
        online_writes = 0
        offline_rows = 0
        skipped = 0
        last_ts: float | None = None

        for event in events:  # type: ignore[union-attr]
            if self._next_emit is None:
                self._next_emit = event.timestamp + self.emit_interval
            while event.timestamp >= self._next_emit:
                w, r, s = self._emit(self._next_emit)
                emits += 1
                online_writes += w
                offline_rows += r
                skipped += s
                self._next_emit += self.emit_interval
            for feature in self.features:
                feature.aggregator.update(event)
            self._seen_entities.add(event.entity_id)
            self._dirty_entities.add(event.entity_id)
            processed += 1
            last_ts = event.timestamp

        if last_ts is not None:
            w, r, s = self._emit(last_ts)
            emits += 1
            online_writes += w
            offline_rows += r
            skipped += s

        return ProcessorStats(
            events_processed=processed,
            emits=emits,
            online_writes=online_writes,
            offline_rows=offline_rows,
            skipped_writes=skipped,
        )

    def _emit(self, now: float) -> tuple[int, int, int]:
        """Write current aggregates for dirty (or all) entities.

        Returns ``(online_writes, offline_rows, skipped_writes)``. The
        online half goes through one batched ``write_many`` call — the
        store lock is taken once per emit, not once per entity.
        """
        if self.emit_all:
            entities = sorted(self._seen_entities)
        else:
            entities = sorted(self._dirty_entities)
        skipped = len(self._seen_entities) - len(entities)

        online_rows: list[tuple[int, dict[str, object], float]] = []
        rows: list[dict[str, object]] = []
        for entity_id in entities:
            values: dict[str, object] = {}
            any_value = False
            for feature in self.features:
                value = feature.aggregator.value(entity_id, now)
                values[feature.name] = value
                any_value = any_value or value is not None
            if not any_value:
                continue
            online_rows.append((entity_id, values, now))
            rows.append({"entity_id": entity_id, "timestamp": now, **values})
        online_writes = (
            self.online.write_many(self.namespace, online_rows) if online_rows else 0
        )
        if rows:
            self.offline.table(self.log_table).append(rows)
        self._dirty_entities.clear()
        return online_writes, len(rows), skipped
