"""Stream ingestion: aggregate events and fan out to both stores.

The processor realizes the paper's streaming path (section 2.2.1): raw
events flow through user-provided aggregators; on a configurable emit
cadence the current aggregates are **persisted to the online store** and
**logged to the offline store**, so batch training sets and online serving
see the same feature values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.streams import StreamEvent
from repro.errors import ValidationError
from repro.storage.offline import OfflineStore, TableSchema
from repro.storage.online import OnlineStore
from repro.streaming.windows import StreamAggregator


@dataclass(frozen=True)
class StreamFeature:
    """One named streaming feature backed by an aggregator."""

    name: str
    aggregator: StreamAggregator


@dataclass(frozen=True)
class ProcessorStats:
    """Summary of a processing run."""

    events_processed: int
    emits: int
    online_writes: int
    offline_rows: int


class StreamProcessor:
    """Applies aggregators to an event stream and persists the results.

    Emission happens every ``emit_interval`` seconds of *event time*: for
    every entity seen since the start, the current value of each feature is
    written to the online namespace and appended to the offline log table.
    """

    def __init__(
        self,
        features: list[StreamFeature],
        online: OnlineStore,
        offline: OfflineStore,
        namespace: str,
        log_table: str,
        emit_interval: float = 60.0,
        ttl: float | None = None,
    ) -> None:
        if not features:
            raise ValidationError("processor needs at least one stream feature")
        names = [f.name for f in features]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate stream feature names: {names}")
        if emit_interval <= 0:
            raise ValidationError(f"emit_interval must be positive ({emit_interval=})")

        self.features = list(features)
        self.online = online
        self.offline = offline
        self.namespace = namespace
        self.log_table = log_table
        self.emit_interval = emit_interval

        if namespace not in self.online.namespaces():
            self.online.create_namespace(namespace, ttl=ttl)
        if not self.offline.has_table(log_table):
            self.offline.create_table(
                log_table,
                TableSchema(columns={f.name: "float" for f in self.features}),
            )
        self._seen_entities: set[int] = set()
        self._next_emit: float | None = None

    def process(self, events: list[StreamEvent] | object) -> ProcessorStats:
        """Consume an event-time-ordered stream, emitting on the interval.

        A final emit is issued at the last event's timestamp so the stores
        reflect the stream's end state.
        """
        processed = 0
        emits = 0
        online_writes = 0
        offline_rows = 0
        last_ts: float | None = None

        for event in events:  # type: ignore[union-attr]
            if self._next_emit is None:
                self._next_emit = event.timestamp + self.emit_interval
            while event.timestamp >= self._next_emit:
                w, r = self._emit(self._next_emit)
                emits += 1
                online_writes += w
                offline_rows += r
                self._next_emit += self.emit_interval
            for feature in self.features:
                feature.aggregator.update(event)
            self._seen_entities.add(event.entity_id)
            processed += 1
            last_ts = event.timestamp

        if last_ts is not None:
            w, r = self._emit(last_ts)
            emits += 1
            online_writes += w
            offline_rows += r

        return ProcessorStats(
            events_processed=processed,
            emits=emits,
            online_writes=online_writes,
            offline_rows=offline_rows,
        )

    def _emit(self, now: float) -> tuple[int, int]:
        """Write current aggregates for every seen entity; return (online, offline) counts."""
        online_writes = 0
        rows: list[dict[str, object]] = []
        for entity_id in sorted(self._seen_entities):
            values: dict[str, object] = {}
            any_value = False
            for feature in self.features:
                value = feature.aggregator.value(entity_id, now)
                values[feature.name] = value
                any_value = any_value or value is not None
            if not any_value:
                continue
            self.online.write(self.namespace, entity_id, values, event_time=now)
            online_writes += 1
            rows.append({"entity_id": entity_id, "timestamp": now, **values})
        if rows:
            self.offline.table(self.log_table).append(rows)
        return online_writes, len(rows)
