"""Incremental per-entity stream aggregators.

Each aggregator consumes events one at a time (event-time ordered per
entity) and can report the current aggregate for any entity. They are the
streaming counterparts of the batch :class:`repro.core.transforms.WindowAggregate`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque

import numpy as np

from repro.datagen.streams import StreamEvent
from repro.errors import ValidationError

_SUPPORTED = {"mean", "sum", "count", "min", "max"}


def _aggregate(agg: str, values: list[float]) -> float | None:
    if not values:
        return 0.0 if agg == "count" else None
    array = np.asarray(values)
    if agg == "mean":
        return float(array.mean())
    if agg == "sum":
        return float(array.sum())
    if agg == "count":
        return float(len(array))
    if agg == "min":
        return float(array.min())
    return float(array.max())


class StreamAggregator(ABC):
    """Consumes events and exposes a per-entity aggregate value."""

    @abstractmethod
    def update(self, event: StreamEvent) -> None:
        """Fold one event into the aggregate state."""

    @abstractmethod
    def value(self, entity_id: int, now: float) -> float | None:
        """Current aggregate for an entity as of ``now`` (None = no data)."""


class TumblingWindowAggregator(StreamAggregator):
    """Fixed, non-overlapping windows of ``width`` seconds.

    ``value`` reports the aggregate of the most recent *closed* window at or
    before ``now`` — the standard semantics for materialized tumbling
    aggregates (the open window is still accumulating).
    """

    def __init__(self, agg: str, width: float) -> None:
        if agg not in _SUPPORTED:
            raise ValidationError(f"unsupported agg {agg!r}; allowed {sorted(_SUPPORTED)}")
        if width <= 0:
            raise ValidationError(f"width must be positive ({width=})")
        self.agg = agg
        self.width = width
        self._windows: dict[int, dict[int, list[float]]] = {}

    def _window_index(self, timestamp: float) -> int:
        return int(timestamp // self.width)

    def update(self, event: StreamEvent) -> None:
        windows = self._windows.setdefault(event.entity_id, {})
        windows.setdefault(self._window_index(event.timestamp), []).append(event.value)

    def value(self, entity_id: int, now: float) -> float | None:
        windows = self._windows.get(entity_id)
        if not windows:
            return None
        open_index = self._window_index(now)
        closed = [i for i in windows if i < open_index]
        if not closed:
            return None
        return _aggregate(self.agg, windows[max(closed)])

    def open_window_value(self, entity_id: int, now: float) -> float | None:
        """Aggregate of the still-open window (for eager serving)."""
        windows = self._windows.get(entity_id)
        if not windows:
            return None
        values = windows.get(self._window_index(now))
        if values is None:
            return None
        return _aggregate(self.agg, values)


class SlidingWindowAggregator(StreamAggregator):
    """Trailing window of ``width`` seconds ending at query time.

    Events older than ``now - width`` are evicted lazily at query/update
    time; memory per entity is bounded by the event rate times the width.
    """

    def __init__(self, agg: str, width: float) -> None:
        if agg not in _SUPPORTED:
            raise ValidationError(f"unsupported agg {agg!r}; allowed {sorted(_SUPPORTED)}")
        if width <= 0:
            raise ValidationError(f"width must be positive ({width=})")
        self.agg = agg
        self.width = width
        self._events: dict[int, deque[tuple[float, float]]] = {}

    def update(self, event: StreamEvent) -> None:
        queue = self._events.setdefault(event.entity_id, deque())
        queue.append((event.timestamp, event.value))
        self._evict(queue, event.timestamp)

    def _evict(self, queue: deque[tuple[float, float]], now: float) -> None:
        lo = now - self.width
        while queue and queue[0][0] <= lo:
            queue.popleft()

    def value(self, entity_id: int, now: float) -> float | None:
        queue = self._events.get(entity_id)
        if queue is None:
            return None
        self._evict(queue, now)
        values = [v for ts, v in queue if ts <= now]
        if not values:
            return 0.0 if self.agg == "count" else None
        return _aggregate(self.agg, values)


class EwmaAggregator(StreamAggregator):
    """Exponentially weighted moving average with time-based decay.

    The weight of past state decays as ``exp(-dt / half_life * ln 2)``, so a
    value observed one half-life ago contributes half as much as a current
    one. This is the constant-memory aggregate industrial stores favour for
    high-rate streams.
    """

    def __init__(self, half_life: float) -> None:
        if half_life <= 0:
            raise ValidationError(f"half_life must be positive ({half_life=})")
        self.half_life = half_life
        self._state: dict[int, tuple[float, float]] = {}  # entity -> (ts, ewma)

    def update(self, event: StreamEvent) -> None:
        previous = self._state.get(event.entity_id)
        if previous is None:
            self._state[event.entity_id] = (event.timestamp, event.value)
            return
        last_ts, last_value = previous
        dt = max(0.0, event.timestamp - last_ts)
        decay = float(np.exp(-dt / self.half_life * np.log(2.0)))
        blended = decay * last_value + (1.0 - decay) * event.value
        self._state[event.entity_id] = (event.timestamp, blended)

    def value(self, entity_id: int, now: float) -> float | None:
        state = self._state.get(entity_id)
        return None if state is None else state[1]
