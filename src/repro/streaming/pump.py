"""StreamPump: queue-fed background ingestion on the runtime kernel.

The synchronous :class:`~repro.streaming.processor.StreamProcessor` is
hand-cranked — the caller blocks while ``process()`` runs. Production
ingestion decouples producers from the aggregation loop with a queue; the
pump is that decoupling as a :class:`repro.runtime.Service`: producers
:meth:`~StreamPump.submit` event batches and return immediately, one
owned worker thread drains the queue in chunks and drives the processor.

Semantics note: the processor issues a *final emit at the last event's
timestamp of each ``process()`` call*, so chunked background processing
can emit more often than one monolithic call on the same stream (extra
emits at chunk boundaries). Aggregator **state** is identical — the online
store's last-write-wins rule makes the end state the same; only the
offline log may carry extra intermediate rows. Callers that need
byte-identical offline logs should keep using the synchronous processor
(or the bus's :class:`~repro.bus.sinks.AggregatingSink`, which buffers
until an explicit flush).

``stop()`` drains every batch already queued before the worker exits —
submitted work is never dropped by shutdown.
"""

from __future__ import annotations

import queue
import threading

from repro.datagen.streams import StreamEvent
from repro.errors import ValidationError
from repro.runtime import Counter, Service, await_condition
from repro.streaming.processor import ProcessorStats, StreamProcessor

_STOP = object()


class StreamPump(Service):
    """Background ingestion: submit event batches, a worker processes them.

    The pump owns the processor exclusively once started. Batches are
    processed in submission order on a single worker thread (preserving
    the event-time ordering contract as long as producers submit ordered
    batches in order). Construct-then-:meth:`start` — or let a
    :class:`~repro.runtime.ServiceGroup` start it.
    """

    def __init__(
        self,
        processor: StreamProcessor,
        chunk_size: int = 1024,
        name: str | None = None,
    ) -> None:
        if chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1 ({chunk_size=})")
        super().__init__(name=name or f"stream-pump:{processor.namespace}")
        self.processor = processor
        self.chunk_size = chunk_size
        self._queue: queue.Queue = queue.Queue()
        self._stats_lock = threading.Lock()
        self._stats = ProcessorStats(0, 0, 0, 0, 0)
        self._pending = 0  # batches submitted but not yet fully processed
        self.events_submitted = Counter()
        self.batches_processed = Counter()

    # -- lifecycle ------------------------------------------------------------

    def _on_start(self) -> None:
        self._spawn(self._loop, name=f"{self.name}-loop")

    def _on_stop(self) -> None:
        self._queue.put(_STOP)  # behind any queued batches: they drain first
        self._join_workers()

    # -- producer side --------------------------------------------------------

    def submit(self, events: list[StreamEvent]) -> int:
        """Enqueue one event batch for background processing.

        Check + enqueue happen under the lifecycle lock, so a batch
        either precedes the stop sentinel (drained before the worker
        exits) or is rejected — submitted work is never silently dropped
        by a racing ``stop()``.
        """
        batch = list(events)
        with self._state_lock:
            self._check_running("submit events")
            if batch:
                with self._stats_lock:
                    self._pending += 1  # before the put: `drained` never lies
                self._queue.put(batch)
                self.events_submitted.inc(len(batch))
        return len(batch)

    def depth(self) -> int:
        """Batches queued but not yet picked up by the worker."""
        return self._queue.qsize()

    @property
    def drained(self) -> bool:
        """True when every submitted batch has been fully processed."""
        with self._stats_lock:
            return self._pending == 0

    def wait_until_drained(self, timeout_s: float = 5.0) -> bool:
        return await_condition(lambda: self.drained, timeout_s=timeout_s)

    @property
    def stats(self) -> ProcessorStats:
        """Accumulated processor stats across every background chunk."""
        with self._stats_lock:
            return self._stats

    def health(self) -> dict[str, object]:
        record = super().health()
        record["queue_depth"] = self.depth()
        record["events_submitted"] = self.events_submitted.value
        record["events_processed"] = self.stats.events_processed
        return record

    # -- worker side ----------------------------------------------------------

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            chunk: list[StreamEvent] = list(item)
            n_batches = 1
            stop_after = False
            # Coalesce already-queued batches up to the chunk budget —
            # fewer process() calls means fewer boundary emits.
            while len(chunk) < self.chunk_size:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    stop_after = True
                    break
                chunk.extend(extra)
                n_batches += 1
            self._process(chunk, n_batches)
            if stop_after:
                return

    def _process(self, chunk: list[StreamEvent], n_batches: int) -> None:
        stats = self.processor.process(chunk) if chunk else None
        self.batches_processed.inc()
        with self._stats_lock:
            if stats is not None:
                self._stats = ProcessorStats(
                    events_processed=self._stats.events_processed
                    + stats.events_processed,
                    emits=self._stats.emits + stats.emits,
                    online_writes=self._stats.online_writes
                    + stats.online_writes,
                    offline_rows=self._stats.offline_rows + stats.offline_rows,
                    skipped_writes=self._stats.skipped_writes
                    + stats.skipped_writes,
                )
            self._pending -= n_batches
