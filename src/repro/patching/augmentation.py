"""Slice-targeted data augmentation.

The paper (section 3.1.3, citing Orr et al. and model patching) lists data
augmentation as a technique for "correct[ing] underperforming
sub-populations of data". Two primitives:

* :func:`oversample_slice` — replicate slice rows to rebalance training.
* :func:`augment_slice` — replicate with Gaussian feature jitter, the
  classic augmentation that also smooths the local decision boundary.

Both return index arrays plus materialized (features, labels) so callers can
concatenate onto the original training set.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def _check_inputs(
    features: np.ndarray, labels: np.ndarray, mask: np.ndarray, factor: float
) -> None:
    if len(features) != len(labels) or len(labels) != len(mask):
        raise ValidationError("features, labels and mask must have equal length")
    if not mask.any():
        raise ValidationError("slice mask selects no rows")
    if factor <= 0:
        raise ValidationError(f"factor must be positive ({factor=})")


def oversample_slice(
    features: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray,
    factor: float = 2.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``factor * slice_size`` extra rows (with replacement) from a slice.

    Returns the extra ``(features, labels)`` to append.
    """
    _check_inputs(features, labels, mask, factor)
    rng = np.random.default_rng(seed)
    indices = np.flatnonzero(mask)
    n_extra = int(round(factor * len(indices)))
    chosen = rng.choice(indices, size=n_extra, replace=True)
    return features[chosen].copy(), labels[chosen].copy()


def augment_slice(
    features: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray,
    factor: float = 2.0,
    noise_scale: float = 0.1,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Oversample a slice with Gaussian jitter on the features.

    The jitter scale is relative to each feature's standard deviation over
    the slice, so augmentation respects the slice's local geometry.
    """
    _check_inputs(features, labels, mask, factor)
    if noise_scale < 0:
        raise ValidationError(f"noise_scale must be non-negative ({noise_scale=})")
    rng = np.random.default_rng(seed)
    indices = np.flatnonzero(mask)
    n_extra = int(round(factor * len(indices)))
    chosen = rng.choice(indices, size=n_extra, replace=True)

    base = features[chosen].astype(float)
    scale = features[indices].std(axis=0)
    scale[scale == 0] = 1e-12
    jitter = rng.normal(0.0, noise_scale, size=base.shape) * scale
    return base + jitter, labels[chosen].copy()
