"""Subpopulation performance reports (Robustness-Gym style).

Paper section 3.1.3: "Goel et al. focuses on allowing users to define custom
sub-population functions to explore performance across different models."
:func:`build_report` evaluates any number of models over any number of named
slice functions and produces one comparable table.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.models.metrics import accuracy

SliceFn = Callable[[dict[str, np.ndarray]], np.ndarray]


@dataclass(frozen=True)
class SubpopulationReport:
    """Accuracy per (model, slice): ``cells[model][slice] = (acc, support)``."""

    cells: dict[str, dict[str, tuple[float, int]]]
    slice_names: tuple[str, ...]
    model_names: tuple[str, ...]

    def accuracy_of(self, model: str, slice_name: str) -> float:
        return self.cells[model][slice_name][0]

    def worst_slice(self, model: str) -> tuple[str, float]:
        """The named slice where a model is weakest (excluding 'overall')."""
        rows = {
            name: value
            for name, (value, __) in self.cells[model].items()
            if name != "overall"
        }
        if not rows:
            raise ValidationError("report has no slices beyond 'overall'")
        name = min(rows, key=rows.get)  # type: ignore[arg-type]
        return name, rows[name]

    def gap(self, model: str) -> float:
        """Overall accuracy minus worst-slice accuracy."""
        __, worst = self.worst_slice(model)
        return self.accuracy_of(model, "overall") - worst

    def to_text(self) -> str:
        """A fixed-width table for logs and benchmark output."""
        width = max(len(s) for s in self.slice_names + ("overall",)) + 2
        header = "slice".ljust(width) + "".join(
            name.rjust(14) for name in self.model_names
        )
        lines = [header]
        for slice_name in ("overall",) + self.slice_names:
            row = slice_name.ljust(width)
            for model in self.model_names:
                value, support = self.cells[model][slice_name]
                row += f"{value:10.3f} ({support})".rjust(14)
            lines.append(row)
        return "\n".join(lines)


def build_report(
    predictions: dict[str, np.ndarray],
    labels: np.ndarray,
    metadata: dict[str, np.ndarray],
    slice_functions: dict[str, SliceFn],
    min_support: int = 1,
) -> SubpopulationReport:
    """Evaluate every model on every user-defined subpopulation.

    ``slice_functions`` map the metadata dict to boolean masks; an
    ``overall`` row (all examples) is always included.
    """
    if not predictions:
        raise ValidationError("need at least one model's predictions")
    labels = np.asarray(labels)
    masks: dict[str, np.ndarray] = {"overall": np.ones(len(labels), dtype=bool)}
    for name, fn in slice_functions.items():
        mask = np.asarray(fn(metadata), dtype=bool)
        if mask.shape != labels.shape:
            raise ValidationError(f"slice {name!r} returned a bad mask shape")
        if mask.sum() >= min_support:
            masks[name] = mask

    cells: dict[str, dict[str, tuple[float, int]]] = {}
    for model_name, model_preds in predictions.items():
        model_preds = np.asarray(model_preds)
        if model_preds.shape != labels.shape:
            raise ValidationError(f"model {model_name!r} prediction shape mismatch")
        row: dict[str, tuple[float, int]] = {}
        for slice_name, mask in masks.items():
            support = int(mask.sum())
            row[slice_name] = (
                accuracy(labels[mask], model_preds[mask]) if support else float("nan"),
                support,
            )
        cells[model_name] = row

    slice_names = tuple(name for name in masks if name != "overall")
    return SubpopulationReport(
        cells=cells,
        slice_names=slice_names,
        model_names=tuple(predictions),
    )
