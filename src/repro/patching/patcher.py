"""Embedding patching through structured data.

Paper sections 3.1.3 and 4: "By correcting the error in the embedding, all
downstream systems using those embeddings will be patched, which maintains
product consistency." The patcher fixes *rows* of an entity embedding — the
tail entities whose self-supervised vectors are uninformative — without
touching healthy rows, so downstream models keep working unmodified and
every consumer improves at once.

Two routes, mirroring the techniques the paper cites:

* **structural imputation** — rebuild a bad row from the KB's structured
  data: the entity's type token vector plus the mean of its KG neighbours'
  relation-token vectors, rescaled to a healthy norm. No new data needed.
* **synthetic-mention augmentation** — generate knowledge-derived training
  mentions for the slice (type + relation context tokens), then re-fit only
  the target rows against the *frozen* token embedding by ridge least
  squares, which keeps the patched rows in the same vector space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.kb import KnowledgeBase, Mention, MentionVocabulary
from repro.embeddings.base import EmbeddingMatrix
from repro.errors import ValidationError


@dataclass(frozen=True)
class PatchOutcome:
    """Result of patching: the new matrix plus bookkeeping."""

    embedding: EmbeddingMatrix
    patched_entities: np.ndarray
    mean_norm_before: float
    mean_norm_after: float


class EmbeddingPatcher:
    """Patches entity embedding rows using KB structure."""

    def __init__(
        self,
        kb: KnowledgeBase,
        vocabulary: MentionVocabulary,
        token_embeddings: EmbeddingMatrix,
    ) -> None:
        if token_embeddings.n != vocabulary.size:
            raise ValidationError(
                f"token embedding rows {token_embeddings.n} != vocabulary "
                f"{vocabulary.size}"
            )
        self.kb = kb
        self.vocabulary = vocabulary
        self.token_embeddings = token_embeddings

    def _healthy_norm(self, embedding: EmbeddingMatrix, exclude: set[int]) -> float:
        norms = np.linalg.norm(embedding.vectors, axis=1)
        keep = np.array([i not in exclude for i in range(embedding.n)])
        healthy = norms[keep]
        if not len(healthy):
            return 1.0
        return float(np.median(healthy))

    def impute_from_structure(
        self, embedding: EmbeddingMatrix, entity_ids: np.ndarray
    ) -> PatchOutcome:
        """Replace rows with their structured-data projection.

        The imputed direction is the type token vector plus the mean
        relation-token vector of KG neighbours — i.e. what the entity's
        contexts *would* contain according to the KB — rescaled to the
        median norm of unpatched rows so dot-product magnitudes stay
        calibrated.
        """
        entity_ids = np.asarray(entity_ids, dtype=np.int64)
        self._validate_entities(embedding, entity_ids)
        target_norm = self._healthy_norm(embedding, set(entity_ids.tolist()))
        tokens = self.token_embeddings.vectors

        vectors = embedding.vectors.copy()
        before = float(np.linalg.norm(vectors[entity_ids], axis=1).mean())
        for entity_id in entity_ids.tolist():
            entity = self.kb.entity(entity_id)
            direction = tokens[self.vocabulary.type_offset + entity.type_id].copy()
            neighbors = sorted(self.kb.neighbors(entity_id))
            if neighbors:
                relation_rows = tokens[
                    self.vocabulary.relation_offset + np.array(neighbors)
                ]
                direction = direction + relation_rows.mean(axis=0)
            norm = np.linalg.norm(direction)
            if norm > 0:
                direction = direction / norm * target_norm
            vectors[entity_id] = direction

        return PatchOutcome(
            embedding=EmbeddingMatrix(vectors=vectors),
            patched_entities=entity_ids,
            mean_norm_before=before,
            mean_norm_after=float(
                np.linalg.norm(vectors[entity_ids], axis=1).mean()
            ),
        )

    def generate_structured_mentions(
        self,
        entity_ids: np.ndarray,
        n_per_entity: int = 20,
        context_length: int = 16,
        type_rate: float = 0.5,
        seed: int = 0,
    ) -> list[Mention]:
        """Knowledge-derived synthetic mentions for a slice of entities.

        Contexts contain only structured tokens (type and KG-neighbour
        relation tokens) because the KB is all we have for these entities —
        the augmentation strategy of Orr et al. for tail entities.
        """
        if n_per_entity <= 0 or context_length <= 0:
            raise ValidationError("n_per_entity and context_length must be positive")
        if not 0.0 <= type_rate <= 1.0:
            raise ValidationError(f"type_rate must be in [0, 1] ({type_rate=})")
        rng = np.random.default_rng(seed)
        mentions: list[Mention] = []
        mention_id = 0
        for entity_id in np.asarray(entity_ids, dtype=np.int64).tolist():
            entity = self.kb.entity(entity_id)
            neighbors = sorted(self.kb.neighbors(entity_id))
            type_token = self.vocabulary.type_offset + entity.type_id
            for __ in range(n_per_entity):
                tokens = np.empty(context_length, dtype=np.int64)
                use_type = rng.random(context_length) < type_rate
                for j in range(context_length):
                    if use_type[j] or not neighbors:
                        tokens[j] = type_token
                    else:
                        tokens[j] = self.vocabulary.relation_offset + int(
                            rng.choice(neighbors)
                        )
                mentions.append(
                    Mention(
                        mention_id=mention_id,
                        alias_id=entity.alias_id,
                        true_entity=entity_id,
                        candidates=tuple(self.kb.candidates(entity.alias_id)),
                        context=tokens,
                    )
                )
                mention_id += 1
        return mentions

    def patch_with_mentions(
        self,
        embedding: EmbeddingMatrix,
        mentions: list[Mention],
        ridge: float = 1e-2,
    ) -> PatchOutcome:
        """Re-fit only the mentioned entities' rows against frozen tokens.

        Builds each target entity's token co-occurrence profile from the
        provided mentions and solves the ridge least-squares problem
        ``min_v ||T v - log1p(counts)||^2 + ridge ||v||^2`` with the token
        matrix ``T`` frozen — so the patched rows live in the same space the
        downstream models were trained against.
        """
        if not mentions:
            raise ValidationError("patch_with_mentions needs at least one mention")
        entity_ids = np.unique([m.true_entity for m in mentions]).astype(np.int64)
        self._validate_entities(embedding, entity_ids)

        counts = np.zeros((len(entity_ids), self.vocabulary.size))
        row_of = {int(e): i for i, e in enumerate(entity_ids)}
        for mention in mentions:
            np.add.at(counts, (row_of[mention.true_entity], mention.context), 1.0)

        tokens = self.token_embeddings.vectors  # (V, d)
        dim = tokens.shape[1]
        gram = tokens.T @ tokens + ridge * np.eye(dim)
        targets = np.log1p(counts) @ tokens  # (n, d)
        solved = np.linalg.solve(gram, targets.T).T

        # Rescale to healthy norms so dot products stay calibrated.
        target_norm = self._healthy_norm(embedding, set(entity_ids.tolist()))
        norms = np.linalg.norm(solved, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        solved = solved / norms * target_norm

        vectors = embedding.vectors.copy()
        before = float(np.linalg.norm(vectors[entity_ids], axis=1).mean())
        vectors[entity_ids] = solved
        return PatchOutcome(
            embedding=EmbeddingMatrix(vectors=vectors),
            patched_entities=entity_ids,
            mean_norm_before=before,
            mean_norm_after=float(
                np.linalg.norm(vectors[entity_ids], axis=1).mean()
            ),
        )

    def _validate_entities(
        self, embedding: EmbeddingMatrix, entity_ids: np.ndarray
    ) -> None:
        if embedding.n != self.kb.n_entities:
            raise ValidationError(
                f"embedding rows {embedding.n} != KB entities {self.kb.n_entities}"
            )
        if len(entity_ids) == 0:
            raise ValidationError("no entities to patch")
        if entity_ids.min() < 0 or entity_ids.max() >= embedding.n:
            raise ValidationError("entity ids out of range")
