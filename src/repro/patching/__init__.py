"""Fine-grained monitoring and model patching.

Paper section 3.1.3: the embedding ecosystem needs "tools to find meaningful
subpopulations of errors" and ways to "correct that error in the underlying
embedding [so that] all downstream systems using those embeddings will be
patched, which maintains product consistency". The techniques it cites —
slice finding, weak supervision (Snorkel), data augmentation, slice-based
learning — are implemented here:

* :mod:`repro.patching.slicing` — slice discovery over metadata columns with
  significance testing (Robustness-Gym / SliceFinder style).
* :mod:`repro.patching.report` — subpopulation performance reports across
  models.
* :mod:`repro.patching.weak_supervision` — labeling functions, majority
  vote, and an EM-trained generative label model.
* :mod:`repro.patching.augmentation` — slice-targeted data augmentation.
* :mod:`repro.patching.patcher` — embedding patching through structured
  data, with propagation to every downstream consumer.
"""

from repro.patching.augmentation import augment_slice, oversample_slice
from repro.patching.outcome import (
    OutcomeEstimate,
    PatchDecision,
    PatchOutcomePredictor,
    choose_propagation,
)
from repro.patching.patcher import EmbeddingPatcher, PatchOutcome
from repro.patching.report import SubpopulationReport, build_report
from repro.patching.slice_experts import SliceExpertModel
from repro.patching.slicing import DiscoveredSlice, SliceFinder
from repro.patching.weak_supervision import (
    LabelingFunction,
    LabelModel,
    majority_vote,
)

__all__ = [
    "DiscoveredSlice",
    "EmbeddingPatcher",
    "LabelModel",
    "LabelingFunction",
    "OutcomeEstimate",
    "PatchDecision",
    "PatchOutcome",
    "PatchOutcomePredictor",
    "SliceExpertModel",
    "SliceFinder",
    "SubpopulationReport",
    "augment_slice",
    "build_report",
    "choose_propagation",
    "majority_vote",
    "oversample_slice",
]
