"""Predicting patch outcomes before shipping them.

Paper section 4 (future directions): "How can you predict if an
augmentation strategy will have the desired result? If an embedding gets
patched, what is the optimal way to propagate that patch downstream?"

Two tools:

* :class:`PatchOutcomePredictor` — rehearses a candidate patch on held-out
  labelled data *before* it is registered: it measures the slice and
  off-slice accuracy deltas the patch would cause for each downstream
  model, and recommends shipping only when the slice improves and the rest
  does not regress.
* :func:`choose_propagation` — given rehearsal results per consumer,
  recommends a per-model propagation action (``serve`` the patched version
  directly, ``retrain`` the model against it first, or ``hold``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embeddings.base import EmbeddingMatrix
from repro.errors import ValidationError


@dataclass(frozen=True)
class OutcomeEstimate:
    """Rehearsed effect of a candidate patch on one downstream model."""

    model_name: str
    slice_before: float
    slice_after: float
    rest_before: float
    rest_after: float

    @property
    def slice_gain(self) -> float:
        return self.slice_after - self.slice_before

    @property
    def rest_regression(self) -> float:
        """How much the off-slice accuracy drops (positive = worse)."""
        return self.rest_before - self.rest_after


@dataclass(frozen=True)
class PatchDecision:
    """Ship/hold verdict for one patch across all rehearsed consumers."""

    ship: bool
    estimates: tuple[OutcomeEstimate, ...]
    reason: str


class PatchOutcomePredictor:
    """Rehearses embedding patches against held-out evaluation sets.

    Each registered consumer contributes a fixed model plus an evaluation
    set of ``(entity_ids, labels)``; :meth:`rehearse` measures what swapping
    the embedding would do to each, with no side effects.
    """

    def __init__(
        self,
        min_slice_gain: float = 0.02,
        max_rest_regression: float = 0.01,
    ) -> None:
        if min_slice_gain < 0:
            raise ValidationError(f"min_slice_gain must be >= 0 ({min_slice_gain=})")
        if max_rest_regression < 0:
            raise ValidationError(
                f"max_rest_regression must be >= 0 ({max_rest_regression=})"
            )
        self.min_slice_gain = min_slice_gain
        self.max_rest_regression = max_rest_regression
        self._consumers: list[tuple[str, object, np.ndarray, np.ndarray]] = []

    def add_consumer(
        self,
        name: str,
        model: object,
        entity_ids: np.ndarray,
        labels: np.ndarray,
    ) -> None:
        """Register a downstream model with its held-out evaluation set."""
        entity_ids = np.asarray(entity_ids, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        if len(entity_ids) != len(labels) or len(labels) == 0:
            raise ValidationError("evaluation set must be non-empty and aligned")
        if not hasattr(model, "predict"):
            raise ValidationError(f"consumer {name!r} model lacks .predict")
        self._consumers.append((name, model, entity_ids, labels))

    def rehearse(
        self,
        current: EmbeddingMatrix,
        candidate: EmbeddingMatrix,
        patched_entities: np.ndarray,
    ) -> PatchDecision:
        """Estimate the patch's effect on every consumer; decide ship/hold.

        Ships only if **every** consumer's slice accuracy improves by at
        least ``min_slice_gain`` and no consumer's off-slice accuracy drops
        by more than ``max_rest_regression``.
        """
        if not self._consumers:
            raise ValidationError("no consumers registered to rehearse against")
        if current.n != candidate.n:
            raise ValidationError("current/candidate row-count mismatch")
        patched = set(np.asarray(patched_entities, dtype=np.int64).tolist())
        if not patched:
            raise ValidationError("patched_entities is empty")

        estimates = []
        for name, model, entity_ids, labels in self._consumers:
            in_slice = np.array([int(e) in patched for e in entity_ids])
            before = model.predict(current.vectors[entity_ids]) == labels  # type: ignore[attr-defined]
            after = model.predict(candidate.vectors[entity_ids]) == labels  # type: ignore[attr-defined]
            estimates.append(
                OutcomeEstimate(
                    model_name=name,
                    slice_before=float(before[in_slice].mean()) if in_slice.any() else float("nan"),
                    slice_after=float(after[in_slice].mean()) if in_slice.any() else float("nan"),
                    rest_before=float(before[~in_slice].mean()) if (~in_slice).any() else float("nan"),
                    rest_after=float(after[~in_slice].mean()) if (~in_slice).any() else float("nan"),
                )
            )

        failing = [
            e.model_name
            for e in estimates
            if not np.isnan(e.slice_gain) and e.slice_gain < self.min_slice_gain
        ]
        regressing = [
            e.model_name
            for e in estimates
            if not np.isnan(e.rest_regression)
            and e.rest_regression > self.max_rest_regression
        ]
        if failing:
            reason = f"insufficient slice gain for: {', '.join(sorted(failing))}"
        elif regressing:
            reason = f"off-slice regression for: {', '.join(sorted(regressing))}"
        else:
            reason = "all consumers improve on the slice without regression"
        return PatchDecision(
            ship=not failing and not regressing,
            estimates=tuple(estimates),
            reason=reason,
        )


def choose_propagation(estimate: OutcomeEstimate) -> str:
    """Per-consumer propagation policy for a shipped patch.

    * ``serve`` — the fixed model already benefits: swap the served
      embedding, no retraining needed.
    * ``retrain`` — the slice improves little or the rest regresses with
      the fixed model: retrain this consumer against the patched embedding
      before cutting over.
    * ``hold`` — the patch hurts the slice for this consumer; investigate.
    """
    if np.isnan(estimate.slice_gain):
        return "serve"  # consumer never touches the patched rows
    if estimate.slice_gain < 0:
        return "hold"
    if estimate.slice_gain > 0.01 and estimate.rest_regression <= 0.01:
        return "serve"
    return "retrain"
