"""Weak supervision: labeling functions and a generative label model.

Snorkel-style programmatic labeling (paper section 3.1.3 cites it as a
data-management technique for correcting underperforming subpopulations):
users write noisy :class:`LabelingFunction`s that vote or abstain on each
example; the :class:`LabelModel` learns each function's accuracy without any
ground truth (EM under a conditional-independence model) and outputs
probabilistic labels that beat naive majority vote.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError, ValidationError

ABSTAIN = -1


@dataclass(frozen=True)
class LabelingFunction:
    """A named weak labeler: maps one example to a class id or ABSTAIN."""

    name: str
    fn: Callable[[object], int]

    def apply(self, examples: list[object]) -> np.ndarray:
        return np.array([int(self.fn(x)) for x in examples], dtype=np.int64)


def apply_labeling_functions(
    functions: list[LabelingFunction], examples: list[object]
) -> np.ndarray:
    """Label matrix ``(n_examples, n_functions)`` with ABSTAIN = -1."""
    if not functions:
        raise ValidationError("need at least one labeling function")
    return np.stack([f.apply(examples) for f in functions], axis=1)


def majority_vote(
    label_matrix: np.ndarray, n_classes: int, seed: int = 0
) -> np.ndarray:
    """Per-example majority vote over non-abstaining functions.

    Ties and all-abstain rows are broken uniformly at random (seeded).
    """
    if n_classes < 2:
        raise ValidationError(f"n_classes must be >= 2 ({n_classes=})")
    rng = np.random.default_rng(seed)
    n = len(label_matrix)
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        votes = label_matrix[i]
        votes = votes[votes != ABSTAIN]
        if len(votes) == 0:
            out[i] = rng.integers(0, n_classes)
            continue
        counts = np.bincount(votes, minlength=n_classes)
        winners = np.flatnonzero(counts == counts.max())
        out[i] = int(rng.choice(winners)) if len(winners) > 1 else int(winners[0])
    return out


class LabelModel:
    """Generative model over labeling functions, trained with EM.

    Model: a latent true label ``y ~ Categorical(pi)``; each function j,
    when it does not abstain, outputs ``y`` with probability ``accuracy_j``
    and a uniformly random wrong class otherwise, independently across
    functions given ``y``. EM alternates posterior inference over ``y`` with
    accuracy/prior re-estimation. High-accuracy functions earn more weight
    than majority vote gives them — the source of the label model's edge.
    """

    def __init__(
        self,
        n_classes: int,
        n_iterations: int = 50,
        tolerance: float = 1e-6,
    ) -> None:
        if n_classes < 2:
            raise ValidationError(f"n_classes must be >= 2 ({n_classes=})")
        if n_iterations < 1:
            raise ValidationError(f"n_iterations must be >= 1 ({n_iterations=})")
        self.n_classes = n_classes
        self.n_iterations = n_iterations
        self.tolerance = tolerance
        self.accuracies: np.ndarray | None = None
        self.class_prior: np.ndarray | None = None

    def fit(self, label_matrix: np.ndarray) -> "LabelModel":
        label_matrix = np.asarray(label_matrix, dtype=np.int64)
        if label_matrix.ndim != 2:
            raise ValidationError(f"label matrix must be 2-D, got {label_matrix.shape}")
        n, m = label_matrix.shape
        if n == 0 or m == 0:
            raise TrainingError("empty label matrix")
        if label_matrix.max() >= self.n_classes:
            raise ValidationError("label matrix contains class ids >= n_classes")

        voted = label_matrix != ABSTAIN
        accuracies = np.full(m, 0.7)
        prior = np.full(self.n_classes, 1.0 / self.n_classes)
        wrong_mass = self.n_classes - 1

        previous = -np.inf
        for __ in range(self.n_iterations):
            # E-step: log P(y=c | votes) per example.
            log_post = np.log(prior + 1e-12)[None, :].repeat(n, axis=0)
            for j in range(m):
                rows = voted[:, j]
                votes = label_matrix[rows, j]
                acc = np.clip(accuracies[j], 1e-4, 1 - 1e-4)
                log_hit = np.log(acc)
                log_miss = np.log((1.0 - acc) / wrong_mass)
                contribution = np.full((int(rows.sum()), self.n_classes), log_miss)
                contribution[np.arange(len(votes)), votes] = log_hit
                log_post[rows] += contribution
            shift = log_post.max(axis=1, keepdims=True)
            posterior = np.exp(log_post - shift)
            posterior /= posterior.sum(axis=1, keepdims=True)

            log_likelihood = float((shift.squeeze(1) + np.log(
                np.exp(log_post - shift).sum(axis=1)
            )).sum())

            # M-step.
            prior = posterior.mean(axis=0)
            for j in range(m):
                rows = voted[:, j]
                if not rows.any():
                    continue
                votes = label_matrix[rows, j]
                agreement = posterior[rows, votes].sum()
                accuracies[j] = float(
                    np.clip(agreement / rows.sum(), 1e-4, 1 - 1e-4)
                )

            if abs(log_likelihood - previous) < self.tolerance:
                break
            previous = log_likelihood

        self.accuracies = accuracies
        self.class_prior = prior
        return self

    def predict_proba(self, label_matrix: np.ndarray) -> np.ndarray:
        """Posterior ``P(y | votes)`` per example, ``(n, n_classes)``."""
        if self.accuracies is None or self.class_prior is None:
            raise TrainingError("label model not fitted")
        label_matrix = np.asarray(label_matrix, dtype=np.int64)
        n, m = label_matrix.shape
        wrong_mass = self.n_classes - 1
        log_post = np.log(self.class_prior + 1e-12)[None, :].repeat(n, axis=0)
        for j in range(m):
            rows = label_matrix[:, j] != ABSTAIN
            votes = label_matrix[rows, j]
            acc = float(np.clip(self.accuracies[j], 1e-4, 1 - 1e-4))
            contribution = np.full(
                (int(rows.sum()), self.n_classes), np.log((1 - acc) / wrong_mass)
            )
            contribution[np.arange(len(votes)), votes] = np.log(acc)
            log_post[rows] += contribution
        log_post -= log_post.max(axis=1, keepdims=True)
        posterior = np.exp(log_post)
        posterior /= posterior.sum(axis=1, keepdims=True)
        return posterior

    def predict(self, label_matrix: np.ndarray) -> np.ndarray:
        return self.predict_proba(label_matrix).argmax(axis=1)
