"""Slice discovery: find metadata subpopulations with elevated error rates.

Given per-example correctness of a model and integer-coded metadata columns,
the finder enumerates candidate slices — single predicates ``column=value``
and depth-2 conjunctions — and keeps those whose error rate is significantly
above the global rate (one-sided binomial test with Bonferroni correction)
and whose effect size (error-rate lift) clears a threshold.

This is the laptop-scale core of what SliceFinder and Robustness Gym's
subpopulation discovery do (paper section 3.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np
from scipy import stats

from repro.errors import ValidationError


@dataclass(frozen=True)
class DiscoveredSlice:
    """One significant underperforming subpopulation."""

    name: str
    predicates: tuple[tuple[str, int], ...]
    mask: np.ndarray
    support: int
    error_rate: float
    base_error_rate: float
    p_value: float

    @property
    def lift(self) -> float:
        """Error rate relative to the base rate (1.0 = no elevation)."""
        if self.base_error_rate == 0:
            return float("inf") if self.error_rate > 0 else 1.0
        return self.error_rate / self.base_error_rate


class SliceFinder:
    """Enumerates and tests metadata slices for elevated error."""

    def __init__(
        self,
        min_support: int = 30,
        max_depth: int = 2,
        alpha: float = 0.05,
        min_lift: float = 1.5,
    ) -> None:
        if min_support < 1:
            raise ValidationError(f"min_support must be >= 1 ({min_support=})")
        if max_depth not in (1, 2):
            raise ValidationError(f"max_depth must be 1 or 2 ({max_depth=})")
        if not 0 < alpha < 1:
            raise ValidationError(f"alpha must be in (0, 1) ({alpha=})")
        if min_lift < 1.0:
            raise ValidationError(f"min_lift must be >= 1 ({min_lift=})")
        self.min_support = min_support
        self.max_depth = max_depth
        self.alpha = alpha
        self.min_lift = min_lift

    def _candidate_masks(
        self, metadata: dict[str, np.ndarray]
    ) -> list[tuple[tuple[tuple[str, int], ...], np.ndarray]]:
        single: list[tuple[tuple[str, int], np.ndarray]] = []
        for column in sorted(metadata):
            values = metadata[column]
            for value in np.unique(values[values >= 0]).tolist():
                mask = values == value
                if mask.sum() >= self.min_support:
                    single.append(((column, int(value)), mask))

        candidates: list[tuple[tuple[tuple[str, int], ...], np.ndarray]] = [
            ((predicate,), mask) for predicate, mask in single
        ]
        if self.max_depth >= 2:
            for (pred_a, mask_a), (pred_b, mask_b) in combinations(single, 2):
                if pred_a[0] == pred_b[0]:
                    continue  # same column: conjunction is empty
                mask = mask_a & mask_b
                if mask.sum() >= self.min_support:
                    candidates.append(((pred_a, pred_b), mask))
        return candidates

    def find(
        self,
        metadata: dict[str, np.ndarray],
        errors: np.ndarray,
    ) -> list[DiscoveredSlice]:
        """Return significant slices, worst (highest lift) first.

        ``errors`` is a boolean array: True where the model was wrong.
        """
        errors = np.asarray(errors, dtype=bool)
        n = len(errors)
        if n == 0:
            raise ValidationError("cannot find slices with zero examples")
        for column, values in metadata.items():
            if len(values) != n:
                raise ValidationError(f"metadata {column!r} length mismatch")

        base_rate = float(errors.mean())
        candidates = self._candidate_masks(metadata)
        if not candidates:
            return []
        corrected_alpha = self.alpha / len(candidates)

        discovered: list[DiscoveredSlice] = []
        for predicates, mask in candidates:
            support = int(mask.sum())
            slice_errors = int(errors[mask].sum())
            rate = slice_errors / support
            if base_rate > 0 and rate / base_rate < self.min_lift:
                continue
            if base_rate == 0 and rate == 0:
                continue
            # One-sided binomial: P(X >= slice_errors | base_rate).
            p_value = float(stats.binom.sf(slice_errors - 1, support, base_rate))
            if p_value > corrected_alpha:
                continue
            name = " & ".join(f"{c}={v}" for c, v in predicates)
            discovered.append(
                DiscoveredSlice(
                    name=name,
                    predicates=predicates,
                    mask=mask,
                    support=support,
                    error_rate=rate,
                    base_error_rate=base_rate,
                    p_value=p_value,
                )
            )

        discovered.sort(key=lambda s: (-s.lift, s.p_value))
        return self._deduplicate(discovered)

    @staticmethod
    def _deduplicate(slices: list[DiscoveredSlice]) -> list[DiscoveredSlice]:
        """Drop conjunctions that add nothing over a significant parent.

        A depth-2 slice survives only if its error rate meaningfully exceeds
        every significant single-predicate slice it refines — otherwise the
        single-predicate explanation is the actionable one.
        """
        singles = {
            s.predicates[0]: s for s in slices if len(s.predicates) == 1
        }
        kept: list[DiscoveredSlice] = []
        for candidate in slices:
            if len(candidate.predicates) == 1:
                kept.append(candidate)
                continue
            redundant = any(
                predicate in singles
                and candidate.error_rate <= singles[predicate].error_rate * 1.05
                for predicate in candidate.predicates
            )
            if not redundant:
                kept.append(candidate)
        return kept
