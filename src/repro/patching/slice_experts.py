"""Slice-based learning: per-slice expert heads over a shared backbone.

Paper section 3.1.3 cites slice-based learning (Chen et al.) as one of the
data-management techniques for "correct[ing] underperforming
sub-populations". The programming model: a shared backbone classifier plus
one *expert* per declared slice, trained only on that slice's examples;
at inference each example's prediction blends the backbone with the experts
whose slices it belongs to, weighted by each expert's measured advantage on
held-out slice data.

This corrects a slice *in the model* (complementary to correcting it *in
the embedding*, :mod:`repro.patching.patcher`): useful when the feature
representation is fine but the decision boundary inside the slice differs.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError, ValidationError
from repro.models.linear import LogisticRegression


@dataclass
class _Expert:
    model: LogisticRegression
    weight: float
    support: int


def _default_factory() -> LogisticRegression:
    return LogisticRegression(epochs=150)


class SliceExpertModel:
    """A backbone classifier plus membership-gated slice experts.

    ``slices`` are named boolean masks over the training rows; the same
    named masks (over inference rows) must be supplied to predict. Experts
    whose slice has fewer than ``min_slice_size`` training rows, or whose
    held-out advantage over the backbone is not positive, are dropped — a
    useless expert must never hurt the global model.
    """

    def __init__(
        self,
        model_factory: Callable[[], LogisticRegression] | None = None,
        min_slice_size: int = 50,
        validation_fraction: float = 0.25,
        seed: int = 0,
    ) -> None:
        if not 0.0 < validation_fraction < 1.0:
            raise ValidationError(
                f"validation_fraction must be in (0, 1) ({validation_fraction=})"
            )
        if min_slice_size < 2:
            raise ValidationError(f"min_slice_size must be >= 2 ({min_slice_size=})")
        self._factory = model_factory or _default_factory
        self.min_slice_size = min_slice_size
        self.validation_fraction = validation_fraction
        self.seed = seed
        self.backbone: LogisticRegression | None = None
        self.experts: dict[str, _Expert] = {}
        self.n_classes: int = 0

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        slices: dict[str, np.ndarray],
    ) -> "SliceExpertModel":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=np.int64)
        if len(features) != len(labels):
            raise ValidationError("features/labels length mismatch")
        rng = np.random.default_rng(self.seed)

        self.backbone = self._factory().fit(features, labels)
        self.n_classes = self.backbone.n_classes
        self.experts = {}

        for name, mask in slices.items():
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != labels.shape:
                raise ValidationError(f"slice {name!r} mask shape mismatch")
            indices = np.flatnonzero(mask)
            if len(indices) < self.min_slice_size:
                continue
            # Held-out split inside the slice to measure the expert's edge.
            shuffled = rng.permutation(indices)
            cut = max(1, int(len(shuffled) * (1.0 - self.validation_fraction)))
            train_idx, valid_idx = shuffled[:cut], shuffled[cut:]
            if len(valid_idx) == 0 or len(np.unique(labels[train_idx])) < 2:
                continue
            expert = self._factory().fit(features[train_idx], labels[train_idx])
            if expert.n_classes != self.n_classes:
                continue  # slice lacks some classes; blending would misalign
            backbone_acc = float(
                np.mean(self.backbone.predict(features[valid_idx]) == labels[valid_idx])
            )
            expert_acc = float(
                np.mean(expert.predict(features[valid_idx]) == labels[valid_idx])
            )
            advantage = expert_acc - backbone_acc
            if advantage <= 0:
                continue
            self.experts[name] = _Expert(
                model=expert,
                weight=advantage,
                support=len(indices),
            )
        return self

    def _check_fitted(self) -> None:
        if self.backbone is None:
            raise TrainingError("slice expert model not fitted")

    def predict_proba(
        self, features: np.ndarray, slices: dict[str, np.ndarray]
    ) -> np.ndarray:
        """Blend backbone and applicable experts per example.

        Each example's distribution is the convex combination of the
        backbone (weight 1) and every expert whose slice contains it
        (weight = held-out advantage), renormalized.
        """
        self._check_fitted()
        features = np.asarray(features, dtype=float)
        probs = self.backbone.predict_proba(features)
        weights = np.ones(len(features))

        for name, expert in self.experts.items():
            if name not in slices:
                continue
            mask = np.asarray(slices[name], dtype=bool)
            if mask.shape != (len(features),):
                raise ValidationError(f"slice {name!r} inference mask shape mismatch")
            if not mask.any():
                continue
            expert_probs = expert.model.predict_proba(features[mask])
            probs[mask] = probs[mask] + expert.weight * expert_probs
            weights[mask] += expert.weight

        return probs / weights[:, None]

    def predict(
        self, features: np.ndarray, slices: dict[str, np.ndarray]
    ) -> np.ndarray:
        return self.predict_proba(features, slices).argmax(axis=1)

    def active_experts(self) -> dict[str, tuple[float, int]]:
        """Kept experts: ``name -> (held-out advantage, slice support)``."""
        return {
            name: (expert.weight, expert.support)
            for name, expert in self.experts.items()
        }
