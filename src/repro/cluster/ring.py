"""Consistent-hash ring: stable entity→shard routing with virtual nodes.

The cluster routes every entity key to the shard group that owns it. A
naive ``hash(key) % n_shards`` would reshuffle almost every key when a
shard is added; a consistent-hash ring moves only the keys adjacent to
the change. Each member is planted on the ring at ``vnodes`` pseudo-
random points (virtual nodes), which smooths the ownership arcs — with
one point per member, the largest arc is routinely several times the
smallest; with 64 vnodes the spread tightens to a few percent (the
dashboard's cluster pane reports it).

Hashing is :func:`hashlib.blake2b` over stable byte encodings, so the
routing is deterministic across processes and runs — a client can
rebuild an identical ring from nothing but ``(members, vnodes)``, which
is exactly what :class:`repro.cluster.ClusterClient` does with the
coordinator's route table.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from collections.abc import Iterable

from repro.errors import ValidationError

_SPACE = 1 << 64  # the ring is the 64-bit hash circle


def _hash64(data: bytes) -> int:
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "little"
    )


def _key_bytes(key: int | str | bytes) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    return int(key).to_bytes(8, "little", signed=True)


class Ring:
    """A consistent-hash ring over named members with virtual nodes.

    ``owner(key)`` returns the member whose vnode is the first at or
    after ``hash(key)`` walking clockwise (wrapping at the top). Members
    are usually *shard-group ids*, not node ids: a failover changes which
    node leads a group without moving a single key, because the ring
    itself never changes (the coordinator re-points its group→leader map
    instead).
    """

    def __init__(self, members: Iterable[str], vnodes: int = 64) -> None:
        if vnodes <= 0:
            raise ValidationError(f"vnodes must be positive ({vnodes=})")
        self.vnodes = vnodes
        self._members: set[str] = set()
        self._points: list[tuple[int, str]] = []  # sorted (hash, member)
        for member in members:
            self.add(member)
        if not self._members:
            raise ValidationError("a ring needs at least one member")

    # -- membership ----------------------------------------------------------

    def _member_points(self, member: str) -> list[tuple[int, str]]:
        return [
            (_hash64(f"{member}#{i}".encode("utf-8")), member)
            for i in range(self.vnodes)
        ]

    def add(self, member: str) -> None:
        if not member:
            raise ValidationError("ring member name cannot be empty")
        if member in self._members:
            return
        self._members.add(member)
        self._points.extend(self._member_points(member))
        self._points.sort()

    def remove(self, member: str) -> None:
        if member not in self._members:
            raise ValidationError(f"{member!r} is not on the ring")
        if len(self._members) == 1:
            raise ValidationError("cannot remove the last ring member")
        self._members.discard(member)
        self._points = [p for p in self._points if p[1] != member]

    def members(self) -> list[str]:
        return sorted(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def __len__(self) -> int:
        return len(self._members)

    # -- routing -------------------------------------------------------------

    def owner(self, key: int | str | bytes) -> str:
        """The member owning ``key`` (the first vnode clockwise)."""
        point = _hash64(_key_bytes(key))
        index = bisect_right(self._points, (point, "￿"))
        if index == len(self._points):
            index = 0  # wrap past the top of the circle
        return self._points[index][1]

    def owners(self, key: int | str | bytes, n: int) -> list[str]:
        """The first ``n`` *distinct* members clockwise from ``key``.

        The classic replica-set walk; with the cluster's group-based
        replication it is mostly useful for tests and future rebalancing
        work, since followers live inside the owning group.
        """
        if n <= 0:
            return []
        point = _hash64(_key_bytes(key))
        start = bisect_right(self._points, (point, "￿"))
        out: list[str] = []
        for step in range(len(self._points)):
            member = self._points[(start + step) % len(self._points)][1]
            if member not in out:
                out.append(member)
                if len(out) == n or len(out) == len(self._members):
                    break
        return out

    # -- introspection -------------------------------------------------------

    def spread(self) -> dict[str, float]:
        """Fraction of the hash space owned by each member.

        Computed from the vnode arcs (each point owns the arc *ending*
        at it), not by sampling — deterministic, and what the cluster
        dashboard pane reports as "ring ownership spread".
        """
        arcs: dict[str, int] = {member: 0 for member in self._members}
        previous = self._points[-1][0] - _SPACE  # wrap the first arc
        for point, member in self._points:
            arcs[member] += point - previous
            previous = point
        return {member: arc / _SPACE for member, arc in sorted(arcs.items())}
