"""Routing client: ring-directed reads and writes with retry-on-wrong-owner.

A :class:`ClusterClient` is how application code talks to the cluster.
It pulls the coordinator's route table once (``members`` + ``vnodes`` +
``leaders``), rebuilds the identical consistent-hash
:class:`~repro.cluster.Ring` locally — routing is pure computation, the
coordinator is not on the data path — and from then on sends each
``put``/``get`` straight to ``leaders[ring.owner(entity_id)]``.

Routes go stale: a failover re-points a shard's leader and bumps the
route version. The client discovers this lazily, the way production
clients do — a request lands on a node that is no longer (or not yet)
the leader, the node answers :class:`~repro.errors.WrongOwnerError`, and
the client refreshes its table and retries, bounded by ``max_attempts``.
Unreachable nodes get the same treatment with a small backoff, which is
what rides out the detection window during a failover: the client spins
politely until the coordinator promotes a follower, then lands on the
new leader. Reads can opt into ``stale_ok`` fallback, draining to a
follower replica (bounded-stale by replication lag) when the leader is
unreachable — the "reads keep serving during failover" half of the
cluster story.
"""

from __future__ import annotations

import time

from repro.errors import (
    ClusterError,
    NodeUnreachableError,
    ReplicationError,
    WrongOwnerError,
)
from repro.runtime import Counter

from repro.cluster.coordinator import COORDINATOR_ID
from repro.cluster.ring import Ring
from repro.cluster.transport import Transport


class ClusterClient:
    """Entity-routed access to a running cluster. Thread-compatible:
    each writer/reader thread should own its client (route state is a
    plain dict swap, so sharing merely risks redundant refreshes)."""

    def __init__(
        self,
        transport: Transport,
        client_id: str = "client",
        max_attempts: int = 8,
        retry_backoff_s: float = 0.01,
    ) -> None:
        self.transport = transport
        self.client_id = client_id
        self.max_attempts = max_attempts
        self.retry_backoff_s = retry_backoff_s
        self._ring: Ring | None = None
        self._leaders: dict[str, str] = {}
        self._replicas: dict[str, tuple[str, ...]] = {}
        self._version = 0
        self.route_refreshes = Counter()
        self.wrong_owner_retries = Counter()
        self.unreachable_retries = Counter()
        self.stale_reads = Counter()
        self.refresh_routes()

    # -- routing --------------------------------------------------------------

    def refresh_routes(self) -> None:
        """Pull the coordinator's table and rebuild the ring if it moved."""
        table = self.transport.request(
            self.client_id, COORDINATOR_ID, "routes", {}
        )
        if table["version"] != self._version or self._ring is None:
            self._ring = Ring(table["members"], vnodes=table["vnodes"])
            self._version = table["version"]
        self._leaders = dict(table["leaders"])
        self._replicas = {
            shard: tuple(followers)
            for shard, followers in table.get("replicas", {}).items()
        }
        self.route_refreshes.inc()

    def owner_of(self, entity_id: int) -> tuple[str, str]:
        """``(shard_id, leader_node_id)`` for an entity under current routes."""
        assert self._ring is not None  # refresh_routes ran in __init__
        shard_id = self._ring.owner(entity_id)
        return shard_id, self._leaders[shard_id]

    @property
    def route_version(self) -> int:
        return self._version

    # -- data path ------------------------------------------------------------

    def put(
        self,
        entity_id: int,
        value: float,
        attributes: dict | None = None,
        timestamp: float | None = None,
        sequence: int = 0,
    ) -> dict:
        """Write one record to its shard leader; returns the leader's ack.

        Retries through stale routes (``WrongOwnerError``), dead nodes
        (``NodeUnreachableError``) and under-replicated writes
        (``ReplicationError``) up to ``max_attempts``, refreshing routes
        between attempts; the last error propagates when the budget is
        spent. A returned ack means the record is durable on the leader
        *and* replicated to the acked follower count.
        """
        payload = {
            "entity_id": int(entity_id),
            "value": float(value),
            "attributes": attributes or {},
            "timestamp": timestamp,
            "sequence": sequence,
        }
        return self._routed_request(entity_id, "put", payload)

    def get(
        self,
        entity_id: int,
        namespace: str | None = None,
        stale_ok: bool = False,
    ) -> dict:
        """Read an entity's features from its shard leader.

        With ``stale_ok`` the read falls back to the shard's follower
        replicas when the leader cannot answer — the answer is then
        bounded-stale (behind by at most the replication lag) and
        ``response["role"]`` says ``"follower"`` so callers can tell.
        """
        payload: dict = {"entity_id": int(entity_id)}
        if namespace is not None:
            payload["namespace"] = namespace
        try:
            return self._routed_request(entity_id, "get", payload)
        except (NodeUnreachableError, WrongOwnerError, ClusterError):
            if not stale_ok:
                raise
        # leader path exhausted; drain to any follower replica
        assert self._ring is not None
        shard_id = self._ring.owner(entity_id)
        stale_payload = {**payload, "stale_ok": True}
        for replica in self._replicas.get(shard_id, ()):
            try:
                response = self.transport.request(
                    self.client_id, replica, "get", stale_payload
                )
                self.stale_reads.inc()
                return response
            except (NodeUnreachableError, ClusterError):
                continue
        raise NodeUnreachableError(
            f"shard {shard_id}: no replica could serve entity {entity_id}"
        )

    # -- retry engine ----------------------------------------------------------

    def _routed_request(self, entity_id: int, kind: str, payload: dict) -> dict:
        last_error: Exception | None = None
        for attempt in range(self.max_attempts):
            __, leader = self.owner_of(entity_id)
            try:
                return self.transport.request(
                    self.client_id, leader, kind, payload
                )
            except WrongOwnerError as exc:
                # stale routes: the node demoted/was never promoted here
                last_error = exc
                self.wrong_owner_retries.inc()
                self._pause(attempt)
                self._try_refresh()
            except (NodeUnreachableError, ReplicationError) as exc:
                # dead node or under-replicated write; wait out the
                # coordinator's detection window and re-resolve
                last_error = exc
                self.unreachable_retries.inc()
                self._pause(attempt)
                self._try_refresh()
        assert last_error is not None
        raise last_error

    def _pause(self, attempt: int) -> None:
        if self.retry_backoff_s > 0:
            time.sleep(self.retry_backoff_s * (attempt + 1))

    def _try_refresh(self) -> None:
        try:
            self.refresh_routes()
        except (NodeUnreachableError, ClusterError):
            pass  # coordinator briefly away; retry with current routes

    # -- introspection --------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        return {
            "route_version": self._version,
            "route_refreshes": self.route_refreshes.value,
            "wrong_owner_retries": self.wrong_owner_retries.value,
            "unreachable_retries": self.unreachable_retries.value,
            "stale_reads": self.stale_reads.value,
        }
