"""One cluster node: a store shard, its replicated log, and its services.

A :class:`ClusterNode` is the unit the cluster is made of. Each node owns
a full runtime :class:`~repro.runtime.ServiceGroup`-style stack for one
shard group:

* a **segment log** (:class:`~repro.bus.SegmentLog`) — the durable write
  path and the unit of replication;
* an **online store shard** (:class:`~repro.storage.online.OnlineStore`)
  fed from the local log by a checkpointed
  :class:`~repro.bus.ConsumerWorker` +
  :class:`~repro.bus.OnlineStoreSink` (the PR3 machinery unchanged — a
  restarted node resumes applying from its consumer-group offset, and
  the sink's :class:`~repro.bus.DedupeWindow` keeps replayed or
  duplicated deliveries effectively-once in the store);
* an optional **shard-local serving gateway**
  (:class:`~repro.serving.ServingGateway`) fronting the store with the
  cache/micro-batch read path for read-heavy deployments.

Roles and replication: within a shard group one node is the **leader**
— it accepts writes, appends them to its log, and synchronously *ships*
the encoded frame to every follower before acknowledging (at least
``min_replica_acks`` follower acks, else the write fails retryably).
Followers CRC-check each shipped frame (:func:`repro.bus.decode_frame`)
and append it to their own log at the same offset, so a follower's log
is byte-identical to the leader's — the no-lost-acked-writes proof the
failover tests assert. A follower that missed ships (restart, partition)
is caught up by the leader's background **reconcile** loop, which ships
from the follower's durable end offset — never from zero.

The node is driven entirely through its transport handler (``put`` /
``get`` / ``replicate`` / ``heartbeat`` / ``promote`` / ``reconfigure``
/ ``status``); :class:`~repro.cluster.coordinator.ClusterCoordinator`
owns role changes, :class:`~repro.cluster.client.ClusterClient` owns
routing.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.bus import (
    BusRecord,
    Consumer,
    ConsumerWorker,
    DedupeWindow,
    FsyncConfig,
    OnlineStoreSink,
    SegmentLog,
    decode_frame,
    encode_record,
)
from repro.clock import Clock
from repro.errors import (
    ClusterError,
    NodeUnreachableError,
    ReplicationError,
    ValidationError,
    WrongOwnerError,
)
from repro.runtime import Counter, PeriodicTask, Service
from repro.serving import GatewayConfig, ServingGateway
from repro.storage.online import FreshnessPolicy, OnlineStore

from repro.cluster.transport import Message, Transport


class NodeRole(enum.Enum):
    """What a node is doing for its shard group right now."""

    LEADER = "leader"
    FOLLOWER = "follower"


@dataclass(frozen=True)
class NodeConfig:
    """Identity and tuning for one :class:`ClusterNode`."""

    node_id: str
    shard_id: str
    data_dir: str | Path
    namespace: str = "features"
    n_partitions: int = 2
    segment_bytes: int = 1 << 20
    fsync: FsyncConfig | None = None
    #: follower acks required before a write is acknowledged (clamped to
    #: the follower count; 0 followers = un-replicated single node)
    min_replica_acks: int = 1
    #: records per replicate request during catch-up shipping
    ship_batch_records: int = 256
    #: leader's background catch-up cadence
    reconcile_interval_s: float = 0.05
    ttl: float | None = None
    with_gateway: bool = False

    def validate(self) -> None:
        if not self.node_id or not self.shard_id:
            raise ValidationError("node_id and shard_id cannot be empty")
        if self.min_replica_acks < 0:
            raise ValidationError(
                f"min_replica_acks must be >= 0 ({self.min_replica_acks=})"
            )
        if self.ship_batch_records <= 0:
            raise ValidationError(
                f"ship_batch_records must be positive "
                f"({self.ship_batch_records=})"
            )
        if self.reconcile_interval_s <= 0:
            raise ValidationError(
                f"reconcile_interval_s must be positive "
                f"({self.reconcile_interval_s=})"
            )


class ClusterNode(Service):
    """A shard replica: local log + store + apply pump behind a transport.

    Construction *is* recovery: reopening a node on an existing
    ``data_dir`` runs the segment log's torn-tail truncation and resumes
    the apply pump from its committed consumer-group checkpoint. The
    node only joins the message plane once :meth:`start` registers its
    handler (a :class:`~repro.runtime.ServiceGroup` decides when).
    """

    def __init__(
        self,
        config: NodeConfig,
        transport: Transport,
        role: NodeRole = NodeRole.FOLLOWER,
        followers: tuple[str, ...] = (),
        clock: Clock | None = None,
    ) -> None:
        config.validate()
        super().__init__(name=f"node:{config.node_id}")
        self.config = config
        self.transport = transport
        self.log = SegmentLog(
            Path(config.data_dir) / "log",
            n_partitions=config.n_partitions,
            segment_bytes=config.segment_bytes,
            fsync=config.fsync,
        )
        self.store = OnlineStore(clock)
        self.dedupe = DedupeWindow()
        self.sink = OnlineStoreSink(
            self.store,
            config.namespace,
            ttl=config.ttl,
            dedupe=self.dedupe,
        )
        self.consumer = Consumer(self.log, group="apply")
        self.worker = ConsumerWorker(
            self.consumer, self.sink, name=f"{config.node_id}-apply"
        )
        self.gateway: ServingGateway | None = None
        self._role = role
        self._followers = tuple(followers)
        self._role_lock = threading.RLock()
        # serializes append+ship so frames reach followers in offset order
        self._append_lock = threading.Lock()
        self._reconcile_task = PeriodicTask(
            self._reconcile_followers,
            interval_s=config.reconcile_interval_s,
            name=f"{config.node_id}-reconcile",
        )
        self._lag_records: dict[str, int] = {}
        self._last_event_time = 0.0
        self.writes_acked = Counter()
        self.writes_rejected = Counter()
        self.reads_served = Counter()
        self.frames_shipped = Counter()
        self.frames_applied = Counter()
        self.duplicate_frames = Counter()
        self.ship_failures = Counter()
        self.promotions = Counter()

    # -- lifecycle ------------------------------------------------------------

    def _on_start(self) -> None:
        if self.config.with_gateway:
            self.gateway = ServingGateway(
                self.store,
                config=GatewayConfig(enable_batching=False),
            )
        self.worker.start()
        self._reconcile_task.start()
        self.transport.register(self.config.node_id, self.handle)

    def _on_stop(self) -> None:
        self.transport.deregister(self.config.node_id)
        self._reconcile_task.stop()
        self.worker.stop()
        if self.gateway is not None:
            self.gateway.stop()
        self.log.close()
        self._stop_event.set()
        self._join_workers()

    # -- role ----------------------------------------------------------------

    @property
    def role(self) -> NodeRole:
        with self._role_lock:
            return self._role

    @property
    def followers(self) -> tuple[str, ...]:
        with self._role_lock:
            return self._followers

    def set_followers(self, followers: tuple[str, ...]) -> None:
        with self._role_lock:
            self._followers = tuple(followers)
            self._lag_records = {
                f: lag
                for f, lag in self._lag_records.items()
                if f in self._followers
            }

    # -- transport handler ----------------------------------------------------

    def handle(self, message: Message) -> dict:
        """Dispatch one transport request (any caller thread)."""
        kind = message.kind
        payload = message.payload
        if kind == "put":
            return self._put(payload)
        if kind == "get":
            return self._get(payload)
        if kind == "replicate":
            return self._replicate(payload)
        if kind == "heartbeat":
            return self.heartbeat()
        if kind == "promote":
            return self._promote(payload)
        if kind == "reconfigure":
            self.set_followers(tuple(payload.get("followers", ())))
            return {"followers": list(self.followers)}
        if kind == "status":
            return self.status()
        raise ValidationError(
            f"{self.config.node_id}: unknown message kind {kind!r}"
        )

    # -- write path (leader) --------------------------------------------------

    def _put(self, payload: dict) -> dict:
        self._check_running("accept a write")
        with self._role_lock:
            if self._role is not NodeRole.LEADER:
                self.writes_rejected.inc()
                raise WrongOwnerError(
                    f"{self.config.node_id} is a {self._role.value} for "
                    f"shard {self.config.shard_id}; writes go to the leader"
                )
            followers = self._followers
        record = BusRecord(
            entity_id=int(payload["entity_id"]),
            timestamp=float(payload.get("timestamp") or time.time()),
            value=float(payload.get("value", 0.0)),
            attributes=dict(payload.get("attributes") or {}),
            sequence=int(payload.get("sequence", 0)),
        )
        frame = encode_record(record)
        with self._append_lock:
            partition = self.log.partition_for(record.entity_id)
            offset = self.log.append(partition, record)
            self._last_event_time = max(self._last_event_time, record.timestamp)
            acks = self._ship(followers, partition, offset, [frame])
        required = min(self.config.min_replica_acks, len(followers))
        if acks < required:
            self.writes_rejected.inc()
            raise ReplicationError(
                f"{self.config.node_id}: write at "
                f"(partition={partition}, offset={offset}) got {acks} "
                f"replica ack(s), needs {required}"
            )
        self.writes_acked.inc()
        return {
            "partition": partition,
            "offset": offset,
            "acks": acks,
            "node": self.config.node_id,
        }

    def _ship(
        self,
        followers: tuple[str, ...],
        partition: int,
        base_offset: int,
        frames: list[bytes],
    ) -> int:
        """Ship frames to every follower; return how many acked them.

        A follower answering ``gap`` (it is missing earlier records) gets
        one inline catch-up from its durable end offset — the common
        post-partition path — before the frame counts as acked.
        Unreachable followers are skipped; reconcile retries them.
        """
        acks = 0
        target = base_offset + len(frames)
        for follower in followers:
            try:
                response = self.transport.request(
                    self.config.node_id,
                    follower,
                    "replicate",
                    {
                        "partition": partition,
                        "base_offset": base_offset,
                        "frames": frames,
                    },
                )
                if response["status"] == "gap":
                    end = self._ship_range(
                        follower, partition, int(response["end_offset"])
                    )
                else:
                    end = int(response["end_offset"])
                if end >= target:
                    acks += 1
                self._lag_records[follower] = max(
                    self.log.end_offset(partition) - end, 0
                )
            except (NodeUnreachableError, ClusterError):
                self.ship_failures.inc()
        self.frames_shipped.inc(len(frames) * max(len(followers), 1))
        return acks

    def _ship_range(self, follower: str, partition: int, start: int) -> int:
        """Ship ``[start, end)`` of one partition; return follower's end.

        Bounded: each round either advances the follower's end offset or
        backs up to it (``gap``), and a round that does neither breaks —
        so a follower that stops making progress cannot wedge the
        leader's write path.
        """
        position = max(start, 0)
        for __ in range(1024):  # hard bound against pathological loops
            batch = self.log.read(
                partition, position, self.config.ship_batch_records
            )
            if not batch:
                return position
            response = self.transport.request(
                self.config.node_id,
                follower,
                "replicate",
                {
                    "partition": partition,
                    "base_offset": batch[0][0],
                    "frames": [encode_record(r) for __, r in batch],
                },
            )
            end = int(response["end_offset"])
            self.frames_shipped.inc(len(batch))
            if response["status"] == "gap":
                if end >= position:
                    break  # no progress possible; give up this round
                position = end
            else:
                if end <= position:
                    break
                position = end
        return position

    def _reconcile_followers(self) -> None:
        """Leader background loop: re-ship whatever followers are missing."""
        with self._role_lock:
            if self._role is not NodeRole.LEADER or not self._followers:
                return
            followers = self._followers
        for follower in followers:
            try:
                theirs = self.transport.request(
                    self.config.node_id, follower, "heartbeat", {}
                )["end_offsets"]
            except (NodeUnreachableError, ClusterError):
                continue
            lag = 0
            for partition in range(self.log.n_partitions):
                mine = self.log.end_offset(partition)
                if theirs[partition] < mine:
                    with self._append_lock:
                        end = self._ship_range(
                            follower, partition, int(theirs[partition])
                        )
                    lag += max(self.log.end_offset(partition) - end, 0)
            self._lag_records[follower] = lag

    # -- replica path (follower) ----------------------------------------------

    def _replicate(self, payload: dict) -> dict:
        self._check_running("apply replication")
        if self.role is NodeRole.LEADER:
            raise ClusterError(
                f"{self.config.node_id} is the leader for shard "
                f"{self.config.shard_id}; it does not accept replication"
            )
        partition = int(payload["partition"])
        base = int(payload["base_offset"])
        frames: list[bytes] = payload["frames"]
        with self._append_lock:
            end = self.log.end_offset(partition)
            if base > end:
                # the leader is ahead of what we have durably: refuse and
                # report our end so it backs up (checkpointed catch-up)
                return {"status": "gap", "end_offset": end, "applied": 0}
            skip = end - base
            if skip:
                # duplicate delivery of an already-appended prefix: the
                # log-level dedupe guard (the store-level one is the
                # sink's DedupeWindow keyed on the same offsets)
                self.duplicate_frames.inc(min(skip, len(frames)))
            fresh = frames[skip:]
            if fresh:
                records = [decode_frame(frame) for frame in fresh]
                self.log.append_many(partition, records)
                self._last_event_time = max(
                    self._last_event_time,
                    max(r.timestamp for r in records),
                )
                self.frames_applied.inc(len(records))
        return {
            "status": "ok",
            "end_offset": self.log.end_offset(partition),
            "applied": len(fresh),
        }

    # -- read path ------------------------------------------------------------

    def _get(self, payload: dict) -> dict:
        self._check_running("serve a read")
        stale_ok = bool(payload.get("stale_ok", False))
        role = self.role
        if role is not NodeRole.LEADER and not stale_ok:
            raise WrongOwnerError(
                f"{self.config.node_id} is a {role.value}; authoritative "
                "reads go to the leader (set stale_ok for bounded-stale)"
            )
        namespace = payload.get("namespace") or self.config.namespace
        entity_id = int(payload["entity_id"])
        if self.gateway is not None:
            features = self.gateway.get_features(namespace, entity_id)
        else:
            features = self.store.read(
                namespace, entity_id, FreshnessPolicy.SERVE_ANYWAY
            )
        self.reads_served.inc()
        return {
            "entity_id": entity_id,
            "features": features,
            "role": role.value,
            "node": self.config.node_id,
            "staleness_s": self.store.staleness(namespace, entity_id),
        }

    # -- control plane --------------------------------------------------------

    def _promote(self, payload: dict) -> dict:
        """Coordinator order: become the shard leader."""
        with self._role_lock:
            if self._role is not NodeRole.LEADER:
                self._role = NodeRole.LEADER
                self.promotions.inc()
            self._followers = tuple(payload.get("followers", ()))
        return {"role": self.role.value, "followers": list(self.followers)}

    def heartbeat(self) -> dict:
        """Liveness + replication position, polled by the coordinator."""
        return {
            "node_id": self.config.node_id,
            "shard_id": self.config.shard_id,
            "role": self.role.value,
            "end_offsets": self.log.end_offsets(),
            "applied_offsets": [
                self.consumer.position(p)
                for p in range(self.log.n_partitions)
            ],
            "last_event_time": self._last_event_time,
            "healthy": self.running,
        }

    # -- introspection --------------------------------------------------------

    def wait_applied(self, timeout_s: float = 5.0) -> bool:
        """Block until the local log is fully applied to the store.

        The ack contract is durability + replication, not read-your-
        writes: the store apply pump is asynchronous behind the log.
        Tests and benchmarks that need to observe a write through the
        read path wait here first.
        """
        return self.worker.wait_until_caught_up(timeout_s)

    def replication_lag_records(self) -> int:
        """Leader view: total records followers are missing (0 on followers)."""
        return sum(self._lag_records.values())

    def status(self) -> dict:
        return {
            **self.heartbeat(),
            "followers": list(self.followers),
            "store_size": self.store.size(self.config.namespace),
            "writes_acked": self.writes_acked.value,
            "writes_rejected": self.writes_rejected.value,
            "reads_served": self.reads_served.value,
            "frames_shipped": self.frames_shipped.value,
            "frames_applied": self.frames_applied.value,
            "duplicate_frames": self.duplicate_frames.value,
            "ship_failures": self.ship_failures.value,
            "promotions": self.promotions.value,
            "lag_by_follower": dict(self._lag_records),
            "caught_up": self.worker.caught_up,
        }

    def health(self) -> dict[str, object]:
        record = super().health()
        record["role"] = self.role.value
        record["shard_id"] = self.config.shard_id
        record["worker"] = self.worker.health()
        return record
