"""A real-TCP cluster transport on the runtime's selector substrate.

:class:`SocketTransport` implements the exact :class:`Transport`
protocol that :class:`LocalTransport` does — ``register`` /
``deregister`` / ``request`` / ``registered`` / ``reachable`` — but
every request, including one whose destination handler lives in the
same process, crosses a real TCP socket: length-prefixed JSON frames
(:func:`~repro.runtime.io.length_prefix`) into a
:class:`~repro.runtime.io.IoLoop` listener, handler dispatch on a small
worker pool, and the response frame back over the same connection.
Leader→follower log shipping, gap catch-up, heartbeats and failover all
run over the wire; ``LocalTransport`` remains the deterministic
fault-injectable twin for tests that want no kernel in the loop.

Shape of the wire:

* **request frame** — ``{"src", "dst", "kind", "payload"}`` as JSON;
  ``bytes`` values anywhere in the payload (replication frames!) are
  tagged ``{"__b64__": <base64>}`` and restored on decode, so the
  byte-identical-follower-log invariant survives serialization.
* **response frame** — ``{"status": "ok", "response": …}`` |
  ``{"status": "error", "class", "message"}`` (the handler's exception,
  reconstructed by class name from :mod:`repro.errors` on the caller) |
  ``{"status": "unreachable", "message"}`` (no such handler — what a
  crashed node looks like).

Client side: one blocking socket per (thread, destination address),
kept alive across requests (the cluster client, apply pumps and
heartbeat loops are all long-lived threads, so this amortizes the
handshake without a connection pool). Handlers run on a pool — never
the loop thread — because they nest: a leader's ``put`` issues
``replicate`` requests through this same transport, and the loop must
stay free to carry them.

Fault surface parity: :meth:`partition`/:meth:`heal`/:meth:`set_fault`
and the ``requests``/``unreachable``/``dropped`` counters behave as on
:class:`LocalTransport` (enforced client-side, before any bytes move),
so the replication/failover suites parameterize over both transports
unchanged.

Multi-process reach: a transport only *serves* the node ids registered
with it, but :meth:`add_route` maps a remote node id to another
transport's ``(host, port)``, so two processes each hosting a
``SocketTransport`` form one cluster plane.
"""

from __future__ import annotations

import base64
import builtins
import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor

import repro.errors as errors
from repro.errors import (
    ClusterError,
    NodeUnreachableError,
    TransientStoreError,
    ValidationError,
)
from repro.runtime import Counter, FaultInjector, FaultPolicy, MetricsRegistry
from repro.runtime.io import Connection, FrameBuffer, IoLoop, length_prefix
from repro.runtime.lifecycle import Service, ServiceState

from repro.cluster.transport import Handler, Message

_B64_KEY = "__b64__"


def encode_wire_value(value):
    """Make ``value`` JSON-able: tag ``bytes`` leaves with base64."""
    if isinstance(value, bytes):
        return {_B64_KEY: base64.b64encode(value).decode("ascii")}
    if isinstance(value, dict):
        return {key: encode_wire_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_wire_value(item) for item in value]
    return value


def decode_wire_value(value):
    """Invert :func:`encode_wire_value` (restore tagged ``bytes``)."""
    if isinstance(value, dict):
        if len(value) == 1 and _B64_KEY in value:
            return base64.b64decode(value[_B64_KEY])
        return {key: decode_wire_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_wire_value(item) for item in value]
    return value


def _exception_for(class_name: str, message: str) -> BaseException:
    """Rebuild a handler exception from its wire record.

    Classes from :mod:`repro.errors` (the cluster contract: wrong owner,
    under-replication, validation) and builtin exceptions reconstruct
    exactly; anything else degrades to :class:`ClusterError` carrying
    the original class name.
    """
    cls = getattr(errors, class_name, None)
    if cls is None:
        cls = getattr(builtins, class_name, None)
    if isinstance(cls, type) and issubclass(cls, BaseException):
        return cls(message)
    return ClusterError(f"{class_name}: {message}")


class SocketTransport(Service):
    """The :class:`Transport` protocol over real TCP sockets.

    Lazily started: the first ``register``/``request`` brings the
    listener up, so tests can use it exactly like a ``LocalTransport``
    literal; a :class:`~repro.runtime.ServiceGroup` can also own it
    explicitly (add it *first*, so it outlives the nodes it carries).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "socket-transport",
        max_workers: int = 32,
        registry: MetricsRegistry | None = None,
        request_timeout_s: float = 5.0,
    ) -> None:
        super().__init__(name=name)
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self.request_timeout_s = request_timeout_s
        self._registry = registry
        self._max_workers = max_workers
        self.loop: IoLoop | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._handlers: dict[str, Handler] = {}
        self._routes: dict[str, tuple[str, int]] = {}
        self._partitions: set[frozenset[str]] = set()
        self._injectors: dict[tuple[str | None, str | None], FaultInjector] = {}
        self._tls = threading.local()
        self._client_socks: set[socket.socket] = set()
        self._client_lock = threading.Lock()
        self.requests = Counter()
        self.unreachable = Counter()
        self.dropped = Counter()

    # -- lifecycle ------------------------------------------------------------

    def _on_start(self) -> None:
        self.loop = IoLoop(name=f"{self.name}-io", registry=self._registry)
        self.loop.start()
        self._pool = ThreadPoolExecutor(
            max_workers=self._max_workers,
            thread_name_prefix=f"{self.name}-handler",
        )
        listener = self.loop.listen(
            self.host, self._requested_port, self._on_accept
        )
        self.port = listener.port

    def _on_stop(self) -> None:
        # Drop cached client sockets first so no request thread can hang
        # on a listener that is about to vanish, then drain the handler
        # pool, then the loop (which closes every server-side fd).
        with self._client_lock:
            socks, self._client_socks = self._client_socks, set()
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self.loop is not None:
            self.loop.stop()

    def _ensure_started(self) -> None:
        if self.state is ServiceState.NEW:
            self.start()

    @property
    def address(self) -> tuple[str, int]:
        """The listener address remote transports dial via ``add_route``."""
        self._ensure_started()
        assert self.port is not None
        return (self.host, self.port)

    # -- membership ------------------------------------------------------------

    def register(self, node_id: str, handler: Handler) -> None:
        self._ensure_started()
        with self._lock:
            self._handlers[node_id] = handler

    def deregister(self, node_id: str) -> None:
        with self._lock:
            self._handlers.pop(node_id, None)

    def registered(self) -> list[str]:
        with self._lock:
            return sorted(self._handlers)

    def add_route(self, node_id: str, address: tuple[str, int]) -> None:
        """Point requests for ``node_id`` at another transport's listener."""
        with self._lock:
            self._routes[node_id] = (address[0], int(address[1]))

    # -- fault surface (LocalTransport parity) ---------------------------------

    def partition(self, a: str, b: str) -> None:
        with self._lock:
            self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        with self._lock:
            self._partitions.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        with self._lock:
            self._partitions.clear()

    def set_fault(
        self,
        policy: FaultPolicy,
        src: str | None = None,
        dst: str | None = None,
    ) -> FaultInjector:
        injector = FaultInjector(policy)
        with self._lock:
            self._injectors[(src, dst)] = injector
        return injector

    def clear_faults(self) -> None:
        with self._lock:
            self._injectors.clear()

    def _injector_for(self, src: str, dst: str) -> FaultInjector | None:
        for key in ((src, dst), (None, dst), (src, None), (None, None)):
            injector = self._injectors.get(key)
            if injector is not None:
                return injector
        return None

    def reachable(self, src: str, dst: str) -> bool:
        with self._lock:
            if frozenset((src, dst)) in self._partitions:
                return False
            return dst in self._handlers or dst in self._routes

    # -- the request path (client side) ----------------------------------------

    def request(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: dict | None = None,
        timeout_s: float = 1.0,
    ) -> dict:
        """One request over the wire; LocalTransport failure semantics.

        Partitions and injected drops fail *before* any bytes move (the
        deterministic half of the fault surface); everything else is the
        socket itself — refused/reset/timed-out connections all surface
        as :class:`~repro.errors.NodeUnreachableError`.
        """
        self._ensure_started()
        self.requests.inc()
        with self._lock:
            if frozenset((src, dst)) in self._partitions:
                self.unreachable.inc()
                raise NodeUnreachableError(f"{src} -> {dst}: link is partitioned")
            local = dst in self._handlers
            route = self._routes.get(dst)
            injector = self._injector_for(src, dst)
        if not local and route is None:
            self.unreachable.inc()
            raise NodeUnreachableError(f"{src} -> {dst}: no such node")
        if injector is not None:
            try:
                injector.inject()
            except NodeUnreachableError:
                self.dropped.inc()
                raise
            except TransientStoreError as exc:
                self.dropped.inc()
                raise NodeUnreachableError(
                    f"{src} -> {dst}: injected drop ({exc})"
                ) from exc
        if route is None:
            assert self.port is not None
            route = (self.host, self.port)
        frame = length_prefix(
            json.dumps(
                {
                    "src": src,
                    "dst": dst,
                    "kind": kind,
                    "payload": encode_wire_value(payload or {}),
                }
            ).encode("utf-8")
        )
        reply = self._exchange(src, dst, route, frame, timeout_s)
        status = reply.get("status")
        if status == "ok":
            response = decode_wire_value(reply.get("response", {}))
            return response if isinstance(response, dict) else {}
        if status == "unreachable":
            self.unreachable.inc()
            raise NodeUnreachableError(str(reply.get("message", dst)))
        if status == "error":
            raise _exception_for(
                str(reply.get("class", "ClusterError")),
                str(reply.get("message", "")),
            )
        raise ClusterError(f"{src} -> {dst}: malformed reply {reply!r}")

    def _exchange(
        self,
        src: str,
        dst: str,
        address: tuple[str, int],
        frame: bytes,
        timeout_s: float,
    ) -> dict:
        """Ship one frame, block for one reply frame (per-thread socket)."""
        sock = self._client_sock(address, timeout_s)
        try:
            sock.settimeout(max(timeout_s, 0.001))
            sock.sendall(frame)
            decoder = FrameBuffer()
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    raise NodeUnreachableError(
                        f"{src} -> {dst}: connection closed mid-request"
                    )
                frames = decoder.feed(chunk)
                if frames:
                    return json.loads(frames[0].decode("utf-8"))
        except NodeUnreachableError:
            self._drop_client_sock(address)
            self.unreachable.inc()
            raise
        except (OSError, ValueError, ValidationError) as exc:
            self._drop_client_sock(address)
            self.unreachable.inc()
            raise NodeUnreachableError(f"{src} -> {dst}: {exc}") from exc

    def _client_sock(
        self, address: tuple[str, int], timeout_s: float
    ) -> socket.socket:
        cache: dict[tuple[str, int], socket.socket] | None = getattr(
            self._tls, "socks", None
        )
        if cache is None:
            cache = {}
            self._tls.socks = cache
        sock = cache.get(address)
        if sock is not None:
            return sock
        try:
            sock = socket.create_connection(
                address, timeout=max(timeout_s, 0.001)
            )
        except OSError as exc:
            self.unreachable.inc()
            raise NodeUnreachableError(
                f"cannot reach transport at {address}: {exc}"
            ) from exc
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        cache[address] = sock
        with self._client_lock:
            self._client_socks.add(sock)
        return sock

    def _drop_client_sock(self, address: tuple[str, int]) -> None:
        cache = getattr(self._tls, "socks", None)
        if not cache:
            return
        sock = cache.pop(address, None)
        if sock is None:
            return
        with self._client_lock:
            self._client_socks.discard(sock)
        try:
            sock.close()
        except OSError:
            pass

    # -- the serve path (loop + pool side) -------------------------------------

    def _on_accept(self, conn: Connection) -> None:
        decoder = FrameBuffer()

        def on_data(connection: Connection, chunk: bytes) -> None:
            for raw in decoder.feed(chunk):
                pool = self._pool
                if pool is None:
                    connection.close("shutdown")
                    return
                pool.submit(self._serve_frame, connection, raw)

        conn.on_data = on_data

    def _serve_frame(self, conn: Connection, raw: bytes) -> None:
        """Pool thread: decode, dispatch the handler, reply."""
        try:
            request = json.loads(raw.decode("utf-8"))
            src = str(request["src"])
            dst = str(request["dst"])
            kind = str(request["kind"])
            payload = decode_wire_value(request.get("payload", {}))
        except (ValueError, KeyError, TypeError) as exc:
            conn.send(
                length_prefix(
                    json.dumps(
                        {
                            "status": "error",
                            "class": "ValidationError",
                            "message": f"malformed request frame: {exc}",
                        }
                    ).encode("utf-8")
                )
            )
            return
        with self._lock:
            handler = self._handlers.get(dst)
        if handler is None:
            reply: dict = {
                "status": "unreachable",
                "message": f"{src} -> {dst}: no such node",
            }
        else:
            try:
                response = handler(
                    Message(src=src, dst=dst, kind=kind, payload=payload)
                )
                reply = {
                    "status": "ok",
                    "response": encode_wire_value(response or {}),
                }
            except BaseException as exc:  # noqa: BLE001 - crosses the wire
                reply = {
                    "status": "error",
                    "class": type(exc).__name__,
                    "message": str(exc),
                }
        conn.send(length_prefix(json.dumps(reply).encode("utf-8")))

    # -- introspection ---------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            partitions = sorted(tuple(sorted(p)) for p in self._partitions)
        return {
            "nodes": self.registered(),
            "requests": self.requests.value,
            "unreachable": self.unreachable.value,
            "dropped": self.dropped.value,
            "partitions": partitions,
            "address": (self.host, self.port),
        }
