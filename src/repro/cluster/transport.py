"""The cluster message plane: a transport protocol plus the local build.

Every inter-node interaction — client writes, log shipping, heartbeats,
promotion — goes through one narrow request/response surface:

* :class:`Message` — the envelope: source, destination, kind, payload;
* :class:`Transport` — the protocol: ``register`` a handler per node id,
  ``request`` a response from a peer. Handlers are plain callables
  ``Message -> dict``, payloads are JSON-able dicts (replication frames
  ride as ``bytes`` values — a socket implementation length-prefixes or
  base64s them; the in-process build passes them through);
* :class:`LocalTransport` — the in-process implementation: a registry of
  handlers invoked on the caller's thread. Deterministic (no queues or
  scheduling races to win) and fault-injectable: per-link
  :class:`~repro.runtime.FaultPolicy` injection (delay / drop) through
  the existing :class:`~repro.runtime.FaultInjector`, plus explicit
  symmetric **partitions** — exactly the three failure shapes the
  failover tests rehearse.

The protocol is deliberately shaped so a socket transport slots in
behind the same five methods: a request either returns the handler's
dict, raises the handler's exception, or raises
:class:`~repro.errors.NodeUnreachableError` when the destination cannot
be reached (dead, unregistered, partitioned, or an injected drop) — the
only failure mode callers are allowed to distinguish.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import NodeUnreachableError, TransientStoreError
from repro.runtime import Counter, FaultInjector, FaultPolicy

Handler = Callable[["Message"], dict]


@dataclass(frozen=True)
class Message:
    """One request envelope travelling between cluster actors."""

    src: str
    dst: str
    kind: str
    payload: dict = field(default_factory=dict)


class Transport(Protocol):
    """What every cluster transport must provide."""

    def register(self, node_id: str, handler: Handler) -> None: ...

    def deregister(self, node_id: str) -> None: ...

    def request(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: dict | None = None,
        timeout_s: float = 1.0,
    ) -> dict: ...

    def registered(self) -> list[str]: ...

    def reachable(self, src: str, dst: str) -> bool: ...


class LocalTransport:
    """In-process transport: direct handler invocation + fault injection.

    ``request`` runs the destination handler synchronously on the
    caller's thread, which keeps multi-node tests deterministic — a
    write is fully replicated when ``put`` returns, with no background
    delivery to await. Handlers must therefore be thread-safe (they are
    called from whichever node/client thread issues the request), which
    the node enforces with its own locks.

    Failure injection:

    * :meth:`partition` / :meth:`heal` — symmetric link cuts; a
      partitioned ``request`` raises
      :class:`~repro.errors.NodeUnreachableError` without touching the
      destination;
    * :meth:`set_fault` — attach a :class:`~repro.runtime.FaultPolicy`
      to a link (or a wildcard: one endpoint, or every link). Injected
      latency delays the call; injected timeouts/errors surface as
      :class:`~repro.errors.NodeUnreachableError` (a drop), counted on
      the transport.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._handlers: dict[str, Handler] = {}
        self._partitions: set[frozenset[str]] = set()
        #: (src|None, dst|None) -> injector; None is a wildcard endpoint
        self._injectors: dict[tuple[str | None, str | None], FaultInjector] = {}
        self.requests = Counter()
        self.unreachable = Counter()
        self.dropped = Counter()

    # -- membership ----------------------------------------------------------

    def register(self, node_id: str, handler: Handler) -> None:
        with self._lock:
            self._handlers[node_id] = handler

    def deregister(self, node_id: str) -> None:
        with self._lock:
            self._handlers.pop(node_id, None)

    def registered(self) -> list[str]:
        with self._lock:
            return sorted(self._handlers)

    # -- fault surface -------------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Cut the link between ``a`` and ``b`` (symmetric)."""
        with self._lock:
            self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        with self._lock:
            self._partitions.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        with self._lock:
            self._partitions.clear()

    def set_fault(
        self,
        policy: FaultPolicy,
        src: str | None = None,
        dst: str | None = None,
    ) -> FaultInjector:
        """Attach injection to a link; ``None`` endpoints are wildcards."""
        injector = FaultInjector(policy)
        with self._lock:
            self._injectors[(src, dst)] = injector
        return injector

    def clear_faults(self) -> None:
        with self._lock:
            self._injectors.clear()

    def _injector_for(self, src: str, dst: str) -> FaultInjector | None:
        # most-specific match wins: exact link, then dst, src, global
        for key in ((src, dst), (None, dst), (src, None), (None, None)):
            injector = self._injectors.get(key)
            if injector is not None:
                return injector
        return None

    def reachable(self, src: str, dst: str) -> bool:
        with self._lock:
            return (
                dst in self._handlers
                and frozenset((src, dst)) not in self._partitions
            )

    # -- the request path ----------------------------------------------------

    def request(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: dict | None = None,
        timeout_s: float = 1.0,
    ) -> dict:
        """Deliver one request; return the handler's response dict.

        Raises :class:`~repro.errors.NodeUnreachableError` when the
        destination is unregistered, partitioned away, or an injected
        fault drops the message; any exception the handler raises
        propagates to the caller unchanged (the local analogue of an
        error envelope).
        """
        self.requests.inc()
        with self._lock:
            if frozenset((src, dst)) in self._partitions:
                self.unreachable.inc()
                raise NodeUnreachableError(
                    f"{src} -> {dst}: link is partitioned"
                )
            handler = self._handlers.get(dst)
            injector = self._injector_for(src, dst)
        if handler is None:
            self.unreachable.inc()
            raise NodeUnreachableError(f"{src} -> {dst}: no such node")
        if injector is not None:
            try:
                injector.inject()
            except NodeUnreachableError:
                self.dropped.inc()
                raise
            except TransientStoreError as exc:
                self.dropped.inc()
                raise NodeUnreachableError(
                    f"{src} -> {dst}: injected drop ({exc})"
                ) from exc
        return handler(Message(src=src, dst=dst, kind=kind, payload=payload or {}))

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            partitions = sorted(tuple(sorted(p)) for p in self._partitions)
        return {
            "nodes": self.registered(),
            "requests": self.requests.value,
            "unreachable": self.unreachable.value,
            "dropped": self.dropped.value,
            "partitions": partitions,
        }
