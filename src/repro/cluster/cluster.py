"""The assembled cluster: shards × replicas wired onto one transport.

:class:`Cluster` is the composition root — the piece that turns the
plane's parts (:class:`~repro.cluster.ClusterNode`,
:class:`~repro.cluster.ClusterCoordinator`,
:class:`~repro.cluster.LocalTransport`) into a running system:

* ``n_shards`` shard groups named ``shard-0 … shard-(n-1)``, each with a
  leader (``shard-i/n0``) and ``n_replicas`` followers (``shard-i/n1``,
  …), every node with its own data directory under ``root_dir``;
* one shared :class:`~repro.cluster.LocalTransport` (exposed for fault
  injection — partitions, drops, delays);
* one :class:`~repro.cluster.ClusterCoordinator` detecting failures and
  driving failover;
* one :class:`~repro.runtime.ServiceGroup` so startup is ordered (nodes
  before the coordinator — nothing is declared dead during boot) and
  shutdown is the exact reverse with full drain: after ``stop()``
  returns, zero cluster threads remain.

``crash(node_id)`` is the test/chaos hook: it yanks the node off the
transport *then* stops it, so the rest of the cluster experiences a
silent disappearance — exactly what a kill -9 looks like from the
network — while the process-local resources still drain cleanly.
"""

from __future__ import annotations

from pathlib import Path

from repro.bus import FsyncConfig
from repro.clock import Clock
from repro.errors import ValidationError
from repro.runtime import Service, ServiceGroup

from repro.cluster.client import ClusterClient
from repro.cluster.coordinator import (
    ClusterCoordinator,
    CoordinatorConfig,
    ShardSpec,
)
from repro.cluster.node import ClusterNode, NodeConfig, NodeRole
from repro.cluster.socket_transport import SocketTransport
from repro.cluster.transport import LocalTransport, Transport


def _build_transport(transport: str | Transport) -> Transport:
    if isinstance(transport, str):
        if transport == "local":
            return LocalTransport()
        if transport == "socket":
            return SocketTransport(name="cluster-transport")
        raise ValidationError(
            f"transport must be 'local', 'socket' or a Transport "
            f"instance ({transport!r})"
        )
    return transport


class Cluster:
    """A full in-process cluster: sharded, replicated, failover-capable.

    ``transport`` selects the message plane: ``"local"`` (the default —
    deterministic in-process calls) or ``"socket"`` (real TCP over
    :class:`~repro.cluster.SocketTransport`); an already-constructed
    :class:`~repro.cluster.Transport` instance is also accepted. A
    transport that is itself a runtime service joins the group *first*,
    so it outlives every node it carries.
    """

    def __init__(
        self,
        root_dir: str | Path,
        n_shards: int = 2,
        n_replicas: int = 1,
        n_partitions: int = 2,
        segment_bytes: int = 1 << 20,
        fsync: FsyncConfig | None = None,
        min_replica_acks: int = 1,
        namespace: str = "features",
        with_gateways: bool = False,
        coordinator_config: CoordinatorConfig | None = None,
        clock: Clock | None = None,
        transport: str | Transport = "local",
    ) -> None:
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1 ({n_shards=})")
        if n_replicas < 0:
            raise ValidationError(f"n_replicas must be >= 0 ({n_replicas=})")
        self.root_dir = Path(root_dir)
        self.transport = _build_transport(transport)
        self.nodes: dict[str, ClusterNode] = {}
        shards: list[ShardSpec] = []
        for s in range(n_shards):
            shard_id = f"shard-{s}"
            node_ids = [f"{shard_id}/n{r}" for r in range(n_replicas + 1)]
            leader_id, follower_ids = node_ids[0], tuple(node_ids[1:])
            for node_id in node_ids:
                role = (
                    NodeRole.LEADER
                    if node_id == leader_id
                    else NodeRole.FOLLOWER
                )
                self.nodes[node_id] = ClusterNode(
                    NodeConfig(
                        node_id=node_id,
                        shard_id=shard_id,
                        data_dir=self.root_dir / node_id.replace("/", "_"),
                        namespace=namespace,
                        n_partitions=n_partitions,
                        segment_bytes=segment_bytes,
                        fsync=fsync,
                        min_replica_acks=min_replica_acks,
                        with_gateway=with_gateways,
                    ),
                    self.transport,
                    role=role,
                    followers=follower_ids if role is NodeRole.LEADER else (),
                    clock=clock,
                )
            shards.append(ShardSpec(shard_id, leader_id, follower_ids))
        self.coordinator = ClusterCoordinator(
            shards, self.transport, config=coordinator_config, clock=clock
        )
        self.group = ServiceGroup(name="cluster")
        if isinstance(self.transport, Service):
            self.group.add(self.transport)  # first up, last down
        for node in self.nodes.values():
            self.group.add(node)
        self.group.add(self.coordinator)  # last up, first down

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "Cluster":
        self.group.start()
        return self

    def stop(self) -> None:
        self.group.stop()

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- access ---------------------------------------------------------------

    def client(self, client_id: str = "client") -> ClusterClient:
        return ClusterClient(self.transport, client_id=client_id)

    def leader_of(self, shard_id: str) -> ClusterNode:
        return self.nodes[self.coordinator.leader_of(shard_id)]

    def wait_applied(self, timeout_s: float = 5.0) -> bool:
        """Block until every running node has applied its log to its store."""
        deadline = timeout_s
        ok = True
        for node in self.nodes.values():
            if node.running:
                ok = node.wait_applied(deadline) and ok
        return ok

    # -- chaos ----------------------------------------------------------------

    def crash(self, node_id: str) -> ClusterNode:
        """Kill a node the way the network sees a kill -9.

        Deregisters it from the transport first (instant disappearance:
        in-flight requests from peers start failing with
        ``NodeUnreachableError``), then drains it locally so the test
        process leaks nothing. Returns the stopped node so tests can
        inspect — or re-home — its on-disk state.
        """
        node = self.nodes[node_id]
        self.transport.deregister(node_id)
        node.stop()
        return node

    # -- introspection --------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """The dashboard-facing picture: coordinator + node + transport."""
        return {
            "coordinator": self.coordinator.snapshot(),
            "nodes": {
                node_id: node.status()
                for node_id, node in sorted(self.nodes.items())
                if node.running
            },
            "transport": self.transport.snapshot(),
        }

    def health(self) -> dict[str, object]:
        return self.group.health()
