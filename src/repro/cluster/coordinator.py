"""Cluster control plane: membership, failure detection, failover.

The :class:`ClusterCoordinator` is the one actor allowed to change who
leads a shard group. It polls every node's ``heartbeat`` on a fixed
cadence; a node that misses ``failure_threshold`` consecutive polls is
declared dead. A dead **leader** triggers failover: among the shard's
surviving followers the coordinator promotes the one whose log is most
caught up (max summed end offsets — the follower with the fewest
acknowledged-but-unshipped records to lose, and with synchronous
shipping that is *zero* records), then re-points the shard→leader route
and bumps the route version so clients refresh. A dead **follower**
triggers a ``reconfigure`` on its leader, shrinking the replica set so
the write path stops waiting for acks that can never arrive (degraded
but available).

The key is what failover does **not** do: the consistent-hash
:class:`~repro.cluster.Ring` is built over *shard ids*, never node ids,
so promoting a new leader moves zero keys. Routing is two layers —
``ring.owner(entity) -> shard_id`` (stable) and
``leaders[shard_id] -> node_id`` (re-pointed on failover) — and only
the cheap second layer ever changes.

The coordinator is deliberately simple: a single process, no elections,
no quorum. That is the honest scale of this repo's in-process cluster;
the transport shapes (heartbeat / promote / reconfigure / routes) are
the ones a consensus-backed coordinator would keep.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.clock import Clock, WallClock
from repro.errors import ClusterError, NodeUnreachableError, ValidationError
from repro.runtime import Counter, PeriodicTask, Service

from repro.cluster.ring import Ring
from repro.cluster.transport import Message, Transport

COORDINATOR_ID = "coordinator"


@dataclass(frozen=True)
class ShardSpec:
    """Static description of one shard group: its id and member nodes."""

    shard_id: str
    leader: str
    followers: tuple[str, ...] = ()

    def nodes(self) -> tuple[str, ...]:
        return (self.leader, *self.followers)


@dataclass(frozen=True)
class CoordinatorConfig:
    heartbeat_interval_s: float = 0.02
    #: consecutive missed heartbeats before a node is declared dead
    failure_threshold: int = 3
    vnodes: int = 64

    def validate(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ValidationError(
                f"heartbeat_interval_s must be positive "
                f"({self.heartbeat_interval_s=})"
            )
        if self.failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1 ({self.failure_threshold=})"
            )


class _NodeView:
    """The coordinator's last known picture of one node."""

    __slots__ = ("shard_id", "alive", "missed", "heartbeat")

    def __init__(self, shard_id: str) -> None:
        self.shard_id = shard_id
        self.alive = True
        self.missed = 0
        self.heartbeat: dict = {}


class ClusterCoordinator(Service):
    """Heartbeat-driven failure detector + shard leader registry."""

    def __init__(
        self,
        shards: list[ShardSpec],
        transport: Transport,
        config: CoordinatorConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        super().__init__(name="cluster-coordinator")
        if not shards:
            raise ValidationError("a cluster needs at least one shard")
        self.config = config or CoordinatorConfig()
        self.config.validate()
        self.transport = transport
        self.clock = clock or WallClock()
        self.ring = Ring(
            [s.shard_id for s in shards], vnodes=self.config.vnodes
        )
        self._lock = threading.RLock()
        self._leaders: dict[str, str] = {}
        self._replicas: dict[str, tuple[str, ...]] = {}
        self._views: dict[str, _NodeView] = {}
        for spec in shards:
            self._leaders[spec.shard_id] = spec.leader
            self._replicas[spec.shard_id] = tuple(spec.followers)
            for node_id in spec.nodes():
                if node_id in self._views:
                    raise ValidationError(
                        f"node {node_id!r} appears in two shards"
                    )
                self._views[node_id] = _NodeView(spec.shard_id)
        self._route_version = 1
        self._heartbeat_task = PeriodicTask(
            self._poll_once,
            interval_s=self.config.heartbeat_interval_s,
            name="coordinator-heartbeat",
        )
        self.failovers = Counter()
        self.reconfigures = Counter()
        self.heartbeats = Counter()

    # -- lifecycle ------------------------------------------------------------

    def _on_start(self) -> None:
        self.transport.register(COORDINATOR_ID, self.handle)
        self._heartbeat_task.start()

    def _on_stop(self) -> None:
        self._heartbeat_task.stop()
        self.transport.deregister(COORDINATOR_ID)
        self._stop_event.set()
        self._join_workers()

    # -- transport handler (clients ask for routes) ----------------------------

    def handle(self, message: Message) -> dict:
        if message.kind == "routes":
            return self.routes()
        if message.kind == "status":
            return self.snapshot()
        raise ValidationError(
            f"coordinator: unknown message kind {message.kind!r}"
        )

    def routes(self) -> dict:
        """The route table a client needs to rebuild routing from scratch."""
        with self._lock:
            return {
                "version": self._route_version,
                "vnodes": self.config.vnodes,
                "members": self.ring.members(),
                "leaders": dict(self._leaders),
                "replicas": {s: list(f) for s, f in self._replicas.items()},
            }

    def leader_of(self, shard_id: str) -> str:
        with self._lock:
            return self._leaders[shard_id]

    @property
    def route_version(self) -> int:
        with self._lock:
            return self._route_version

    # -- failure detection -----------------------------------------------------

    def _poll_once(self) -> None:
        """One heartbeat round: poll everyone, react to transitions."""
        with self._lock:
            node_ids = list(self._views)
        dead_leaders: list[str] = []
        dead_followers: list[str] = []
        for node_id in node_ids:
            try:
                beat = self.transport.request(
                    COORDINATOR_ID, node_id, "heartbeat", {}, timeout_s=0.5
                )
                alive = bool(beat.get("healthy", True))
            except (NodeUnreachableError, ClusterError):
                beat, alive = {}, False
            self.heartbeats.inc()
            with self._lock:
                view = self._views[node_id]
                if alive:
                    view.alive = True
                    view.missed = 0
                    view.heartbeat = beat
                    continue
                view.missed += 1
                if (
                    view.alive
                    and view.missed >= self.config.failure_threshold
                ):
                    view.alive = False
                    if self._leaders[view.shard_id] == node_id:
                        dead_leaders.append(view.shard_id)
                    else:
                        dead_followers.append(node_id)
        for shard_id in dead_leaders:
            self._failover(shard_id)
        for node_id in dead_followers:
            self._drop_follower(node_id)

    def _failover(self, shard_id: str) -> None:
        """Promote the most-caught-up surviving follower to shard leader."""
        with self._lock:
            dead = self._leaders[shard_id]
            candidates = [
                f
                for f in self._replicas[shard_id]
                if f != dead and self._views[f].alive
            ]
            if not candidates:
                # total shard loss; keep routes pointed at the corpse so
                # clients fail loudly rather than silently misroute
                return

            def caught_up(node_id: str) -> tuple[int, str]:
                beat = self._views[node_id].heartbeat
                return (sum(beat.get("end_offsets", [0])), node_id)

            winner = max(candidates, key=caught_up)
            remaining = tuple(f for f in candidates if f != winner)
            self._leaders[shard_id] = winner
            self._replicas[shard_id] = remaining
            self._route_version += 1
        try:
            self.transport.request(
                COORDINATOR_ID,
                winner,
                "promote",
                {"followers": list(remaining)},
            )
        except (NodeUnreachableError, ClusterError):
            # the winner died between heartbeat and promote; the next
            # poll round will detect it and fail over again
            pass
        self.failovers.inc()

    def _drop_follower(self, node_id: str) -> None:
        """Shrink a shard's replica set after a follower death."""
        with self._lock:
            shard_id = self._views[node_id].shard_id
            remaining = tuple(
                f for f in self._replicas[shard_id] if f != node_id
            )
            if remaining == self._replicas[shard_id]:
                return  # already dropped (e.g. it lost a failover race)
            self._replicas[shard_id] = remaining
            leader = self._leaders[shard_id]
            self._route_version += 1
        try:
            self.transport.request(
                COORDINATOR_ID,
                leader,
                "reconfigure",
                {"followers": list(remaining)},
            )
        except (NodeUnreachableError, ClusterError):
            pass
        self.reconfigures.inc()

    # -- introspection --------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """JSON-able cluster picture for the dashboard's cluster pane."""
        now = self.clock.now()
        with self._lock:
            nodes = []
            for node_id, view in sorted(self._views.items()):
                beat = view.heartbeat
                role = beat.get("role", "?")
                lag_records = 0
                lag_seconds = 0.0
                if view.shard_id in self._leaders and role == "follower":
                    leader = self._leaders[view.shard_id]
                    leader_beat = self._views.get(leader)
                    if leader_beat is not None and leader_beat.heartbeat:
                        theirs = beat.get("end_offsets") or []
                        mine = leader_beat.heartbeat.get("end_offsets") or []
                        lag_records = max(sum(mine) - sum(theirs), 0)
                        their_time = beat.get("last_event_time", 0.0)
                        if their_time:
                            lag_seconds = max(now - their_time, 0.0)
                nodes.append(
                    {
                        "node_id": node_id,
                        "shard_id": view.shard_id,
                        "role": role,
                        "alive": view.alive,
                        "is_leader": self._leaders[view.shard_id] == node_id,
                        "lag_records": lag_records,
                        "lag_seconds": lag_seconds,
                    }
                )
            return {
                "nodes": nodes,
                "shards": {
                    shard_id: {
                        "leader": self._leaders[shard_id],
                        "followers": list(self._replicas[shard_id]),
                    }
                    for shard_id in sorted(self._leaders)
                },
                "ring_spread": self.ring.spread(),
                "route_version": self._route_version,
                "failovers": self.failovers.value,
                "reconfigures": self.reconfigures.value,
                "heartbeats": self.heartbeats.value,
            }
