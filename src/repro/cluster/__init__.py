"""The replicated cluster plane (sharding, replication, failover).

Paper §4: embedding and feature platforms outgrow one box — Microsoft's
feature-store deployments are *geo-distributed*, and the paper's
"coming wave" platforms all shard state across fleets of serving nodes.
Every plane built so far (store, bus, gateway, net) lives in a single
process with a single copy of the data: one crash loses availability,
and one heap bounds the feature set. This package is the scale-out
answer, built from the planes below it rather than beside them:

* :mod:`repro.cluster.ring` — consistent-hash routing over shard groups
  with virtual nodes (stable: failover moves zero keys);
* :mod:`repro.cluster.transport` — the message plane: a narrow
  request/response :class:`Transport` protocol plus the in-process
  :class:`LocalTransport` (deterministic, fault-injectable — drops,
  delays, partitions — via the runtime's :class:`FaultInjector`);
* :mod:`repro.cluster.socket_transport` — the same protocol over real
  TCP on the runtime's selector substrate (:mod:`repro.runtime.io`):
  length-prefixed JSON frames, pooled handler dispatch, the identical
  fault surface, and ``add_route`` for cross-process peers;
* :mod:`repro.cluster.node` — a shard replica: the PR3
  :class:`~repro.bus.SegmentLog` as the replication stream, leader →
  follower frame shipping with CRC-checked apply and checkpointed
  catch-up, the store/consumer/gateway stack behind it;
* :mod:`repro.cluster.coordinator` — heartbeat failure detection and
  failover: promote the most-caught-up follower, re-point routes;
* :mod:`repro.cluster.client` — ring-routed reads/writes with bounded
  retry-on-wrong-owner and stale-bounded follower fallback;
* :mod:`repro.cluster.cluster` — the composition root wiring it all
  onto one :class:`~repro.runtime.ServiceGroup`.

Sits at the top of the import DAG next to :mod:`repro.net` (layering
rule 6): it may use bus/serving/storage/runtime, nothing imports it
back, and the two top planes stay mutually independent.
"""

from repro.cluster.client import ClusterClient
from repro.cluster.cluster import Cluster
from repro.cluster.coordinator import (
    COORDINATOR_ID,
    ClusterCoordinator,
    CoordinatorConfig,
    ShardSpec,
)
from repro.cluster.node import ClusterNode, NodeConfig, NodeRole
from repro.cluster.ring import Ring
from repro.cluster.socket_transport import SocketTransport
from repro.cluster.transport import LocalTransport, Message, Transport

__all__ = [
    "COORDINATOR_ID",
    "Cluster",
    "ClusterClient",
    "ClusterCoordinator",
    "ClusterNode",
    "CoordinatorConfig",
    "LocalTransport",
    "Message",
    "NodeConfig",
    "NodeRole",
    "Ring",
    "ShardSpec",
    "SocketTransport",
    "Transport",
]
