"""NED evaluation with the head/tail split.

The paper's rare-entity claim is about entities "the embeddings do not well
represent" because they barely appear in self-supervised training data. We
therefore define *tail* entities by their **training-mention count** (at most
``tail_threshold`` occurrences in the training split) and report F1 on the
overall / head / tail partitions of the evaluation mentions.

With exactly one prediction per mention, micro-F1 equals accuracy; it is
reported as F1 to match the Bootleg convention the paper quotes ("boost
performance over rare entities by 40 F1 points").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.kb import Mention
from repro.errors import ValidationError
from repro.ned.features import FeaturizedMention
from repro.ned.models import NedModel


def tail_entity_ids(
    train_mentions: list[Mention], n_entities: int, tail_threshold: int = 2
) -> np.ndarray:
    """Entity ids with at most ``tail_threshold`` training mentions."""
    if tail_threshold < 0:
        raise ValidationError(f"tail_threshold must be >= 0 ({tail_threshold=})")
    counts = np.bincount(
        [m.true_entity for m in train_mentions], minlength=n_entities
    )
    return np.flatnonzero(counts <= tail_threshold)


@dataclass(frozen=True)
class NedEvaluation:
    """F1 on all mentions and on the head/tail partitions."""

    overall_f1: float
    head_f1: float
    tail_f1: float
    n_mentions: int
    n_tail_mentions: int

    @property
    def head_tail_gap(self) -> float:
        """How much worse the model is on the tail (positive = worse)."""
        return self.head_f1 - self.tail_f1


def evaluate_model(
    model: NedModel,
    eval_featurized: list[FeaturizedMention],
    tail_entities: np.ndarray,
) -> NedEvaluation:
    """Score a model on evaluation mentions with the head/tail breakdown."""
    if not eval_featurized:
        raise ValidationError("cannot evaluate on zero mentions")
    tail_set = set(int(e) for e in tail_entities)
    predictions = model.predict_all(eval_featurized)
    truths = np.array([f.mention.true_entity for f in eval_featurized])
    is_tail = np.array([int(t) in tail_set for t in truths])

    correct = predictions == truths
    overall = float(correct.mean())
    head = float(correct[~is_tail].mean()) if (~is_tail).any() else float("nan")
    tail = float(correct[is_tail].mean()) if is_tail.any() else float("nan")
    return NedEvaluation(
        overall_f1=overall,
        head_f1=head,
        tail_f1=tail,
        n_mentions=len(eval_featurized),
        n_tail_mentions=int(is_tail.sum()),
    )
