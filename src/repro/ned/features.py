"""Per-candidate NED features.

Each (mention, candidate) pair is scored along four signals. Their
generalization behaviour is the heart of experiment E1:

* ``log_prior`` — candidate popularity. Works for head entities, actively
  *hurts* tail entities (the prior always prefers the head candidate).
* ``cooccurrence`` — dot product of the candidate's self-supervised entity
  embedding with the context token embeddings. Memorized signal: strong for
  entities with many training mentions, near zero for the tail.
* ``type_match`` — probability that the context's predicted type equals the
  candidate's KB type. *Shared across entities*: a context->type classifier
  trained mostly on head mentions transfers to tail entities for free.
* ``relation_overlap`` — fraction of entities mentioned in the context that
  are KG neighbours of the candidate. Also shared structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.kb import KnowledgeBase, Mention, MentionVocabulary
from repro.embeddings.base import EmbeddingMatrix
from repro.errors import TrainingError, ValidationError
from repro.models.linear import LogisticRegression

FEATURE_NAMES = ("log_prior", "cooccurrence", "type_match", "relation_overlap")


class TypeClassifier:
    """Predicts an entity type distribution from a mention context.

    Features are the per-type counts of type-indicator tokens in the
    context plus a bias for context length; the model is a multinomial
    logistic regression trained on (context, true entity's type) pairs.
    Because type tokens are shared vocabulary, the classifier generalizes to
    entities never seen in training — the structured-data advantage.
    """

    def __init__(self, vocabulary: MentionVocabulary) -> None:
        self.vocabulary = vocabulary
        self._model = LogisticRegression(learning_rate=0.5, epochs=150)
        self._fitted = False

    def _featurize(self, contexts: list[np.ndarray]) -> np.ndarray:
        n_types = self.vocabulary.n_types
        offset = self.vocabulary.type_offset
        features = np.zeros((len(contexts), n_types))
        for i, context in enumerate(contexts):
            type_tokens = context[(context >= offset) & (context < offset + n_types)]
            if len(type_tokens):
                counts = np.bincount(type_tokens - offset, minlength=n_types)
                features[i] = counts
        return features

    def fit(self, mentions: list[Mention], kb: KnowledgeBase) -> "TypeClassifier":
        if not mentions:
            raise TrainingError("cannot fit a type classifier on zero mentions")
        contexts = [m.context for m in mentions]
        labels = np.array(
            [kb.entity(m.true_entity).type_id for m in mentions], dtype=np.int64
        )
        self._model.fit(self._featurize(contexts), labels)
        self._fitted = True
        return self

    def predict_proba(self, contexts: list[np.ndarray]) -> np.ndarray:
        """Type probability distribution per context, ``(n, n_types)``."""
        if not self._fitted:
            raise TrainingError("type classifier not fitted")
        probs = self._model.predict_proba(self._featurize(contexts))
        if probs.shape[1] < self.vocabulary.n_types:
            probs = np.pad(
                probs, ((0, 0), (0, self.vocabulary.n_types - probs.shape[1]))
            )
        return probs


@dataclass(frozen=True)
class FeaturizedMention:
    """A mention with its per-candidate feature matrix."""

    mention: Mention
    features: np.ndarray  # (n_candidates, n_features)


class CandidateFeaturizer:
    """Computes the four-signal feature matrix for mention candidates."""

    def __init__(
        self,
        kb: KnowledgeBase,
        vocabulary: MentionVocabulary,
        entity_embeddings: EmbeddingMatrix,
        token_embeddings: EmbeddingMatrix,
        type_classifier: TypeClassifier,
    ) -> None:
        if entity_embeddings.n != kb.n_entities:
            raise ValidationError(
                f"entity embedding rows {entity_embeddings.n} != KB size {kb.n_entities}"
            )
        if token_embeddings.n != vocabulary.size:
            raise ValidationError(
                f"token embedding rows {token_embeddings.n} != vocabulary {vocabulary.size}"
            )
        self.kb = kb
        self.vocabulary = vocabulary
        self.entity_embeddings = entity_embeddings
        self.token_embeddings = token_embeddings
        self.type_classifier = type_classifier
        self._neighbors = [kb.neighbors(e) for e in range(kb.n_entities)]
        self._log_popularity = np.log(kb.popularity + 1e-12)

    def _context_entities(self, context: np.ndarray) -> list[int]:
        offset = self.vocabulary.relation_offset
        end = offset + self.vocabulary.n_entities
        tokens = context[(context >= offset) & (context < end)]
        return (tokens - offset).tolist()

    def featurize(self, mention: Mention) -> FeaturizedMention:
        candidates = list(mention.candidates)
        context_vector = self.token_embeddings.vectors[mention.context].sum(axis=0)
        type_probs = self.type_classifier.predict_proba([mention.context])[0]
        mentioned = self._context_entities(mention.context)

        features = np.zeros((len(candidates), len(FEATURE_NAMES)))
        for row, candidate in enumerate(candidates):
            cooccurrence = float(
                self.entity_embeddings.vectors[candidate] @ context_vector
            )
            type_match = float(type_probs[self.kb.entity(candidate).type_id])
            if mentioned:
                overlap = sum(
                    1 for e in mentioned if e in self._neighbors[candidate]
                ) / len(mentioned)
            else:
                overlap = 0.0
            features[row] = (
                self._log_popularity[candidate],
                cooccurrence,
                type_match,
                overlap,
            )
        return FeaturizedMention(mention=mention, features=features)

    def featurize_all(self, mentions: list[Mention]) -> list[FeaturizedMention]:
        return [self.featurize(m) for m in mentions]
