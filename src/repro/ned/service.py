"""A deployable NED product wired into the embedding ecosystem.

The paper's motivating deployment (section 1) is "an industrial
self-supervised entity disambiguation system" whose embeddings feed many
products. :class:`DisambiguationService` is that product shape, composed
from the library's parts:

* the entity/token embeddings are **pulled from the
  :class:`~repro.core.embedding_store.EmbeddingStore>** under pinned,
  compatibility-checked versions — an embedding update cannot silently
  reach the scorer (experiment E9's guarantee, in product form);
* predictions are **logged to the offline store**, so the monitoring layer
  can compute error slices and the patch loop can close;
* :meth:`upgrade_embeddings` re-pins to a newer compatible version (e.g.
  after a patch is registered and marked compatible).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.embedding_store import EmbeddingStore
from repro.datagen.kb import KnowledgeBase, Mention, MentionVocabulary
from repro.embeddings.base import EmbeddingMatrix
from repro.errors import ServingError, ValidationError
from repro.ned.features import CandidateFeaturizer, TypeClassifier
from repro.ned.models import NedModel
from repro.storage.offline import OfflineStore, TableSchema


@dataclass(frozen=True)
class Disambiguation:
    """One served prediction."""

    mention_id: int
    predicted_entity: int
    score: float
    candidates: tuple[int, ...]


class DisambiguationService:
    """Serves NED predictions from store-managed embeddings."""

    def __init__(
        self,
        kb: KnowledgeBase,
        vocabulary: MentionVocabulary,
        embedding_store: EmbeddingStore,
        entity_embedding_name: str,
        token_embedding_name: str,
        model: NedModel,
        type_classifier: TypeClassifier,
        offline: OfflineStore | None = None,
        log_table: str = "ned_predictions",
    ) -> None:
        self.kb = kb
        self.vocabulary = vocabulary
        self.embedding_store = embedding_store
        self.entity_embedding_name = entity_embedding_name
        self.token_embedding_name = token_embedding_name
        self.model = model
        self.type_classifier = type_classifier
        self.pinned_entity_version = embedding_store.latest_version(
            entity_embedding_name
        )
        self.pinned_token_version = embedding_store.latest_version(
            token_embedding_name
        )
        self.offline = offline
        self.log_table = log_table
        if offline is not None and not offline.has_table(log_table):
            offline.create_table(
                log_table,
                TableSchema(
                    columns={"predicted": "int", "score": "float", "alias": "int"}
                ),
            )
        self._featurizer: CandidateFeaturizer | None = None

    def _build_featurizer(self) -> CandidateFeaturizer:
        if self._featurizer is None:
            entity = self.embedding_store.vectors_for_model(
                self.entity_embedding_name,
                self.pinned_entity_version,
                np.arange(self.kb.n_entities),
                serve_version=self.pinned_entity_version,
            )
            tokens = self.embedding_store.vectors_for_model(
                self.token_embedding_name,
                self.pinned_token_version,
                np.arange(self.vocabulary.size),
                serve_version=self.pinned_token_version,
            )
            self._featurizer = CandidateFeaturizer(
                self.kb,
                self.vocabulary,
                EmbeddingMatrix(vectors=entity),
                EmbeddingMatrix(vectors=tokens),
                self.type_classifier,
            )
        return self._featurizer

    def disambiguate(
        self, mention: Mention, timestamp: float = 0.0
    ) -> Disambiguation:
        """Serve one prediction (and log it when an offline store is wired)."""
        featurized = self._build_featurizer().featurize(mention)
        scores = self.model.scores(featurized)
        best = int(np.argmax(scores))
        result = Disambiguation(
            mention_id=mention.mention_id,
            predicted_entity=mention.candidates[best],
            score=float(scores[best]),
            candidates=mention.candidates,
        )
        if self.offline is not None:
            self.offline.table(self.log_table).append(
                [
                    {
                        "entity_id": mention.true_entity,
                        "timestamp": timestamp,
                        "predicted": result.predicted_entity,
                        "score": result.score,
                        "alias": mention.alias_id,
                    }
                ]
            )
        return result

    def disambiguate_batch(
        self, mentions: list[Mention], timestamp: float = 0.0
    ) -> list[Disambiguation]:
        return [self.disambiguate(m, timestamp) for m in mentions]

    def upgrade_embeddings(
        self, entity_version: int | None = None, token_version: int | None = None
    ) -> tuple[int, int]:
        """Re-pin to newer versions — only if the store marks them compatible.

        Passing ``None`` targets the latest version of each name. Raises
        :class:`~repro.errors.CompatibilityError` (from the store) when the
        target is not compatible with the current pin; on success the
        featurizer cache is invalidated so the next request serves the new
        vectors.
        """
        target_entity = (
            self.embedding_store.latest_version(self.entity_embedding_name)
            if entity_version is None
            else entity_version
        )
        target_token = (
            self.embedding_store.latest_version(self.token_embedding_name)
            if token_version is None
            else token_version
        )
        # Probe compatibility through the store's serving path (zero rows).
        self.embedding_store.vectors_for_model(
            self.entity_embedding_name,
            self.pinned_entity_version,
            np.array([], dtype=np.int64),
            serve_version=target_entity,
        )
        self.embedding_store.vectors_for_model(
            self.token_embedding_name,
            self.pinned_token_version,
            np.array([], dtype=np.int64),
            serve_version=target_token,
        )
        self.pinned_entity_version = target_entity
        self.pinned_token_version = target_token
        self._featurizer = None
        return target_entity, target_token

    def prediction_accuracy(self) -> float:
        """Accuracy over the logged predictions (truth = logged entity_id)."""
        if self.offline is None:
            raise ServingError("service has no offline log to score")
        rows = list(self.offline.table(self.log_table).scan())
        if not rows:
            raise ValidationError("no predictions logged yet")
        correct = sum(1 for r in rows if r["predicted"] == r["entity_id"])
        return correct / len(rows)
