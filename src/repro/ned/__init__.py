"""Named entity disambiguation (Bootleg-style).

Paper section 3.1.1: "recent work from [Orr et al.] explored incorporating
structured data into entity embedding pretraining through named entity
disambiguation ... by adding structured data of the type of an entity and
its knowledge graph relations, they could boost performance over rare
entities by 40 F1 points."

This package reproduces that system shape end to end:

* :mod:`repro.ned.features` — per-candidate feature extraction: popularity
  prior, self-supervised embedding co-occurrence score, type-match score
  (from a learned context->type classifier) and KG-relation overlap.
* :mod:`repro.ned.models` — disambiguation models assembled from feature
  subsets: prior-only, embedding-only, and the structured (+types,
  +relations) model.
* :mod:`repro.ned.evaluation` — overall / head / tail F1 evaluation, where
  "tail" is defined by training-mention count, exactly the rare-entity
  split the claim is about.
"""

from repro.ned.evaluation import NedEvaluation, evaluate_model, tail_entity_ids
from repro.ned.features import CandidateFeaturizer, TypeClassifier
from repro.ned.models import NedModel, train_ned_model
from repro.ned.service import Disambiguation, DisambiguationService

__all__ = [
    "CandidateFeaturizer",
    "Disambiguation",
    "DisambiguationService",
    "NedEvaluation",
    "NedModel",
    "TypeClassifier",
    "evaluate_model",
    "tail_entity_ids",
    "train_ned_model",
]
