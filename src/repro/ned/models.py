"""NED models over candidate features.

A :class:`NedModel` is a linear scorer over a chosen subset of the candidate
features; per mention it predicts the argmax-scoring candidate. The three
standard configurations of experiment E1:

* ``("log_prior",)`` — the popularity baseline.
* ``("log_prior", "cooccurrence")`` — self-supervised embeddings only.
* all four features — the structured (Bootleg-style) model with entity
  types and KG relations.

Training is a softmax ranking objective over each mention's candidate set
(list-wise cross-entropy), fitted by full-batch gradient descent — the
correct objective for pick-one-of-k disambiguation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError, ValidationError
from repro.ned.features import FEATURE_NAMES, CandidateFeaturizer, FeaturizedMention


@dataclass
class NedModel:
    """Linear candidate scorer over a feature subset."""

    feature_subset: tuple[str, ...]
    weights: np.ndarray | None = None
    bias: float = 0.0

    def __post_init__(self) -> None:
        unknown = set(self.feature_subset) - set(FEATURE_NAMES)
        if unknown:
            raise ValidationError(
                f"unknown features {sorted(unknown)}; allowed {FEATURE_NAMES}"
            )
        if not self.feature_subset:
            raise ValidationError("feature subset must be non-empty")
        self._columns = [FEATURE_NAMES.index(f) for f in self.feature_subset]

    def _project(self, features: np.ndarray) -> np.ndarray:
        return features[:, self._columns]

    def scores(self, featurized: FeaturizedMention) -> np.ndarray:
        if self.weights is None:
            raise TrainingError("NED model not fitted")
        return self._project(featurized.features) @ self.weights + self.bias

    def predict(self, featurized: FeaturizedMention) -> int:
        """The predicted entity id for one mention."""
        best = int(np.argmax(self.scores(featurized)))
        return featurized.mention.candidates[best]

    def predict_all(self, featurized: list[FeaturizedMention]) -> np.ndarray:
        return np.array([self.predict(f) for f in featurized], dtype=np.int64)

    def fit(
        self,
        featurized: list[FeaturizedMention],
        learning_rate: float = 0.5,
        epochs: int = 300,
        l2: float = 1e-4,
    ) -> "NedModel":
        """List-wise softmax ranking over each mention's candidates."""
        if not featurized:
            raise TrainingError("cannot fit on zero mentions")
        matrices = [self._project(f.features) for f in featurized]
        true_rows = []
        for f in featurized:
            try:
                true_rows.append(f.mention.candidates.index(f.mention.true_entity))
            except ValueError as exc:
                raise TrainingError(
                    f"mention {f.mention.mention_id}: true entity not in candidates"
                ) from exc

        d = matrices[0].shape[1]
        # Standardize features across all candidates for stable optimization.
        stacked = np.vstack(matrices)
        mean = stacked.mean(axis=0)
        std = stacked.std(axis=0)
        std[std == 0] = 1.0

        # Pad candidate lists to a common width so each epoch is one batched
        # einsum instead of a Python loop over mentions.
        n = len(matrices)
        max_candidates = max(len(m) for m in matrices)
        tensor = np.zeros((n, max_candidates, d))
        valid = np.zeros((n, max_candidates), dtype=bool)
        for i, matrix in enumerate(matrices):
            tensor[i, : len(matrix)] = (matrix - mean) / std
            valid[i, : len(matrix)] = True
        true_index = np.array(true_rows)
        x_true = tensor[np.arange(n), true_index]  # (n, d)

        weights = np.zeros(d)
        for __ in range(epochs):
            logits = tensor @ weights  # (n, max_c)
            logits[~valid] = -np.inf
            logits -= logits.max(axis=1, keepdims=True)
            probs = np.exp(logits)
            probs /= probs.sum(axis=1, keepdims=True)
            grad = (
                np.einsum("nc,ncd->d", probs, tensor) - x_true.sum(axis=0)
            ) / n + l2 * weights
            weights -= learning_rate * grad

        # Fold the standardization back into the stored weights/bias.
        self.weights = weights / std
        self.bias = float(-(mean / std) @ weights)
        return self


def train_ned_model(
    featurizer: CandidateFeaturizer,
    train_featurized: list[FeaturizedMention],
    feature_subset: tuple[str, ...],
    epochs: int = 300,
) -> NedModel:
    """Convenience constructor: build and fit a model on featurized mentions."""
    model = NedModel(feature_subset=feature_subset)
    return model.fit(train_featurized, epochs=epochs)
