"""Vector codecs: fp32 passthrough, int8 scalar quantization, PQ.

A codec turns a ``(n, d)`` float matrix into a :class:`CodedVectors`
block (and back), and scores full-precision queries *directly against
the codes* — asymmetric distance computation (ADC). The asymmetry is the
whole trick: the database pays the quantization error once at encode
time, the query stays exact, and the inner products the serving plane
ranks by are computed without ever materializing the decoded matrix.

The math per codec:

* **fp32** — codes are the float32 matrix itself. ADC is a BLAS sgemv;
  the decoded error is float32 rounding (~1e-7 relative).
* **int8 (scalar)** — per-dimension affine maps ``v ≈ c * scale + offset``
  with ``c`` in int8, trained from per-dimension min/max (or mean/scale).
  The ADC dot is dequant-free::

      q . decode(c) = q . (c * scale + offset)
                    = (q * scale) . c  +  q . offset

  — one pre-scaled query vector, one int8 matmul (chunked through
  float32 so BLAS does the work), one scalar bias. No per-row decode.
* **PQ (product quantization)** — the dimension axis splits into ``m``
  subspaces, each with its own ``k``-entry k-means codebook; a row
  stores one uint8 code per subspace, so the effective codebook is
  ``k^m`` entries for ``m`` bytes/vector. ADC builds one ``(m, k)``
  lookup table of subspace inner products per query::

      lut[s, j] = q_s . codebook[s][j]
      score(row) = sum_s lut[s, code[row, s]]

  — the scan is ``m`` table gathers per row instead of ``d`` multiplies.

Training is deterministic under a fixed seed (seeded k-means++ with
Lloyd iterations), so re-encoding the same generation twice yields
byte-identical codes — the property the coded snapshot tests and the
blue/green re-encode path both lean on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

#: Row chunk for int8/fp32 matmuls: bounds the float32 staging buffer the
#: ADC kernels materialize while BLAS scores a block of coded rows.
_SCAN_CHUNK = 8192


@dataclass(frozen=True)
class CodedVectors:
    """One encoded block: the codes plus the shape they decode back to.

    ``codes`` layout is codec-specific (float32 rows, int8 rows, or
    uint8 PQ codewords); ``dim`` is always the *decoded* dimensionality.
    Immutable by convention — a coded block belongs to a sealed snapshot
    generation and is shared lock-free across query threads.
    """

    kind: str
    codes: np.ndarray
    dim: int

    @property
    def n(self) -> int:
        return len(self.codes)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the per-row codes (codec state not included)."""
        return int(self.codes.nbytes)


class VectorCodec(ABC):
    """The codec protocol: ``train / encode / decode`` + ADC scoring.

    Lifecycle: construct → :meth:`train` on a representative (normalized)
    matrix → :meth:`encode` any number of row blocks. ``encode`` before
    ``train`` raises; training twice re-fits (a fresh codec per snapshot
    generation is the intended usage, mirroring ``IndexFactory``).
    """

    #: registry key; subclasses override.
    kind: str = "abstract"

    def __init__(self) -> None:
        self._trained = False

    @property
    def is_trained(self) -> bool:
        return self._trained

    # -- training --------------------------------------------------------------

    def train(self, vectors: np.ndarray) -> "VectorCodec":
        """Fit codec parameters on an ``(n, d)`` sample; returns ``self``."""
        vectors = _as_matrix(vectors, "train")
        self._train(vectors)
        self._trained = True
        return self

    @abstractmethod
    def _train(self, vectors: np.ndarray) -> None:
        """Codec-specific fitting over a validated non-empty matrix."""

    # -- transcoding -----------------------------------------------------------

    def encode(self, vectors: np.ndarray) -> CodedVectors:
        """Encode ``(n, d)`` rows into codes (requires :meth:`train`)."""
        self._check_trained("encode")
        vectors = _as_matrix(vectors, "encode", allow_empty=True)
        if vectors.shape[1] != self.dim:
            raise ValidationError(
                f"{self.kind} codec trained at dim {self.dim}, "
                f"cannot encode dim {vectors.shape[1]}"
            )
        return CodedVectors(
            kind=self.kind, codes=self._encode(vectors), dim=self.dim
        )

    @abstractmethod
    def _encode(self, vectors: np.ndarray) -> np.ndarray:
        """Codec-specific encoding of validated rows."""

    def decode(self, coded: CodedVectors) -> np.ndarray:
        """Reconstruct the float64 matrix the codes approximate."""
        self._check_trained("decode")
        if coded.kind != self.kind:
            raise ValidationError(
                f"cannot decode {coded.kind!r} codes with a {self.kind!r} codec"
            )
        return self._decode(coded.codes)

    @abstractmethod
    def _decode(self, codes: np.ndarray) -> np.ndarray:
        """Codec-specific reconstruction to float64."""

    # -- asymmetric distance ---------------------------------------------------

    def adc_scores(
        self, coded: CodedVectors, normalized_query: np.ndarray
    ) -> np.ndarray:
        """Inner products of one fp query against every coded row.

        Exactly equals ``decode(coded) @ query`` up to float32 rounding —
        the approximation lives in the codes, not in the kernel.
        """
        self._check_trained("score")
        query = np.asarray(normalized_query, dtype=np.float64)
        if query.shape != (self.dim,):
            raise ValidationError(
                f"adc query dim {query.shape} != codec dim ({self.dim},)"
            )
        if coded.n == 0:
            return np.empty(0, dtype=np.float64)
        return self._adc_scores(coded.codes, query)

    @abstractmethod
    def _adc_scores(self, codes: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Codec-specific ADC kernel (validated query, non-empty codes)."""

    def adc_scores_batch(
        self, coded: CodedVectors, normalized_queries: np.ndarray
    ) -> np.ndarray:
        """ADC scores for a query batch; returns ``(n_rows, n_queries)``."""
        self._check_trained("score")
        queries = np.asarray(normalized_queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValidationError(
                f"adc batch expects (q, {self.dim}) queries, got {queries.shape}"
            )
        if coded.n == 0:
            return np.empty((0, len(queries)), dtype=np.float64)
        return self._adc_scores_batch(coded.codes, queries)

    def _adc_scores_batch(
        self, codes: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        """Default batched kernel: one column per query."""
        return np.stack(
            [self._adc_scores(codes, query) for query in queries], axis=1
        )

    # -- accounting & state ----------------------------------------------------

    @property
    @abstractmethod
    def dim(self) -> int:
        """Decoded dimensionality (valid after training)."""

    @property
    @abstractmethod
    def bytes_per_vector(self) -> float:
        """Per-row code bytes (codec state excluded; see ``state_bytes``)."""

    @property
    def state_bytes(self) -> int:
        """Resident bytes of the trained codec state (codebooks, scales)."""
        return 0

    def state(self) -> dict[str, object]:
        """Serializable trained state (arrays stay numpy; see snapshot
        format-versioning in ``repro.vecserve.snapshot``)."""
        self._check_trained("serialize")
        return {"kind": self.kind, **self._state()}

    @abstractmethod
    def _state(self) -> dict[str, object]:
        """Codec-specific state payload."""

    @abstractmethod
    def _restore(self, payload: dict[str, object]) -> None:
        """Codec-specific state restore (inverse of :meth:`_state`)."""

    def _check_trained(self, action: str) -> None:
        if not self._trained:
            raise ValidationError(
                f"{self.kind} codec is untrained; call train() before {action}"
            )


def _as_matrix(
    vectors: np.ndarray, action: str, allow_empty: bool = False
) -> np.ndarray:
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2 or (not allow_empty and len(vectors) == 0):
        raise ValidationError(
            f"{action} expects a non-empty (n, d) matrix, got shape {vectors.shape}"
        )
    if vectors.ndim == 2 and vectors.shape[1] == 0:
        raise ValidationError(f"{action} got zero-dimensional vectors")
    return vectors


class Fp32Codec(VectorCodec):
    """Float32 passthrough: halves the float64 raw matrix, loses ~1e-7.

    The baseline coded format — same scan shape as the raw path (one
    BLAS matmul), useful as the parity anchor for the other codecs and
    as a free 2x when float64 precision is pointless (it always is for
    cosine ranking).
    """

    kind = "fp32"

    def __init__(self) -> None:
        super().__init__()
        self._dim = 0

    def _train(self, vectors: np.ndarray) -> None:
        self._dim = int(vectors.shape[1])

    def _encode(self, vectors: np.ndarray) -> np.ndarray:
        return vectors.astype(np.float32)

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        return codes.astype(np.float64)

    def _adc_scores(self, codes: np.ndarray, query: np.ndarray) -> np.ndarray:
        return (codes @ query.astype(np.float32)).astype(np.float64)

    def _adc_scores_batch(
        self, codes: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        return (codes @ queries.astype(np.float32).T).astype(np.float64)

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def bytes_per_vector(self) -> float:
        return 4.0 * self._dim

    def _state(self) -> dict[str, object]:
        return {"dim": self._dim}

    def _restore(self, payload: dict[str, object]) -> None:
        self._dim = int(payload["dim"])  # type: ignore[arg-type]


class Int8Codec(VectorCodec):
    """Per-dimension affine int8 quantization (``minmax`` or ``meanscale``).

    ``minmax`` spans each dimension's observed range with 256 levels;
    ``meanscale`` centers on the mean and spans ±max-abs-deviation with
    254 levels (symmetric, slightly more outlier-robust). Either way the
    trained state is two ``(d,)`` vectors — ``scale`` and an effective
    ``offset`` — and decode is ``codes * scale + offset``.

    Dimensions with zero spread get ``scale=1`` and encode to a constant
    code, so decode is still exact there.
    """

    kind = "int8"

    def __init__(self, mode: str = "minmax") -> None:
        super().__init__()
        if mode not in ("minmax", "meanscale"):
            raise ValidationError(
                f"int8 mode must be 'minmax' or 'meanscale' ({mode=})"
            )
        self.mode = mode
        self._scale = np.empty(0)
        self._offset = np.empty(0)

    def _train(self, vectors: np.ndarray) -> None:
        if self.mode == "minmax":
            lo = vectors.min(axis=0)
            hi = vectors.max(axis=0)
            scale = (hi - lo) / 255.0
            scale[scale == 0] = 1.0
            # codes in [-128, 127]; effective offset folds the +128 shift.
            self._scale = scale
            self._offset = lo + 128.0 * scale
        else:
            mean = vectors.mean(axis=0)
            spread = np.abs(vectors - mean).max(axis=0)
            scale = spread / 127.0
            scale[scale == 0] = 1.0
            self._scale = scale
            self._offset = mean

    def _encode(self, vectors: np.ndarray) -> np.ndarray:
        levels = np.rint((vectors - self._offset) / self._scale)
        return np.clip(levels, -128, 127).astype(np.int8)

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        return codes.astype(np.float64) * self._scale + self._offset

    def _adc_scores(self, codes: np.ndarray, query: np.ndarray) -> np.ndarray:
        # Dequant-free dot: (q*scale).codes + q.offset — the affine map is
        # applied to the *query* once, never to the n database rows.
        scaled = (query * self._scale).astype(np.float32)
        bias = float(query @ self._offset)
        scores = np.empty(len(codes), dtype=np.float64)
        for start in range(0, len(codes), _SCAN_CHUNK):
            block = codes[start : start + _SCAN_CHUNK]
            scores[start : start + len(block)] = block.astype(np.float32) @ scaled
        return scores + bias

    def _adc_scores_batch(
        self, codes: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        scaled = (queries * self._scale).astype(np.float32).T  # (d, q)
        bias = queries @ self._offset  # (q,)
        scores = np.empty((len(codes), len(queries)), dtype=np.float64)
        for start in range(0, len(codes), _SCAN_CHUNK):
            block = codes[start : start + _SCAN_CHUNK]
            scores[start : start + len(block)] = block.astype(np.float32) @ scaled
        return scores + bias

    @property
    def dim(self) -> int:
        return len(self._scale)

    @property
    def bytes_per_vector(self) -> float:
        return float(self.dim)

    @property
    def state_bytes(self) -> int:
        return int(self._scale.nbytes + self._offset.nbytes)

    def _state(self) -> dict[str, object]:
        return {
            "mode": self.mode,
            "scale": self._scale.copy(),
            "offset": self._offset.copy(),
        }

    def _restore(self, payload: dict[str, object]) -> None:
        self.mode = str(payload["mode"])
        self._scale = np.asarray(payload["scale"], dtype=np.float64)
        self._offset = np.asarray(payload["offset"], dtype=np.float64)


def _kmeans(
    vectors: np.ndarray, n_codes: int, n_iterations: int, rng: np.random.Generator
) -> np.ndarray:
    """Seeded k-means++ + Lloyd; returns the ``(n_codes, d)`` codebook.

    Deterministic for a given generator state — train-determinism of the
    PQ codec reduces to this function.
    """
    n = len(vectors)
    n_codes = min(n_codes, n)
    centroids = np.empty((n_codes, vectors.shape[1]))
    centroids[0] = vectors[rng.integers(0, n)]
    closest = np.full(n, np.inf)
    for c in range(1, n_codes):
        dist = np.sum((vectors - centroids[c - 1]) ** 2, axis=1)
        closest = np.minimum(closest, dist)
        total = closest.sum()
        if total == 0:
            centroids[c:] = vectors[rng.integers(0, n, size=n_codes - c)]
            break
        centroids[c] = vectors[rng.choice(n, p=closest / total)]
    assignments = np.zeros(n, dtype=np.int64)
    for __ in range(n_iterations):
        distances = (
            np.sum(vectors**2, axis=1, keepdims=True)
            - 2.0 * vectors @ centroids.T
            + np.sum(centroids**2, axis=1)
        )
        new_assignments = distances.argmin(axis=1)
        if np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
        for c in range(n_codes):
            members = vectors[assignments == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
    return centroids


class PQCodec(VectorCodec):
    """Product quantization: per-subspace k-means codebooks, uint8 codes.

    ``n_subspaces`` must divide the trained dimension; ``n_codes`` is
    capped at 256 so a code fits one byte (and at the training-set size).
    Codebooks are stored float32 — the dominant state cost — so the
    resident overhead at serving time is ``m * k * (d/m) * 4`` bytes.
    """

    kind = "pq"

    def __init__(
        self,
        n_subspaces: int = 8,
        n_codes: int = 256,
        n_iterations: int = 20,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_subspaces < 1:
            raise ValidationError(f"n_subspaces must be positive ({n_subspaces=})")
        if not 1 <= n_codes <= 256:
            raise ValidationError(
                f"n_codes must be in [1, 256] for uint8 codes ({n_codes=})"
            )
        if n_iterations < 1:
            raise ValidationError(f"n_iterations must be positive ({n_iterations=})")
        self.n_subspaces = n_subspaces
        self.n_codes = n_codes
        self.n_iterations = n_iterations
        self.seed = seed
        self._codebooks = np.empty((0, 0, 0), dtype=np.float32)

    def _train(self, vectors: np.ndarray) -> None:
        dim = vectors.shape[1]
        if dim % self.n_subspaces != 0:
            raise ValidationError(
                f"dim {dim} not divisible by n_subspaces {self.n_subspaces}"
            )
        sub_dim = dim // self.n_subspaces
        n_codes = min(self.n_codes, len(vectors))
        codebooks = np.zeros(
            (self.n_subspaces, n_codes, sub_dim), dtype=np.float32
        )
        for sub in range(self.n_subspaces):
            rng = np.random.default_rng(self.seed + sub)
            block = vectors[:, sub * sub_dim : (sub + 1) * sub_dim]
            codebooks[sub] = _kmeans(
                block, n_codes, self.n_iterations, rng
            ).astype(np.float32)
        self._codebooks = codebooks

    def _encode(self, vectors: np.ndarray) -> np.ndarray:
        m, __, sub_dim = self._codebooks.shape
        codes = np.empty((len(vectors), m), dtype=np.uint8)
        for sub in range(m):
            block = vectors[:, sub * sub_dim : (sub + 1) * sub_dim]
            book = self._codebooks[sub].astype(np.float64)
            distances = (
                np.sum(block**2, axis=1, keepdims=True)
                - 2.0 * block @ book.T
                + np.sum(book**2, axis=1)
            )
            codes[:, sub] = distances.argmin(axis=1)
        return codes

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        m, __, sub_dim = self._codebooks.shape
        out = np.empty((len(codes), m * sub_dim), dtype=np.float64)
        for sub in range(m):
            out[:, sub * sub_dim : (sub + 1) * sub_dim] = self._codebooks[sub][
                codes[:, sub]
            ]
        return out

    def _lut(self, query: np.ndarray) -> np.ndarray:
        """The per-query ``(m, k)`` table of subspace inner products."""
        m, k, sub_dim = self._codebooks.shape
        blocks = query.reshape(m, sub_dim).astype(np.float32)
        # einsum over (m, k, s) x (m, s) -> (m, k): one small sgemm per call.
        return np.einsum("mks,ms->mk", self._codebooks, blocks).astype(
            np.float64
        )

    def _adc_scores(self, codes: np.ndarray, query: np.ndarray) -> np.ndarray:
        lut = self._lut(query)
        m = codes.shape[1]
        # Gather each row's m table entries and sum: the PQ scan is m
        # byte-indexed lookups per row — no d-wide arithmetic at all.
        return lut[np.arange(m), codes].sum(axis=1)

    @property
    def dim(self) -> int:
        m, __, sub_dim = self._codebooks.shape
        return m * sub_dim

    @property
    def bytes_per_vector(self) -> float:
        return float(self.n_subspaces)

    @property
    def state_bytes(self) -> int:
        return int(self._codebooks.nbytes)

    def _state(self) -> dict[str, object]:
        return {
            "n_subspaces": self.n_subspaces,
            "n_codes": self.n_codes,
            "n_iterations": self.n_iterations,
            "seed": self.seed,
            "codebooks": self._codebooks.copy(),
        }

    def _restore(self, payload: dict[str, object]) -> None:
        self.n_subspaces = int(payload["n_subspaces"])  # type: ignore[arg-type]
        self.n_codes = int(payload["n_codes"])  # type: ignore[arg-type]
        self.n_iterations = int(payload["n_iterations"])  # type: ignore[arg-type]
        self.seed = int(payload["seed"])  # type: ignore[arg-type]
        self._codebooks = np.asarray(payload["codebooks"], dtype=np.float32)


#: registry: codec kind -> constructor.
CODEC_KINDS: dict[str, type[VectorCodec]] = {
    Fp32Codec.kind: Fp32Codec,
    Int8Codec.kind: Int8Codec,
    PQCodec.kind: PQCodec,
}


def make_codec(spec: str | VectorCodec, **kwargs) -> VectorCodec:
    """Build an untrained codec from a kind name (or pass one through)."""
    if isinstance(spec, VectorCodec):
        if kwargs:
            raise ValidationError(
                "codec kwargs only apply when building from a kind name"
            )
        return spec
    if spec not in CODEC_KINDS:
        raise ValidationError(
            f"unknown codec kind {spec!r}; allowed {sorted(CODEC_KINDS)}"
        )
    return CODEC_KINDS[spec](**kwargs)


def codec_to_state(codec: VectorCodec) -> dict[str, object]:
    """Trained codec → serializable payload (kind-tagged)."""
    return codec.state()


def codec_from_state(payload: dict[str, object]) -> VectorCodec:
    """Payload → trained codec; unknown kinds raise ``ValidationError``."""
    kind = payload.get("kind")
    if kind not in CODEC_KINDS:
        raise ValidationError(
            f"unknown codec kind {kind!r} in state; allowed {sorted(CODEC_KINDS)}"
        )
    codec = CODEC_KINDS[kind]()
    codec._restore(payload)
    codec._trained = True
    return codec
