"""ADC scan primitives: exact top-k over coded rows, raw positions out.

These are the functions the vector serving plane actually calls per
query. They stay deliberately dumb: score every coded row with the
codec's asymmetric kernel, partial-sort, return *row positions* and
scores. Id mapping, delta merging, masking and re-ranking all belong to
the caller — keeping this module importable from anywhere in the DAG
(it depends only on :mod:`repro.codec.codecs` and numpy).

"Exact" here means exact **with respect to the codes**: ``adc_topk``
returns the true top-k of ``decode(coded) @ query``. Any recall loss a
caller observes is quantization error in the codes, never scan error —
which is what makes oversample-then-rerank against an fp32 reserve a
sound recovery strategy (see ``repro.vecserve.shards``).
"""

from __future__ import annotations

import numpy as np

from repro.codec.codecs import CodedVectors, VectorCodec
from repro.errors import ValidationError


def adc_scores(
    codec: VectorCodec, coded: CodedVectors, query: np.ndarray
) -> np.ndarray:
    """Score one fp query against every coded row; ``(n,)`` float64."""
    return codec.adc_scores(coded, query)


def adc_scores_batch(
    codec: VectorCodec, coded: CodedVectors, queries: np.ndarray
) -> np.ndarray:
    """Score a query batch; ``(n_rows, n_queries)`` float64."""
    return codec.adc_scores_batch(coded, queries)


def _topk_from_scores(scores: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Positions + scores of the k largest entries, descending."""
    n = len(scores)
    if n == 0 or k == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.float64)
    k = min(k, n)
    if k < n:
        positions = np.argpartition(scores, -k)[-k:]
    else:
        positions = np.arange(n)
    order = np.argsort(scores[positions])[::-1]
    positions = positions[order].astype(np.int64)
    return positions, scores[positions]


def adc_topk(
    codec: VectorCodec, coded: CodedVectors, query: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k coded rows for one query: ``(positions, scores)``, descending.

    Exact over the codes (full scan + partial sort); positions index into
    ``coded`` row order.
    """
    if k < 0:
        raise ValidationError(f"k must be non-negative ({k=})")
    return _topk_from_scores(codec.adc_scores(coded, query), k)


def adc_topk_batch(
    codec: VectorCodec, coded: CodedVectors, queries: np.ndarray, k: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Top-k per query for a batch, sharing one batched ADC pass."""
    if k < 0:
        raise ValidationError(f"k must be non-negative ({k=})")
    scores = codec.adc_scores_batch(coded, queries)  # (n, q)
    return [_topk_from_scores(scores[:, j], k) for j in range(scores.shape[1])]
