"""The compressed embedding codec plane: coded vectors + ADC kernels.

The *Unified Embedding* production recipe (PAPERS.md) for web-scale
embedding tables has two halves, and this package is the storage half:
stored vectors are *codes* — int8 scalar-quantized rows or product-
quantization codewords — while queries stay full-precision, scored
against the codes through asymmetric distance computation (ADC) kernels
that never materialize the decoded database.

* :mod:`repro.codec.codecs` — the :class:`VectorCodec` protocol
  (``train / encode / decode / bytes_per_vector``) and its three
  implementations: :class:`Fp32Codec` (float32 passthrough, 2x vs the
  float64 raw matrix), :class:`Int8Codec` (per-dimension scalar
  quantization, 8x), and :class:`PQCodec` (k-means codebooks over
  subspaces, 16-64x), plus codec state (de)serialization for coded
  snapshot formats.
* :mod:`repro.codec.adc` — the scan primitives: exact top-k over coded
  rows for one query or a batch, returning raw row positions so callers
  (``repro.vecserve`` snapshots) can map to their own id spaces.

Layering: this package sits *below* every plane — it imports only numpy
and ``repro.errors`` (``tools/check_layering.py`` enforces it), so the
vector serving plane, the embedding store, and offline tooling can all
share one compression substrate without import cycles.
"""

from repro.codec.adc import adc_scores, adc_scores_batch, adc_topk, adc_topk_batch
from repro.codec.codecs import (
    CODEC_KINDS,
    CodedVectors,
    Fp32Codec,
    Int8Codec,
    PQCodec,
    VectorCodec,
    codec_from_state,
    codec_to_state,
    make_codec,
)

__all__ = [
    "CODEC_KINDS",
    "CodedVectors",
    "Fp32Codec",
    "Int8Codec",
    "PQCodec",
    "VectorCodec",
    "adc_scores",
    "adc_scores_batch",
    "adc_topk",
    "adc_topk_batch",
    "codec_from_state",
    "codec_to_state",
    "make_codec",
]
