"""Simulated and wall clocks.

The feature store is event-time driven: materialization cadences, freshness
metrics, TTL expiry and point-in-time joins all compare timestamps. To make
every experiment deterministic, all library components read time from a
:class:`Clock` rather than calling ``time.time()`` directly. Tests and
benchmarks use :class:`SimClock`; interactive use may pass :class:`WallClock`.

Timestamps are plain ``float`` seconds since an arbitrary epoch (Unix epoch
for :class:`WallClock`, 0.0 for a default :class:`SimClock`).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


class Clock(ABC):
    """Source of the current event time for all store components."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds since the clock's epoch."""


class WallClock(Clock):
    """Real wall-clock time (``time.time()``)."""

    def now(self) -> float:
        return time.time()


class SimClock(Clock):
    """A manually advanced clock for deterministic simulation.

    >>> clock = SimClock(start=100.0)
    >>> clock.now()
    100.0
    >>> clock.advance(5.0)
    105.0
    >>> clock.now()
    105.0
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds=})")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot advance backwards: now={self._now}, target={timestamp}"
            )
        self._now = float(timestamp)
        return self._now


def partition_key(timestamp: float, granularity: float = SECONDS_PER_DAY) -> int:
    """Map an event timestamp to its date-partition index.

    Offline tables are partitioned on date (paper section 2.2.2: "partitioning
    features on date"); a partition key is the integer number of whole
    ``granularity`` windows since the epoch.

    >>> partition_key(0.0)
    0
    >>> partition_key(86400.0 * 3 + 5)
    3
    """
    if granularity <= 0:
        raise ValueError(f"granularity must be positive ({granularity=})")
    return int(timestamp // granularity)


def partition_start(key: int, granularity: float = SECONDS_PER_DAY) -> float:
    """Return the inclusive start timestamp of partition ``key``."""
    return key * granularity
