"""Embedding compression.

The paper (section 3.1.2, citing May et al.) discusses choosing embeddings
"given compute or memory constraints". Three standard compressors are
implemented; each returns a :class:`CompressionResult` carrying the
reconstructed (decompressed) matrix — so downstream models can consume it
directly — plus honest memory accounting for the compressed form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embeddings.base import EmbeddingMatrix
from repro.errors import ValidationError


@dataclass(frozen=True)
class CompressionResult:
    """A compressed embedding and its bookkeeping."""

    method: str
    embedding: EmbeddingMatrix
    compressed_bytes: int
    original_bytes: int
    parameters: dict[str, object]

    @property
    def compression_ratio(self) -> float:
        return self.original_bytes / max(1, self.compressed_bytes)


def uniform_quantize(
    embedding: EmbeddingMatrix, bits: int
) -> CompressionResult:
    """Uniform scalar quantization to ``bits`` bits per weight.

    Each weight is snapped to one of ``2^bits`` evenly spaced levels between
    the matrix min and max. This is the compression family May et al.
    analyze with the eigenspace overlap score.
    """
    if not 1 <= bits <= 16:
        raise ValidationError(f"bits must be in [1, 16] ({bits=})")
    vectors = embedding.vectors
    lo = float(vectors.min())
    hi = float(vectors.max())
    if hi == lo:
        hi = lo + 1e-12
    levels = (1 << bits) - 1
    codes = np.round((vectors - lo) / (hi - lo) * levels)
    reconstructed = codes / levels * (hi - lo) + lo
    compressed_bytes = int(np.ceil(vectors.size * bits / 8)) + 16  # + two floats
    return CompressionResult(
        method="uniform_quantization",
        embedding=EmbeddingMatrix(vectors=reconstructed),
        compressed_bytes=compressed_bytes,
        original_bytes=vectors.nbytes,
        parameters={"bits": bits},
    )


def pca_compress(embedding: EmbeddingMatrix, rank: int) -> CompressionResult:
    """Low-rank (PCA) compression: keep the top ``rank`` principal directions.

    Stores the ``(n, rank)`` scores plus the ``(rank, d)`` basis; the
    reconstruction is their product (plus the mean).
    """
    if not 1 <= rank <= embedding.dim:
        raise ValidationError(f"rank must be in [1, {embedding.dim}] ({rank=})")
    vectors = embedding.vectors
    mean = vectors.mean(axis=0, keepdims=True)
    centered = vectors - mean
    u, s, vt = np.linalg.svd(centered, full_matrices=False)
    scores = u[:, :rank] * s[:rank]
    basis = vt[:rank]
    reconstructed = scores @ basis + mean
    compressed_bytes = scores.nbytes + basis.nbytes + mean.nbytes
    return CompressionResult(
        method="pca",
        embedding=EmbeddingMatrix(vectors=reconstructed),
        compressed_bytes=compressed_bytes,
        original_bytes=vectors.nbytes,
        parameters={"rank": rank},
    )


def product_quantize(
    embedding: EmbeddingMatrix,
    n_subvectors: int = 4,
    n_codes: int = 16,
    n_iterations: int = 15,
    seed: int = 0,
) -> CompressionResult:
    """Product quantization: independent k-means per dimension block.

    The matrix is split column-wise into ``n_subvectors`` blocks; each block
    gets its own ``n_codes``-entry codebook and each row stores one code per
    block. PQ reaches far lower distortion than whole-vector quantization at
    the same bit budget because the effective codebook size is
    ``n_codes ** n_subvectors`` — the industry-standard ANN compression.
    """
    if n_subvectors < 1 or n_codes < 1:
        raise ValidationError("n_subvectors and n_codes must be positive")
    if embedding.dim % n_subvectors != 0:
        raise ValidationError(
            f"dim {embedding.dim} not divisible by n_subvectors {n_subvectors}"
        )
    vectors = embedding.vectors
    block = embedding.dim // n_subvectors
    reconstructed = np.empty_like(vectors)
    codebook_bytes = 0
    for sub in range(n_subvectors):
        columns = slice(sub * block, (sub + 1) * block)
        result = kmeans_codebook_compress(
            EmbeddingMatrix(vectors=vectors[:, columns].copy()),
            n_codes=n_codes,
            n_iterations=n_iterations,
            seed=seed + sub,
        )
        reconstructed[:, columns] = result.embedding.vectors
        codebook_bytes += min(n_codes, len(vectors)) * block * 8
    code_bits = max(1, int(np.ceil(np.log2(max(2, n_codes)))))
    compressed_bytes = codebook_bytes + int(
        np.ceil(len(vectors) * n_subvectors * code_bits / 8)
    )
    return CompressionResult(
        method="product_quantization",
        embedding=EmbeddingMatrix(vectors=reconstructed),
        compressed_bytes=compressed_bytes,
        original_bytes=vectors.nbytes,
        parameters={"n_subvectors": n_subvectors, "n_codes": n_codes},
    )


def kmeans_codebook_compress(
    embedding: EmbeddingMatrix,
    n_codes: int,
    n_iterations: int = 20,
    seed: int = 0,
) -> CompressionResult:
    """Vector quantization: k-means over rows, store one code per row.

    Rows are replaced by their nearest of ``n_codes`` centroids (Lloyd's
    algorithm with k-means++ style seeding). Storage is the codebook plus
    one integer code per row.
    """
    if n_codes < 1:
        raise ValidationError(f"n_codes must be positive ({n_codes=})")
    if n_iterations < 1:
        raise ValidationError(f"n_iterations must be positive ({n_iterations=})")
    vectors = embedding.vectors
    n = len(vectors)
    n_codes = min(n_codes, n)
    rng = np.random.default_rng(seed)

    # k-means++ seeding.
    centroids = np.empty((n_codes, vectors.shape[1]))
    centroids[0] = vectors[rng.integers(0, n)]
    closest = np.full(n, np.inf)
    for c in range(1, n_codes):
        dist = np.sum((vectors - centroids[c - 1]) ** 2, axis=1)
        closest = np.minimum(closest, dist)
        total = closest.sum()
        if total == 0:
            centroids[c:] = vectors[rng.integers(0, n, size=n_codes - c)]
            break
        centroids[c] = vectors[rng.choice(n, p=closest / total)]

    assignments = np.zeros(n, dtype=np.int64)
    for __ in range(n_iterations):
        # Squared distances via the expansion trick; (n, n_codes).
        distances = (
            np.sum(vectors**2, axis=1, keepdims=True)
            - 2.0 * vectors @ centroids.T
            + np.sum(centroids**2, axis=1)
        )
        new_assignments = distances.argmin(axis=1)
        if np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
        for c in range(n_codes):
            members = vectors[assignments == c]
            if len(members):
                centroids[c] = members.mean(axis=0)

    reconstructed = centroids[assignments]
    code_bits = max(1, int(np.ceil(np.log2(max(2, n_codes)))))
    compressed_bytes = centroids.nbytes + int(np.ceil(n * code_bits / 8))
    return CompressionResult(
        method="kmeans_codebook",
        embedding=EmbeddingMatrix(vectors=reconstructed),
        compressed_bytes=compressed_bytes,
        original_bytes=vectors.nbytes,
        parameters={"n_codes": n_codes, "iterations": n_iterations},
    )
