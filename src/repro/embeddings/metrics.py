"""Embedding quality metrics.

Paper section 3.1.2: "standard tabular metrics are inadequate for
embeddings". The metrics the paper surveys, implemented here:

* :func:`knn_overlap` — nearest-neighbour overlap between two embeddings of
  the same vocabulary (Wendlandt et al.; Hellrich & Hahn). The per-word
  stability measure.
* :func:`eigenspace_overlap_score` — subspace overlap between a base and a
  compressed embedding (May et al.), a predictor of downstream performance.
* :func:`downstream_instability` — fraction of downstream predictions that
  change when the embedding changes (Leszczynski et al.).
* :func:`align_procrustes` / :func:`semantic_displacement` — orthogonal
  alignment and per-word drift, the tools an embedding store needs to
  compare versions whose bases differ by an arbitrary rotation.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import orthogonal_procrustes

from repro.embeddings.base import EmbeddingMatrix
from repro.errors import ValidationError


def _check_same_rows(a: EmbeddingMatrix, b: EmbeddingMatrix) -> None:
    if a.n != b.n:
        raise ValidationError(
            f"embeddings cover different vocabularies: {a.n} vs {b.n} rows"
        )


def knn_overlap(
    a: EmbeddingMatrix,
    b: EmbeddingMatrix,
    k: int = 10,
    indices: np.ndarray | None = None,
) -> np.ndarray:
    """Per-row overlap of k-NN sets between two embeddings, in [0, 1].

    ``overlap[i] = |N_a(i) ∩ N_b(i)| / k`` where ``N_x(i)`` is row i's
    k-nearest-neighbour set (cosine) under embedding ``x``. Wendlandt et
    al.'s word stability is exactly this, averaged over query words.
    """
    _check_same_rows(a, b)
    if k <= 0:
        raise ValidationError(f"k must be positive ({k=})")
    if indices is None:
        indices = np.arange(a.n)
    neighbors_a = a.nearest_neighbors_batch(indices, k)
    neighbors_b = b.nearest_neighbors_batch(indices, k)
    overlaps = np.empty(len(indices))
    for row in range(len(indices)):
        set_a = set(neighbors_a[row].tolist())
        set_b = set(neighbors_b[row].tolist())
        overlaps[row] = len(set_a & set_b) / k
    return overlaps


def eigenspace_overlap_score(base: EmbeddingMatrix, other: EmbeddingMatrix) -> float:
    """Eigenspace overlap score of May et al., in [0, 1].

    ``EOS(X, Y) = ||U_X^T U_Y||_F^2 / max(d_X, d_Y)`` where ``U_X`` spans
    ``X``'s column space (left singular vectors). 1.0 means the compressed
    embedding spans the same subspace as the base — May et al. show this
    predicts downstream performance of compressed embeddings.
    """
    _check_same_rows(base, other)

    def _left_singular(matrix: np.ndarray) -> np.ndarray:
        u, s, __ = np.linalg.svd(matrix, full_matrices=False)
        keep = s > s.max() * 1e-10 if s.size and s.max() > 0 else np.zeros(0, bool)
        return u[:, keep]

    u_base = _left_singular(base.vectors)
    u_other = _left_singular(other.vectors)
    if u_base.shape[1] == 0 or u_other.shape[1] == 0:
        return 0.0
    overlap = np.linalg.norm(u_base.T @ u_other, ord="fro") ** 2
    return float(overlap / max(u_base.shape[1], u_other.shape[1]))


def downstream_instability(
    predictions_a: np.ndarray, predictions_b: np.ndarray
) -> float:
    """Fraction of examples whose predictions differ between two models.

    Leszczynski et al. define downstream instability as the expected
    prediction disagreement between models trained on two embeddings; this
    is its empirical estimator on a shared evaluation set.
    """
    if predictions_a.shape != predictions_b.shape:
        raise ValidationError(
            f"prediction shape mismatch: {predictions_a.shape} vs {predictions_b.shape}"
        )
    if len(predictions_a) == 0:
        raise ValidationError("cannot measure instability on zero predictions")
    return float(np.mean(predictions_a != predictions_b))


def align_procrustes(
    source: EmbeddingMatrix, target: EmbeddingMatrix
) -> EmbeddingMatrix:
    """Rotate ``source`` onto ``target`` with the best orthogonal map.

    Solves ``min_R ||source R - target||_F`` over orthogonal ``R``
    (orthogonal Procrustes). Embeddings trained from different seeds agree
    only up to rotation, so version comparison must align first — this is
    the tool the embedding store's drift monitor uses.
    """
    _check_same_rows(source, target)
    if source.dim != target.dim:
        raise ValidationError(
            f"dimension mismatch: {source.dim} vs {target.dim}; "
            "pad or project before aligning"
        )
    rotation, __ = orthogonal_procrustes(source.vectors, target.vectors)
    return EmbeddingMatrix(vectors=source.vectors @ rotation)


def semantic_displacement(
    a: EmbeddingMatrix,
    b: EmbeddingMatrix,
    align: bool = True,
) -> np.ndarray:
    """Per-row cosine distance between two embedding versions.

    With ``align=True`` (default) ``a`` is first Procrustes-rotated onto
    ``b`` so only real semantic movement is measured, not basis changes.
    Returns ``1 - cos(a_i, b_i)`` per row, in [0, 2]. Rows that are zero in
    *both* versions (e.g. never-trained tail entities) have not moved and
    score 0; a row that is zero in exactly one version scores 1.
    """
    _check_same_rows(a, b)
    source = align_procrustes(a, b) if align else a
    left = source.normalized()
    right = b.normalized()
    cosines = np.einsum("nd,nd->n", left, right)
    norms_a = np.linalg.norm(source.vectors, axis=1)
    norms_b = np.linalg.norm(b.vectors, axis=1)
    tolerance = 1e-9 * max(norms_a.max(), norms_b.max(), 1.0)
    cosines[(norms_a <= tolerance) & (norms_b <= tolerance)] = 1.0
    return 1.0 - cosines


def neighborhood_jaccard(
    a: EmbeddingMatrix, b: EmbeddingMatrix, k: int = 10
) -> float:
    """Mean Jaccard similarity of k-NN sets — a scalar version-similarity.

    Rotation-invariant (neighbour sets do not change under orthogonal
    maps), so no alignment is needed; useful as a single drift score.
    """
    _check_same_rows(a, b)
    neighbors_a = a.nearest_neighbors_batch(np.arange(a.n), k)
    neighbors_b = b.nearest_neighbors_batch(np.arange(b.n), k)
    scores = np.empty(a.n)
    for i in range(a.n):
        set_a = set(neighbors_a[i].tolist())
        set_b = set(neighbors_b[i].tolist())
        union = len(set_a | set_b)
        scores[i] = len(set_a & set_b) / union if union else 1.0
    return float(scores.mean())
