"""Self-supervised embedding trainers (pure numpy).

Three trainers cover the paper's pretraining needs:

* :func:`train_sgns` — word2vec skip-gram with negative sampling, the
  canonical stochastic trainer. Its seed-to-seed variance is exactly what
  the stability/instability experiments (E2, E4) measure.
* :func:`train_ppmi_svd` — PPMI matrix factorization, the deterministic
  spectral counterpart (Levy & Goldberg showed SGNS implicitly factorizes a
  shifted PMI matrix). Used as the base embedding for compression
  experiments (E3).
* :func:`train_entity_embeddings` — entity/token co-embeddings from mention
  contexts, the self-supervised signal Bootleg-style NED builds on (E1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.corpus import SyntheticCorpus
from repro.datagen.kb import Mention
from repro.embeddings.base import EmbeddingMatrix
from repro.errors import TrainingError, ValidationError


@dataclass(frozen=True)
class SgnsConfig:
    """Hyperparameters for :func:`train_sgns`."""

    dim: int = 32
    window: int = 3
    negatives: int = 5
    epochs: int = 3
    learning_rate: float = 0.025
    batch_size: int = 256
    max_grad_norm: float = 5.0

    def validate(self) -> None:
        if self.dim <= 0 or self.window <= 0 or self.negatives <= 0:
            raise ValidationError("dim, window and negatives must be positive")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValidationError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValidationError(f"learning_rate must be positive ({self.learning_rate=})")


def _skipgram_pairs(
    sentences: list[np.ndarray], window: int
) -> tuple[np.ndarray, np.ndarray]:
    """All (center, context) pairs within ``window`` positions."""
    centers: list[np.ndarray] = []
    contexts: list[np.ndarray] = []
    for sentence in sentences:
        length = len(sentence)
        for offset in range(1, window + 1):
            if offset >= length:
                break
            centers.append(sentence[:-offset])
            contexts.append(sentence[offset:])
            centers.append(sentence[offset:])
            contexts.append(sentence[:-offset])
    if not centers:
        raise TrainingError("no skip-gram pairs: sentences too short for the window")
    return np.concatenate(centers), np.concatenate(contexts)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def train_sgns(
    corpus: SyntheticCorpus,
    config: SgnsConfig = SgnsConfig(),
    seed: int = 0,
) -> EmbeddingMatrix:
    """Train skip-gram-negative-sampling word embeddings.

    Negatives are drawn from the unigram distribution raised to 3/4 (the
    word2vec heuristic). Input and output matrices are trained; the input
    matrix is returned, matching standard practice.
    """
    config.validate()
    rng = np.random.default_rng(seed)
    vocab = corpus.vocab_size

    centers, contexts = _skipgram_pairs(corpus.sentences, config.window)
    n_pairs = len(centers)

    freq = corpus.word_frequencies.astype(float) + 1.0
    neg_probs = freq**0.75
    neg_probs /= neg_probs.sum()

    scale = 1.0 / config.dim
    w_in = rng.uniform(-scale, scale, size=(vocab, config.dim))
    w_out = np.zeros((vocab, config.dim))

    for epoch in range(config.epochs):
        order = rng.permutation(n_pairs)
        lr = config.learning_rate * (1.0 - epoch / config.epochs * 0.5)
        for start in range(0, n_pairs, config.batch_size):
            batch = order[start : start + config.batch_size]
            c = centers[batch]
            o = contexts[batch]
            b = len(batch)

            negatives = rng.choice(
                vocab, size=(b, config.negatives), p=neg_probs
            )

            v_c = w_in[c]  # (b, d)
            v_o = w_out[o]  # (b, d)
            v_n = w_out[negatives]  # (b, k, d)

            pos_score = _sigmoid(np.einsum("bd,bd->b", v_c, v_o))
            neg_score = _sigmoid(np.einsum("bd,bkd->bk", v_c, v_n))

            # Gradients of the SGNS objective.
            g_pos = (pos_score - 1.0)[:, None]  # (b, 1)
            g_neg = neg_score[:, :, None]  # (b, k, 1)

            grad_c = g_pos * v_o + np.einsum("bkd,bko->bd", v_n, g_neg)
            grad_o = g_pos * v_c
            grad_n = g_neg * v_c[:, None, :]

            # Per-example gradient clipping: large batches accumulate many
            # updates onto Zipf-head rows, which diverges without a bound.
            limit = config.max_grad_norm
            grad_c = np.clip(grad_c, -limit, limit)
            grad_o = np.clip(grad_o, -limit, limit)
            grad_n = np.clip(grad_n, -limit, limit)

            np.add.at(w_in, c, -lr * grad_c)
            np.add.at(w_out, o, -lr * grad_o)
            np.add.at(
                w_out,
                negatives.ravel(),
                -lr * grad_n.reshape(-1, config.dim),
            )

    return EmbeddingMatrix(vectors=w_in)


@dataclass(frozen=True)
class PpmiSvdConfig:
    """Hyperparameters for :func:`train_ppmi_svd`."""

    dim: int = 32
    window: int = 3
    shift: float = 1.0
    eigen_weight: float = 0.5

    def validate(self) -> None:
        if self.dim <= 0 or self.window <= 0:
            raise ValidationError("dim and window must be positive")
        if self.shift < 0:
            raise ValidationError(f"shift must be non-negative ({self.shift=})")
        if not 0.0 <= self.eigen_weight <= 1.0:
            raise ValidationError(f"eigen_weight must be in [0, 1] ({self.eigen_weight=})")


def _cooccurrence_counts(
    sentences: list[np.ndarray], vocab: int, window: int
) -> np.ndarray:
    counts = np.zeros((vocab, vocab))
    for sentence in sentences:
        length = len(sentence)
        for offset in range(1, window + 1):
            if offset >= length:
                break
            left = sentence[:-offset]
            right = sentence[offset:]
            np.add.at(counts, (left, right), 1.0)
            np.add.at(counts, (right, left), 1.0)
    return counts


def ppmi_matrix(counts: np.ndarray, shift: float = 1.0) -> np.ndarray:
    """Positive pointwise mutual information of a co-occurrence matrix.

    ``shift`` subtracts ``log(shift)`` before clamping at zero (the SGNS
    negative-count analogue); ``shift=1`` is plain PPMI.
    """
    total = counts.sum()
    if total == 0:
        raise TrainingError("empty co-occurrence matrix")
    row = counts.sum(axis=1, keepdims=True)
    col = counts.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        pmi = np.log((counts * total) / (row * col))
    pmi[~np.isfinite(pmi)] = -np.inf
    if shift > 0:
        pmi -= np.log(shift) if shift != 1.0 else 0.0
    return np.maximum(pmi, 0.0)


def train_ppmi_svd(
    corpus: SyntheticCorpus,
    config: PpmiSvdConfig = PpmiSvdConfig(),
    seed: int = 0,
) -> EmbeddingMatrix:
    """Deterministic spectral embeddings: truncated SVD of the PPMI matrix.

    Rows are ``U_k diag(S_k)^eigen_weight`` — ``eigen_weight=0.5`` is the
    symmetric weighting common in practice. ``seed`` only matters when the
    spectrum is degenerate and is accepted for interface symmetry.
    """
    config.validate()
    counts = _cooccurrence_counts(corpus.sentences, corpus.vocab_size, config.window)
    ppmi = ppmi_matrix(counts, shift=config.shift)
    u, s, __ = np.linalg.svd(ppmi, full_matrices=False)
    k = min(config.dim, len(s))
    vectors = u[:, :k] * (s[:k] ** config.eigen_weight)
    if k < config.dim:
        vectors = np.pad(vectors, ((0, 0), (0, config.dim - k)))
    return EmbeddingMatrix(vectors=vectors)


def train_entity_embeddings(
    mentions: list[Mention],
    n_entities: int,
    vocab_size: int,
    dim: int = 32,
    shift: float = 1.0,
) -> tuple[EmbeddingMatrix, EmbeddingMatrix]:
    """Co-embed entities and context tokens from self-supervised mentions.

    Factorizes the *frequency-weighted* entity-by-token PPMI matrix
    (``PPMI * log(1 + count)``, a GloVe-style weighting): returns
    ``(entity_embeddings, token_embeddings)`` such that the dot product
    ``entity_vec @ token_vec`` scores how compatible an entity is with a
    context token — the memorized co-occurrence signal of a Bootleg-style
    NED model. The frequency weighting matters: plain PPMI equalizes row
    magnitudes, so truncated SVD loses head and tail entities alike; with
    it, popular entities keep their signal at low rank while entities with
    few or no training mentions end up with (near-)zero vectors — precisely
    the tail failure the paper discusses.
    """
    if n_entities <= 0 or vocab_size <= 0 or dim <= 0:
        raise ValidationError("n_entities, vocab_size and dim must be positive")
    counts = np.zeros((n_entities, vocab_size))
    for mention in mentions:
        np.add.at(counts, (mention.true_entity, mention.context), 1.0)
    if counts.sum() == 0:
        raise TrainingError("no mention/token co-occurrences to train on")

    total = counts.sum()
    row = counts.sum(axis=1, keepdims=True)
    col = counts.sum(axis=0, keepdims=True)
    row[row == 0] = 1.0
    col[col == 0] = 1.0
    with np.errstate(divide="ignore"):
        pmi = np.log((counts * total) / (row * col))
    pmi[~np.isfinite(pmi)] = 0.0
    if shift != 1.0:
        pmi -= np.log(shift)
    weighted = np.maximum(pmi, 0.0) * np.log1p(counts)

    u, s, vt = np.linalg.svd(weighted, full_matrices=False)
    k = min(dim, len(s))
    weights = np.sqrt(s[:k])
    entity_vectors = u[:, :k] * weights
    token_vectors = vt[:k].T * weights
    if k < dim:
        entity_vectors = np.pad(entity_vectors, ((0, 0), (0, dim - k)))
        token_vectors = np.pad(token_vectors, ((0, 0), (0, dim - k)))
    return EmbeddingMatrix(entity_vectors), EmbeddingMatrix(token_vectors)
