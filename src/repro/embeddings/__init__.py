"""Self-supervised embeddings: training, compression, quality metrics.

This package provides everything the embedding-ecosystem half of the paper
(section 3) needs, in pure numpy/scipy:

* :mod:`repro.embeddings.base` — the :class:`EmbeddingMatrix` container with
  similarity and nearest-neighbour queries.
* :mod:`repro.embeddings.training` — skip-gram negative sampling (word2vec),
  PPMI+SVD factorization, and Bootleg-style entity embedding trainers.
* :mod:`repro.embeddings.compression` — uniform quantization, PCA low-rank
  and k-means codebook compression (for the May et al. experiments).
* :mod:`repro.embeddings.metrics` — k-NN stability (Wendlandt et al.),
  eigenspace overlap score (May et al.), downstream instability
  (Leszczynski et al.), and Procrustes alignment utilities.
"""

from repro.embeddings.base import EmbeddingMatrix
from repro.embeddings.compression import (
    CompressionResult,
    kmeans_codebook_compress,
    pca_compress,
    product_quantize,
    uniform_quantize,
)
from repro.embeddings.metrics import (
    align_procrustes,
    downstream_instability,
    eigenspace_overlap_score,
    knn_overlap,
    semantic_displacement,
)
from repro.embeddings.training import (
    PpmiSvdConfig,
    SgnsConfig,
    train_entity_embeddings,
    train_ppmi_svd,
    train_sgns,
)

__all__ = [
    "CompressionResult",
    "EmbeddingMatrix",
    "PpmiSvdConfig",
    "SgnsConfig",
    "align_procrustes",
    "downstream_instability",
    "eigenspace_overlap_score",
    "kmeans_codebook_compress",
    "knn_overlap",
    "pca_compress",
    "product_quantize",
    "semantic_displacement",
    "train_entity_embeddings",
    "train_ppmi_svd",
    "train_sgns",
    "uniform_quantize",
]
