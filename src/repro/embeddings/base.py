"""The embedding container.

An :class:`EmbeddingMatrix` wraps an ``(n, d)`` float array of row vectors
(one per word/entity id) and provides the similarity queries the rest of the
ecosystem builds on: cosine similarity, dot products, and exact k-NN.
Approximate indexes live in :mod:`repro.index`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class EmbeddingMatrix:
    """Row-major embedding table: row ``i`` is the vector of id ``i``."""

    vectors: np.ndarray

    def __post_init__(self) -> None:
        if self.vectors.ndim != 2:
            raise ValidationError(
                f"vectors must be 2-D (got shape {self.vectors.shape})"
            )
        if not np.isfinite(self.vectors).all():
            raise ValidationError("vectors must be finite (no NaN/inf)")

    @property
    def n(self) -> int:
        return self.vectors.shape[0]

    @property
    def dim(self) -> int:
        return self.vectors.shape[1]

    def __len__(self) -> int:
        return self.n

    def vector(self, index: int) -> np.ndarray:
        return self.vectors[index]

    def normalized(self) -> np.ndarray:
        """Unit-norm copy of the matrix (zero rows stay zero)."""
        norms = np.linalg.norm(self.vectors, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return self.vectors / norms

    def cosine_similarity(self, i: int, j: int) -> float:
        a, b = self.vectors[i], self.vectors[j]
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0:
            return 0.0
        return float(a @ b / denom)

    def similarity_to(self, query: np.ndarray) -> np.ndarray:
        """Cosine similarity of every row to an external query vector."""
        norms = np.linalg.norm(self.vectors, axis=1)
        qnorm = np.linalg.norm(query)
        denom = norms * qnorm
        denom[denom == 0] = 1e-12
        return (self.vectors @ query) / denom

    def nearest_neighbors(
        self, index: int, k: int, exclude_self: bool = True
    ) -> np.ndarray:
        """Indices of the k most cosine-similar rows to row ``index``."""
        return self.nearest_neighbors_batch(np.array([index]), k, exclude_self)[0]

    def nearest_neighbors_batch(
        self, indices: np.ndarray, k: int, exclude_self: bool = True
    ) -> np.ndarray:
        """Exact k-NN for several query rows at once; shape ``(q, k)``.

        Neighbours are returned most-similar first. ``k`` is clamped to the
        number of available neighbours.
        """
        if k <= 0:
            raise ValidationError(f"k must be positive ({k=})")
        normalized = self.normalized()
        sims = normalized[indices] @ normalized.T
        if exclude_self:
            sims[np.arange(len(indices)), indices] = -np.inf
        k = min(k, self.n - (1 if exclude_self else 0))
        # argpartition then sort the top-k slice: O(n + k log k) per query.
        top = np.argpartition(-sims, kth=k - 1, axis=1)[:, :k]
        order = np.argsort(-np.take_along_axis(sims, top, axis=1), axis=1)
        return np.take_along_axis(top, order, axis=1)

    def memory_bytes(self) -> int:
        """Nominal storage footprint of the raw matrix."""
        return self.vectors.nbytes

    def subset(self, indices: np.ndarray) -> "EmbeddingMatrix":
        """A new matrix containing only the selected rows (re-indexed)."""
        return EmbeddingMatrix(vectors=self.vectors[indices].copy())
