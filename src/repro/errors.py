"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate on the concrete subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class RegistryError(ReproError):
    """A feature/entity/embedding registry operation failed."""


class NotRegisteredError(RegistryError, KeyError):
    """A name was looked up in a registry but never registered."""

    def __str__(self) -> str:  # KeyError quotes its message; undo that.
        return Exception.__str__(self)


class AlreadyRegisteredError(RegistryError):
    """A name was registered twice without an explicit overwrite."""


class ValidationError(ReproError, ValueError):
    """An object failed schema or invariant validation."""


class StorageError(ReproError):
    """An offline/online/model store operation failed."""


class PartitionNotFoundError(StorageError, KeyError):
    """A date partition was requested that was never written."""

    def __str__(self) -> str:
        return Exception.__str__(self)


class StaleFeatureError(StorageError):
    """An online feature value violated its freshness (TTL) contract."""


class SchemaMismatchError(StorageError):
    """Rows appended to a table did not match its declared schema."""


class CompatibilityError(ReproError):
    """An embedding version is incompatible with the consuming model.

    Raised by the embedding store's serving path when a model pinned to one
    embedding version would receive vectors from a different, non-aligned
    version (the paper's "dot product ... can lose meaning" hazard, section 4).
    """


class ProvenanceError(ReproError):
    """A lineage/provenance record is missing or inconsistent."""


class ServingError(ReproError):
    """An online serving request could not be satisfied."""


class DeadlineExceededError(ServingError):
    """A serving request exhausted its per-request latency budget.

    Raised by the serving gateway when a lookup (including retries and
    queue wait) cannot complete within the caller's deadline and the
    degradation policy is ``RAISE``.
    """


class TransientStoreError(StorageError):
    """A transient, retryable backing-store failure (timeout, blip).

    The fault-injection wrapper raises this to simulate network timeouts
    and intermittent store errors; the gateway's retry-with-backoff loop
    treats it as retryable.
    """


class BusError(ReproError):
    """A durable ingestion-bus operation failed (log, producer, consumer)."""


class Backpressure(BusError):
    """The producer's bounded in-flight buffer is full.

    Raised by :class:`repro.bus.producer.Producer` when buffered-but-unflushed
    bytes would exceed ``max_inflight_bytes`` and the overflow policy is
    ``RAISE`` — the bus's signal to the caller to slow down instead of
    letting memory grow without bound.
    """


class CorruptRecordError(BusError):
    """A bus log record failed CRC32 / framing validation.

    Torn tail writes are *not* reported through this error — crash-recovery
    open silently truncates them (they were never acknowledged). This error
    marks corruption found where it should be impossible, e.g. a damaged
    interior segment.
    """


class ClusterError(ReproError):
    """A cluster-plane operation failed (routing, replication, membership)."""


class WrongOwnerError(ClusterError):
    """A request landed on a node that does not own the key.

    Raised by a :class:`repro.cluster.ClusterNode` when a write reaches a
    follower (or a node whose shard does not cover the entity). The
    client treats it as a routing-staleness signal: refresh the route
    table from the coordinator and retry against the current owner.
    """


class NodeUnreachableError(ClusterError, TransientStoreError):
    """A transport send could not reach the destination node.

    Covers a dead node, an unregistered address, and an injected network
    fault (drop / partition). Subclasses
    :class:`TransientStoreError` so the standard retry machinery
    (:class:`repro.runtime.RetryPolicy`) treats it as retryable.
    """


class ReplicationError(ClusterError, TransientStoreError):
    """A write could not reach its required number of replica acks.

    The record is durably in the leader's log but under-replicated; the
    caller must treat the write as unacknowledged and retry. Retryable
    (subclasses :class:`TransientStoreError`): the background reconcile
    loop or a coordinator reconfigure normally clears the condition.
    """


class TrainingError(ReproError):
    """A model or embedding training run failed."""


class MonitoringError(ReproError):
    """A monitor was misconfigured or fed invalid data."""


class PipelineError(ReproError):
    """A pipeline stage failed or the DAG was invalid."""
