"""Training/serving skew detection.

Paper section 2.2.3 names "training-deployment data skew" as a critical
model metric. Skew is measured per feature by comparing the profile of the
data the model trained on against the profile of what serving currently
sees: numeric columns via PSI over the training histogram's bins,
categorical columns via chi-square over category rates, and null-rate
deltas for both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MonitoringError
from repro.monitoring.detectors import DriftResult, chi_square_drift, kl_divergence
from repro.quality.profile import ColumnProfile, TableProfile, histogram_on_edges


@dataclass(frozen=True)
class ColumnSkew:
    """Skew verdict for one feature column."""

    column: str
    drift: DriftResult
    null_rate_delta: float
    skewed: bool


@dataclass(frozen=True)
class SkewReport:
    """Per-column skew across a feature set, plus the overall verdict."""

    columns: dict[str, ColumnSkew]

    @property
    def skewed_columns(self) -> list[str]:
        return sorted(name for name, s in self.columns.items() if s.skewed)

    @property
    def any_skew(self) -> bool:
        return bool(self.skewed_columns)

    def worst(self) -> ColumnSkew | None:
        """The column whose drift score is largest (None if empty)."""
        if not self.columns:
            return None
        return max(self.columns.values(), key=lambda s: s.drift.score)


def _numeric_skew(
    reference: ColumnProfile,
    current_values: np.ndarray,
    kl_threshold: float,
) -> DriftResult:
    if reference.bin_edges is None:
        raise MonitoringError(f"column {reference.name!r} profile lacks bin edges")
    current_hist = histogram_on_edges(current_values, reference.bin_edges)
    score = kl_divergence(current_hist, reference.histogram)
    return DriftResult(
        metric="kl",
        score=score,
        threshold=kl_threshold,
        drifted=score > kl_threshold,
    )


def training_serving_skew(
    training_profile: TableProfile,
    serving_values: dict[str, np.ndarray],
    kl_threshold: float = 0.1,
    null_delta_threshold: float = 0.05,
    chi_alpha: float = 0.01,
) -> SkewReport:
    """Compare serving windows against the training profile column-by-column.

    ``serving_values`` maps column name to the raw serving window (NaN/-1 as
    NULL). A column is *skewed* when its distribution drifts or its null
    rate moves by more than ``null_delta_threshold``.
    """
    report: dict[str, ColumnSkew] = {}
    for name, values in serving_values.items():
        reference = training_profile.column(name)
        if reference.kind == "numeric":
            drift = _numeric_skew(reference, values, kl_threshold)
            current_nulls = float(np.isnan(values).mean()) if len(values) else 0.0
        else:
            finite = values[values >= 0]
            counts = np.bincount(finite, minlength=len(reference.histogram)).astype(float)
            if len(counts) > len(reference.histogram):
                # New category codes appeared: fold the reference forward
                # with zero expected mass so chi-square flags them.
                padded = np.zeros(len(counts))
                padded[: len(reference.histogram)] = reference.histogram
                drift = chi_square_drift(
                    padded * max(1.0, reference.row_count), counts, alpha=chi_alpha
                )
            else:
                drift = chi_square_drift(
                    reference.histogram * max(1.0, reference.row_count),
                    counts,
                    alpha=chi_alpha,
                )
            current_nulls = float((values < 0).mean()) if len(values) else 0.0

        null_delta = current_nulls - reference.null_fraction
        report[name] = ColumnSkew(
            column=name,
            drift=drift,
            null_rate_delta=null_delta,
            skewed=drift.drifted or abs(null_delta) > null_delta_threshold,
        )
    return SkewReport(columns=report)
