"""Statistical drift and outlier detectors.

Each drift detector compares a *reference* sample or distribution (what the
model trained on) against a *current* window (what serving sees) and returns
a :class:`DriftResult` with a score, the decision threshold and the verdict.
Standard industry thresholds are the defaults (PSI 0.2, KS p-value 0.01).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import MonitoringError


@dataclass(frozen=True)
class DriftResult:
    """Outcome of a drift check."""

    metric: str
    score: float
    threshold: float
    drifted: bool
    detail: str = ""


def _clean(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    return values[~np.isnan(values)]


def population_stability_index(
    reference: np.ndarray, current: np.ndarray, bins: int = 10
) -> float:
    """PSI between two numeric samples using reference-quantile bins.

    PSI < 0.1 is conventionally "no shift", 0.1-0.2 "moderate", > 0.2
    "significant". Bins are derived from reference quantiles so each holds
    ~equal reference mass; empty bins are Laplace-smoothed.
    """
    ref = _clean(reference)
    cur = _clean(current)
    if len(ref) < bins or len(cur) == 0:
        raise MonitoringError(
            f"need >= {bins} reference and >= 1 current values "
            f"(got {len(ref)}, {len(cur)})"
        )
    edges = np.quantile(ref, np.linspace(0, 1, bins + 1))
    edges[0], edges[-1] = -np.inf, np.inf
    edges = np.unique(edges)
    ref_counts, __ = np.histogram(ref, bins=edges)
    cur_counts, __ = np.histogram(cur, bins=edges)
    ref_p = (ref_counts + 1) / (ref_counts.sum() + len(ref_counts))
    cur_p = (cur_counts + 1) / (cur_counts.sum() + len(cur_counts))
    return float(np.sum((cur_p - ref_p) * np.log(cur_p / ref_p)))


def psi_drift(
    reference: np.ndarray,
    current: np.ndarray,
    threshold: float = 0.2,
    bins: int = 10,
) -> DriftResult:
    """PSI drift check with the conventional 0.2 alarm threshold."""
    score = population_stability_index(reference, current, bins=bins)
    return DriftResult(
        metric="psi",
        score=score,
        threshold=threshold,
        drifted=score > threshold,
        detail=f"bins={bins}",
    )


def ks_drift(
    reference: np.ndarray, current: np.ndarray, alpha: float = 0.01
) -> DriftResult:
    """Two-sample Kolmogorov-Smirnov drift check.

    Drift is declared when the p-value falls below ``alpha``. The *score*
    reported is the KS statistic (sup-distance between empirical CDFs).
    """
    ref = _clean(reference)
    cur = _clean(current)
    if len(ref) < 2 or len(cur) < 2:
        raise MonitoringError("KS test needs >= 2 values on each side")
    result = stats.ks_2samp(ref, cur)
    return DriftResult(
        metric="ks",
        score=float(result.statistic),
        threshold=alpha,
        drifted=bool(result.pvalue < alpha),
        detail=f"pvalue={result.pvalue:.3g}",
    )


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """KL(p || q) in nats between two histograms (Laplace-smoothed).

    Inputs are count or probability vectors over the same bins.
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise MonitoringError(f"histogram shape mismatch: {p.shape} vs {q.shape}")
    p = (p + 1e-9) / (p.sum() + 1e-9 * len(p))
    q = (q + 1e-9) / (q.sum() + 1e-9 * len(q))
    return float(np.sum(p * np.log(p / q)))


def chi_square_drift(
    reference_counts: np.ndarray,
    current_counts: np.ndarray,
    alpha: float = 0.01,
) -> DriftResult:
    """Two-sample chi-square test over per-category counts.

    ``reference_counts`` and ``current_counts`` are counts over the same
    category coding. A contingency-table test is used (rather than a
    goodness-of-fit test against the reference rates) because the reference
    proportions are themselves estimates — treating them as exact inflates
    the statistic and produces false alarms. Counts are Laplace-smoothed so
    brand-new category codes still register instead of dividing by zero.
    """
    ref = np.asarray(reference_counts, dtype=float)
    cur = np.asarray(current_counts, dtype=float)
    if ref.shape != cur.shape:
        raise MonitoringError(f"count shape mismatch: {ref.shape} vs {cur.shape}")
    if cur.sum() == 0 or ref.sum() == 0:
        raise MonitoringError("cannot test drift with empty counts")
    table = np.vstack([ref, cur]) + 0.5
    statistic, pvalue, dof, __ = stats.chi2_contingency(table)
    statistic = float(statistic)
    pvalue = float(pvalue)
    return DriftResult(
        metric="chi_square",
        score=statistic,
        threshold=alpha,
        drifted=pvalue < alpha,
        detail=f"pvalue={pvalue:.3g} dof={dof}",
    )


def zscore_outliers(
    reference: np.ndarray, current: np.ndarray, z_threshold: float = 4.0
) -> np.ndarray:
    """Mask of current values more than ``z_threshold`` reference-sigmas out.

    NaNs are never flagged (they are the null-count monitor's job).
    """
    ref = _clean(reference)
    if len(ref) < 2:
        raise MonitoringError("need >= 2 reference values for z-score outliers")
    mean = ref.mean()
    std = ref.std()
    if std == 0:
        std = 1e-12
    current = np.asarray(current, dtype=float)
    with np.errstate(invalid="ignore"):
        mask = np.abs(current - mean) / std > z_threshold
    return np.where(np.isnan(current), False, mask)


def mad_outliers(
    reference: np.ndarray, current: np.ndarray, threshold: float = 5.0
) -> np.ndarray:
    """Robust outlier mask using the median absolute deviation.

    Uses the usual 1.4826 consistency constant so ``threshold`` is in
    sigma-equivalents; robust to the reference itself containing outliers,
    which is why production monitors prefer it to plain z-scores.
    """
    ref = _clean(reference)
    if len(ref) < 2:
        raise MonitoringError("need >= 2 reference values for MAD outliers")
    median = np.median(ref)
    mad = np.median(np.abs(ref - median)) * 1.4826
    if mad == 0:
        mad = 1e-12
    current = np.asarray(current, dtype=float)
    with np.errstate(invalid="ignore"):
        mask = np.abs(current - median) / mad > threshold
    return np.where(np.isnan(current), False, mask)
