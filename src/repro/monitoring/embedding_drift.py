"""Embedding-aware drift monitoring.

Paper section 3.1: "With embeddings, standard metrics and tools for managing
tabular features are no longer adequate as embeddings are derived data. For
example, embeddings are often compared by dot product similarity, and
existing FS metrics such as null value count do not capture drifts or
changes in embeddings with respect to this metric."

:class:`EmbeddingDriftMonitor` implements the embedding-native checks —
neighbourhood overlap, aligned semantic displacement, and norm-distribution
shift — while :func:`null_count_monitor_misses_embedding_drift` demonstrates
the quoted failure mode: a tabular null-count monitor stays silent on a
drifted embedding (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embeddings.base import EmbeddingMatrix
from repro.embeddings.metrics import neighborhood_jaccard, semantic_displacement
from repro.errors import MonitoringError
from repro.monitoring.monitor import Alert, AlertLog
from repro.quality.metrics import null_fraction


@dataclass(frozen=True)
class EmbeddingDriftReport:
    """Outcome of one embedding drift check."""

    neighborhood_jaccard: float
    mean_displacement: float
    max_displacement: float
    norm_shift: float
    drifted: bool
    drifted_rows: np.ndarray

    def summary(self) -> str:
        return (
            f"jaccard={self.neighborhood_jaccard:.3f} "
            f"mean_disp={self.mean_displacement:.3f} "
            f"norm_shift={self.norm_shift:.3f} drifted={self.drifted}"
        )


class EmbeddingDriftMonitor:
    """Compares a candidate embedding version against a frozen reference.

    Three signals, any of which flags drift:

    * mean k-NN **Jaccard overlap** below ``jaccard_threshold`` — the
      neighbourhood structure (what dot-product consumers actually use)
      changed;
    * mean **aligned cosine displacement** above ``displacement_threshold``
      — rows moved even after removing any global rotation;
    * relative **norm shift** above ``norm_shift_threshold`` — a rescaling
      that silently changes every dot product downstream.
    """

    def __init__(
        self,
        reference: EmbeddingMatrix,
        log: AlertLog | None = None,
        name: str = "embedding",
        k: int = 10,
        jaccard_threshold: float = 0.5,
        displacement_threshold: float = 0.2,
        norm_shift_threshold: float = 0.25,
    ) -> None:
        if reference.n < k + 1:
            raise MonitoringError(
                f"reference must have more than k={k} rows (has {reference.n})"
            )
        self.reference = reference
        self.log = log
        self.name = name
        self.k = k
        self.jaccard_threshold = jaccard_threshold
        self.displacement_threshold = displacement_threshold
        self.norm_shift_threshold = norm_shift_threshold

    def check(
        self, candidate: EmbeddingMatrix, timestamp: float = 0.0
    ) -> EmbeddingDriftReport:
        """Evaluate a candidate version; fire an alert if drifted."""
        jaccard = neighborhood_jaccard(self.reference, candidate, k=self.k)
        displacement = semantic_displacement(self.reference, candidate, align=True)

        ref_norm = float(np.linalg.norm(self.reference.vectors, axis=1).mean())
        cand_norm = float(np.linalg.norm(candidate.vectors, axis=1).mean())
        norm_shift = abs(cand_norm - ref_norm) / max(ref_norm, 1e-12)

        drifted = (
            jaccard < self.jaccard_threshold
            or float(displacement.mean()) > self.displacement_threshold
            or norm_shift > self.norm_shift_threshold
        )
        report = EmbeddingDriftReport(
            neighborhood_jaccard=jaccard,
            mean_displacement=float(displacement.mean()),
            max_displacement=float(displacement.max()),
            norm_shift=norm_shift,
            drifted=drifted,
            drifted_rows=np.flatnonzero(
                displacement > self.displacement_threshold
            ),
        )
        if drifted and self.log is not None:
            self.log.fire(
                Alert(
                    timestamp=timestamp,
                    column=self.name,
                    kind="embedding",
                    message=report.summary(),
                    score=1.0 - jaccard,
                )
            )
        return report


def null_count_monitor_misses_embedding_drift(
    reference: EmbeddingMatrix,
    candidate: EmbeddingMatrix,
    null_rate_threshold: float = 0.01,
) -> bool:
    """True when the *tabular* null-count check would NOT flag the candidate.

    The tabular monitor only looks at NULL rates of the stored vectors. An
    embedding can be arbitrarily rotated, rescaled or partially retrained
    without producing a single NULL, so this check returning ``True`` while
    :class:`EmbeddingDriftMonitor` flags drift is the paper's point,
    reproduced.
    """
    ref_nulls = null_fraction(reference.vectors.ravel())
    cand_nulls = null_fraction(candidate.vectors.ravel())
    return abs(cand_nulls - ref_nulls) <= null_rate_threshold
