"""Retraining policy: when should a deployed model be refreshed?

Paper section 2.2.2: "As data changes over time and updates occur at
different intervals, models can become stale if not given the most
up-to-date features." The policy layer turns monitoring signals into a
retrain decision instead of leaving operators to eyeball alert streams.

A :class:`RetrainingPolicy` consumes the alert log plus elapsed time and
recommends one of ``{"none", "refresh_features", "retrain"}``:

* sustained **drift** alerts on the model's input features => retrain
  (the world changed; fresher features alone will not fix the fit);
* **freshness** alerts without drift => refresh features / fix the
  pipeline (the model is fine, its inputs are late);
* a maximum model age acts as a backstop even when monitoring is quiet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.monitoring.monitor import AlertLog


@dataclass(frozen=True)
class RetrainDecision:
    """The policy's recommendation and its evidence."""

    action: str  # "none" | "refresh_features" | "retrain"
    reason: str
    drift_alerts: int
    freshness_alerts: int
    model_age: float


class RetrainingPolicy:
    """Rule-based retraining recommendation from monitoring signals."""

    def __init__(
        self,
        watched_columns: set[str],
        drift_alert_threshold: int = 3,
        freshness_alert_threshold: int = 1,
        max_model_age: float | None = None,
        window: float = 86400.0,
    ) -> None:
        if not watched_columns:
            raise ValidationError("policy needs at least one watched column")
        if drift_alert_threshold < 1 or freshness_alert_threshold < 1:
            raise ValidationError("alert thresholds must be >= 1")
        if max_model_age is not None and max_model_age <= 0:
            raise ValidationError(f"max_model_age must be positive ({max_model_age=})")
        if window <= 0:
            raise ValidationError(f"window must be positive ({window=})")
        self.watched_columns = set(watched_columns)
        self.drift_alert_threshold = drift_alert_threshold
        self.freshness_alert_threshold = freshness_alert_threshold
        self.max_model_age = max_model_age
        self.window = window

    def decide(
        self, log: AlertLog, now: float, model_trained_at: float
    ) -> RetrainDecision:
        """Recommend an action given the alert log and the model's age."""
        if model_trained_at > now:
            raise ValidationError("model_trained_at is in the future")
        recent = [
            a
            for a in log.alerts
            if a.timestamp > now - self.window and a.column in self.watched_columns
        ]
        drift = sum(1 for a in recent if a.kind in ("drift", "embedding"))
        freshness = sum(1 for a in recent if a.kind == "freshness")
        age = now - model_trained_at

        if drift >= self.drift_alert_threshold:
            action, reason = "retrain", (
                f"{drift} drift alerts on watched features within "
                f"{self.window:.0f}s"
            )
        elif freshness >= self.freshness_alert_threshold:
            action, reason = "refresh_features", (
                f"{freshness} freshness alerts: inputs are late, model is fine"
            )
        elif self.max_model_age is not None and age > self.max_model_age:
            action, reason = "retrain", (
                f"model age {age:.0f}s exceeds backstop "
                f"{self.max_model_age:.0f}s"
            )
        else:
            action, reason = "none", "monitoring quiet and model fresh"
        return RetrainDecision(
            action=action,
            reason=reason,
            drift_alerts=drift,
            freshness_alerts=freshness,
            model_age=age,
        )
