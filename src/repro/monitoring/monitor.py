"""Windowed feature monitors and the alert log.

A :class:`FeatureMonitor` holds a frozen reference sample per column and
evaluates sliding windows of new values against it — the "near real-time
outlier and input drift detection" of paper section 2.2.3. Fired alerts go
to an :class:`AlertLog`, which monitoring benchmarks score against injected
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MonitoringError
from repro.monitoring.detectors import (
    DriftResult,
    ks_drift,
    psi_drift,
    zscore_outliers,
)


@dataclass(frozen=True)
class Alert:
    """A monitoring alert."""

    timestamp: float
    column: str
    kind: str  # "drift" | "null_rate" | "outlier" | "freshness" | "embedding"
    message: str
    score: float


@dataclass
class AlertLog:
    """Append-only alert sink."""

    alerts: list[Alert] = field(default_factory=list)

    def fire(self, alert: Alert) -> None:
        self.alerts.append(alert)

    def for_column(self, column: str) -> list[Alert]:
        return [a for a in self.alerts if a.column == column]

    def of_kind(self, kind: str) -> list[Alert]:
        return [a for a in self.alerts if a.kind == kind]

    def __len__(self) -> int:
        return len(self.alerts)


@dataclass(frozen=True)
class MonitorConfig:
    """Thresholds for a :class:`FeatureMonitor`."""

    psi_threshold: float = 0.2
    ks_alpha: float = 0.01
    null_rate_threshold: float = 0.10
    outlier_z: float = 4.0
    outlier_rate_threshold: float = 0.01
    use_ks: bool = True


class FeatureMonitor:
    """Checks windows of one numeric column against a frozen reference.

    Each :meth:`observe` call evaluates one window and fires zero or more
    alerts: distribution drift (PSI and optionally KS), a null-rate breach,
    and an excess-outlier-rate breach.
    """

    def __init__(
        self,
        column: str,
        reference: np.ndarray,
        log: AlertLog,
        config: MonitorConfig = MonitorConfig(),
    ) -> None:
        reference = np.asarray(reference, dtype=float)
        finite = reference[~np.isnan(reference)]
        if len(finite) < 20:
            raise MonitoringError(
                f"monitor for {column!r} needs >= 20 non-null reference values"
            )
        self.column = column
        self.reference = reference
        self.reference_null_rate = float(np.isnan(reference).mean())
        self.log = log
        self.config = config
        self.windows_observed = 0

    def observe(self, window: np.ndarray, timestamp: float) -> list[Alert]:
        """Evaluate one serving window; fire and return any alerts."""
        window = np.asarray(window, dtype=float)
        if len(window) == 0:
            raise MonitoringError("cannot observe an empty window")
        fired: list[Alert] = []

        null_rate = float(np.isnan(window).mean())
        if null_rate - self.reference_null_rate > self.config.null_rate_threshold:
            fired.append(
                Alert(
                    timestamp=timestamp,
                    column=self.column,
                    kind="null_rate",
                    message=(
                        f"null rate {null_rate:.2%} vs reference "
                        f"{self.reference_null_rate:.2%}"
                    ),
                    score=null_rate - self.reference_null_rate,
                )
            )

        finite = window[~np.isnan(window)]
        if len(finite) >= 10:
            drift_results: list[DriftResult] = [
                psi_drift(self.reference, finite, threshold=self.config.psi_threshold)
            ]
            if self.config.use_ks:
                drift_results.append(
                    ks_drift(self.reference, finite, alpha=self.config.ks_alpha)
                )
            for result in drift_results:
                if result.drifted:
                    fired.append(
                        Alert(
                            timestamp=timestamp,
                            column=self.column,
                            kind="drift",
                            message=f"{result.metric} score {result.score:.3f} ({result.detail})",
                            score=result.score,
                        )
                    )

            outliers = zscore_outliers(self.reference, finite, self.config.outlier_z)
            rate = float(outliers.mean())
            if rate > self.config.outlier_rate_threshold:
                fired.append(
                    Alert(
                        timestamp=timestamp,
                        column=self.column,
                        kind="outlier",
                        message=f"outlier rate {rate:.2%} at z>{self.config.outlier_z}",
                        score=rate,
                    )
                )

        for alert in fired:
            self.log.fire(alert)
        self.windows_observed += 1
        return fired


class FreshnessMonitor:
    """Alerts when a feature's staleness exceeds its cadence budget.

    The paper's "feature freshness" metric operationalized: a feature whose
    newest materialized value is older than ``max_staleness`` means the
    orchestrated update cadence is being missed.
    """

    def __init__(self, view_name: str, max_staleness: float, log: AlertLog) -> None:
        if max_staleness <= 0:
            raise MonitoringError(f"max_staleness must be positive ({max_staleness=})")
        self.view_name = view_name
        self.max_staleness = max_staleness
        self.log = log

    def observe(self, last_event_time: float | None, now: float) -> Alert | None:
        """Check the newest materialization time against the budget."""
        staleness = (
            float("inf") if last_event_time is None else now - last_event_time
        )
        if staleness <= self.max_staleness:
            return None
        alert = Alert(
            timestamp=now,
            column=self.view_name,
            kind="freshness",
            message=(
                f"stale by {staleness:.0f}s (budget {self.max_staleness:.0f}s)"
            ),
            score=staleness,
        )
        self.log.fire(alert)
        return alert
