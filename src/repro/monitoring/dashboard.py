"""The operator dashboard: one text pane over the whole deployment.

Paper section 2.2.3: metrics "allow users to be informed of potential
'gremlins' in the system". This module renders a single human-readable
status report combining the four health surfaces an on-call engineer needs:

* alert summary (counts by kind, most recent per column),
* feature freshness per view against its cadence budget,
* embedding version status (latest version, quality-vs-previous metrics,
  which models are pinned behind),
* deployed-model inventory with lineage,
* serving-tier health (per-endpoint p50/p95/p99 latency, QPS, cache
  hit-rate, queue pressure, error/degraded counts) when a
  :class:`~repro.serving.gateway.ServingGateway` is attached,
* the shared :class:`~repro.runtime.telemetry.MetricsRegistry` — when the
  planes share one registry, :func:`telemetry_section` renders every
  registered series (the same data :meth:`~repro.runtime.telemetry.MetricsRegistry.to_prometheus`
  and :meth:`~repro.runtime.telemetry.MetricsRegistry.to_json` export),
* runtime service health (:func:`services_section`) — one line per
  :class:`~repro.runtime.Service` in a running stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.embedding_store import EmbeddingStore
from repro.core.feature_store import FeatureStore
from repro.monitoring.monitor import AlertLog
from repro.runtime.telemetry import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
)

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.bus.consumer import Consumer
    from repro.bus.metrics import BusMetrics
    from repro.net.server import FeatureServer
    from repro.runtime.lifecycle import Service
    from repro.serving.gateway import ServingGateway
    from repro.vecserve.service import VectorService


@dataclass(frozen=True)
class DashboardSection:
    """One titled block of the rendered dashboard."""

    title: str
    lines: tuple[str, ...]

    def render(self) -> str:
        bar = "-" * max(20, len(self.title) + 4)
        return "\n".join([bar, f"| {self.title}", bar, *self.lines])


def alert_section(log: AlertLog, max_recent: int = 5) -> DashboardSection:
    """Counts by alert kind plus the most recent alerts."""
    if not log.alerts:
        return DashboardSection("alerts", ("no alerts",))
    by_kind: dict[str, int] = {}
    for alert in log.alerts:
        by_kind[alert.kind] = by_kind.get(alert.kind, 0) + 1
    lines = [
        "counts: " + ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
    ]
    recent = sorted(log.alerts, key=lambda a: a.timestamp, reverse=True)
    for alert in recent[:max_recent]:
        lines.append(
            f"  t={alert.timestamp:.0f} [{alert.kind}] {alert.column}: "
            f"{alert.message}"
        )
    return DashboardSection("alerts", tuple(lines))


def freshness_section(store: FeatureStore, now: float | None = None) -> DashboardSection:
    """Per-view staleness against the cadence budget."""
    now = store.clock.now() if now is None else now
    lines = []
    for name in store.registry.view_names():
        view = store.registry.view(name)
        table = store.offline.table(view.materialized_table)
        last = table.last_event_time()
        if last is None:
            lines.append(f"{name} v{view.version}: NEVER MATERIALIZED")
            continue
        staleness = now - last
        status = "ok" if staleness <= view.cadence else "STALE"
        lines.append(
            f"{name} v{view.version}: {staleness:.0f}s old "
            f"(cadence {view.cadence:.0f}s) [{status}]"
        )
    if not lines:
        lines = ["no feature views published"]
    return DashboardSection("feature freshness", tuple(lines))


def embedding_section(
    embeddings: EmbeddingStore, store: FeatureStore
) -> DashboardSection:
    """Latest versions, quality metrics, and stale-pinned consumers."""
    lines = []
    for name in embeddings.names():
        latest = embeddings.get(name)
        quality = latest.metrics.get("knn_jaccard_vs_previous")
        quality_text = "first version" if quality is None else f"jaccard={quality:.2f}"
        lines.append(
            f"{name}: v{latest.version} ({latest.provenance.trainer}, "
            f"dim={latest.embedding.dim}, {quality_text})"
        )
        for record in store.models.consumers_of_embedding(name):
            pinned = record.embedding_versions[name]
            if pinned == latest.version:
                continue
            compatible = embeddings.is_compatible(name, pinned, latest.version)
            state = "compatible" if compatible else "BLOCKED - retrain or align"
            lines.append(
                f"  consumer {record.name} pinned to v{pinned} ({state})"
            )
    if not lines:
        lines = ["no embeddings registered"]
    return DashboardSection("embeddings", tuple(lines))


def compiler_section(store: FeatureStore) -> DashboardSection:
    """Pipeline-compiler accounting: what the optimizer saved.

    Reads :attr:`FeatureStore.compiler_stats` (cumulative since store
    creation). The headline numbers are physical scans saved by
    shared-scan fusion and rows/columns never touched thanks to
    predicate pushdown and projection pruning.
    """
    stats = store.compiler_stats
    if not stats:
        return DashboardSection(
            "pipeline compiler", ("no compiled plans executed",)
        )
    touched = stats.get("rows_scanned", 0)
    pruned = stats.get("rows_pruned", 0)
    total = touched + pruned
    pruned_pct = (100.0 * pruned / total) if total else 0.0
    lines = (
        f"views compiled: {stats.get('views_compiled', 0)} "
        f"(fused: {stats.get('views_fused', 0)} in "
        f"{stats.get('fusion_groups', 0)} group(s))",
        f"scans saved by fusion: {stats.get('scans_saved', 0)}",
        f"rows scanned: {touched} (pruned: {pruned}, {pruned_pct:.0f}%)",
        f"columns decoded: {stats.get('columns_decoded', 0)} "
        f"(pruned: {stats.get('columns_pruned', 0)})",
    )
    return DashboardSection("pipeline compiler", lines)


def model_section(store: FeatureStore) -> DashboardSection:
    """Deployed models with lineage and headline metrics."""
    lines = []
    for name in store.models.model_names():
        record = store.models.get(name)
        metric_text = ", ".join(
            f"{k}={v:.3f}" for k, v in sorted(record.metrics.items())
        ) or "no metrics"
        lines.append(
            f"{name} v{record.version}: feature_set={record.feature_set} "
            f"({metric_text})"
        )
    if not lines:
        lines = ["no models registered"]
    return DashboardSection("models", tuple(lines))


def serving_section(gateway: "ServingGateway") -> DashboardSection:
    """Serving-tier health: latency percentiles, QPS, caching, pressure.

    The gateway's own histograms are the source of truth (the "SLO
    monitoring" surface a managed serving tier exports); this section
    renders one line per endpoint plus the cache/batch/queue summary.
    """
    snapshot = gateway.snapshot()
    lines = []
    endpoints: dict[str, dict[str, float]] = snapshot["endpoints"]  # type: ignore[assignment]
    for name, stats in sorted(endpoints.items()):
        lines.append(
            f"{name}: n={stats['requests']:.0f} qps={stats['qps']:,.0f} "
            f"p50={stats['p50_s'] * 1e3:.2f}ms p95={stats['p95_s'] * 1e3:.2f}ms "
            f"p99={stats['p99_s'] * 1e3:.2f}ms err={stats['errors']:.0f} "
            f"degraded={stats['degraded']:.0f} stale_served={stats['stale_served']:.0f}"
        )
    cache = snapshot.get("cache")
    if cache is not None:
        lines.append(
            f"cache: hit_rate={cache.hit_rate:.2f} "
            f"(hits={cache.hits} stale={cache.stale_hits} misses={cache.misses}) "
            f"hot={cache.hot_size} keys (hot_hits={cache.hot_hits}) "
            f"evictions={cache.evictions} invalidations={cache.invalidations}"
        )
    batch = snapshot.get("batch")
    if batch is not None:
        lines.append(
            f"batching: {batch['batches']} batches, "
            f"mean size {batch['mean_batch_size']:.1f}"
        )
    lines.append(
        f"pressure: inflight={snapshot['inflight']} "
        f"(peak {snapshot['inflight_peak']}) "
        f"queue_depth={snapshot['queue_depth']} "
        f"(peak {snapshot['queue_depth_peak']})"
    )
    if not endpoints:
        lines = ["no requests served"] + lines[-1:]
    freshness = snapshot.get("freshness") or {}
    for namespace, stats in sorted(freshness.items()):  # type: ignore[union-attr]
        lines.append(
            f"freshness {namespace}: n={stats['count']:.0f} "
            f"p50={stats['p50_s']:.3f}s p99={stats['p99_s']:.3f}s "
            f"(event_time -> online write)"
        )
    return DashboardSection("serving", tuple(lines))


def bus_section(
    metrics: "BusMetrics", consumer: "Consumer | None" = None
) -> DashboardSection:
    """Ingest-plane health: throughput, consumer lag, end-to-end freshness.

    The write-path counterpart of :func:`serving_section` — the numbers
    that say whether the bus is keeping the online store fresh: produce
    and consume rates, backpressure stalls, per-partition consumer lag
    (live from ``consumer`` if given, else the last recorded gauges), and
    the per-namespace ``event_time → online write_time`` distribution.
    """
    snapshot = metrics.snapshot()
    lines = [
        f"produced: {snapshot['produced']} records "
        f"({snapshot['produce_events_s']:,.0f}/s, "
        f"{snapshot['produced_bytes']} bytes, "
        f"{snapshot['produce_batches']} batches, "
        f"backpressure={snapshot['backpressure_events']})",
        f"consumed: {snapshot['consumed']} records "
        f"({snapshot['consume_events_s']:,.0f}/s, "
        f"commits={snapshot['commits']}, applied={snapshot['applied']}, "
        f"duplicates_skipped={snapshot['duplicates_skipped']})",
    ]
    lags = consumer.lag() if consumer is not None else {
        int(p): lag for p, lag in snapshot["lag"].items()  # type: ignore[union-attr]
    }
    if lags:
        total = sum(lags.values())
        per_partition = " ".join(f"p{p}={lag}" for p, lag in sorted(lags.items()))
        lines.append(f"consumer lag: total={total} ({per_partition})")
    else:
        lines.append("consumer lag: no consumers")
    freshness: dict[str, dict[str, float]] = snapshot["freshness"]  # type: ignore[assignment]
    for namespace, stats in sorted(freshness.items()):
        lines.append(
            f"freshness {namespace}: n={stats['count']:.0f} "
            f"p50={stats['p50_s']:.3f}s p99={stats['p99_s']:.3f}s"
        )
    if not freshness:
        lines.append("freshness: no sink writes yet")
    return DashboardSection("ingestion bus", tuple(lines))


def vector_section(service: "VectorService") -> DashboardSection:
    """Vector-plane health: per-table recall, latency, delta pressure.

    One line per served ``(name, version)`` table with the numbers that
    catch the two silent ANN failure modes — quality (sampled online
    recall@k drifting down) and latency (partial results, shard misses)
    — plus the write-side pressure gauges (delta rows/tombstones, age of
    the oldest un-compacted mutation, blue/green generation) and the
    storage row: codec, bytes/vector, and recall attributed per
    ``(generation, codec)`` context so a re-encode that degrades quality
    points at itself.
    """
    snapshot = service.snapshot()
    tables: dict[str, dict[str, object]] = snapshot["tables"]  # type: ignore[assignment]
    lines = []
    for key, stats in sorted(tables.items()):
        recall = stats["recall_estimate"]
        recall_text = (
            "no samples" if recall is None
            else f"recall@{stats['recall_k']}={recall:.3f}"
        )
        latency: dict[str, float] = stats["latency"]  # type: ignore[assignment]
        latest = " [latest]" if stats["latest"] else ""
        lines.append(
            f"{key}{latest}: {stats['backend']} x{stats['n_shards']} "
            f"gen={stats['generation']} rows={stats['snapshot_rows']} "
            f"{recall_text}"
        )
        lines.append(
            f"  storage: codec={stats['codec']} "
            f"bytes/vec={stats['bytes_per_vector']} "
            f"resident={stats['bytes_resident']}B"
        )
        by_codec: dict[str, float] = stats.get("recall_by_codec") or {}  # type: ignore[assignment]
        if by_codec:
            lines.append(
                "  recall by codec: "
                + " ".join(
                    f"{label}={value:.3f}"
                    for label, value in sorted(by_codec.items())
                )
            )
        lines.append(
            f"  queries: n={stats['queries']} "
            f"p50={latency['p50_s'] * 1e3:.2f}ms "
            f"p95={latency['p95_s'] * 1e3:.2f}ms "
            f"partial={stats['partials']} misses={stats['shard_misses']} "
            f"errors={stats['shard_errors']}"
        )
        lines.append(
            f"  delta: rows={stats['delta_rows']} "
            f"tombstones={stats['delta_tombstones']} "
            f"staleness={stats['delta_staleness_s']:.3f}s "
            f"(upserts={stats['upserts']} removes={stats['removes']} "
            f"compactions={stats['compactions']})"
        )
    if not lines:
        lines = ["no vector tables served"]
    return DashboardSection("vector serving", tuple(lines))


def network_section(server: "FeatureServer") -> DashboardSection:
    """Network front-end health: traffic, sheds, drain state, latency.

    Duck-typed over ``server.snapshot()`` (the layering lint forbids a
    runtime ``monitoring → net`` import: the network plane is the top of
    the DAG, so the dashboard renders its exported state, not its
    types). Shows the admission story at a glance — in-flight vs
    watermark vs hard cap, per-priority shed counts, per-tenant
    throttles — because "are we shedding, and *whom*" is the question an
    operator asks first when p99 moves.
    """
    snap = server.snapshot()
    admission: dict[str, object] = snap["admission"]  # type: ignore[assignment]
    shed: dict[str, int] = admission["shed"]  # type: ignore[assignment]
    address = snap.get("address")
    location = f"{address[0]}:{address[1]}" if address else "unbound"
    state = "DRAINING" if snap["draining"] else "serving"
    lines = [
        f"{location} [{state}] requests={snap['requests']} "
        f"completed={snap['completed']} "
        f"open_connections={snap['open_connections']}",
        f"admission: inflight={admission['inflight']} "
        f"(peak={admission['inflight_peak']}) "
        f"watermark={admission['shed_watermark']} "
        f"cap={admission['max_inflight']}",
        f"refused: throttled={admission['throttled']} "
        + " ".join(
            f"shed[{priority}]={count}"
            for priority, count in sorted(shed.items())
        ),
    ]
    responses: dict[str, int] = snap.get("responses_by_status") or {}  # type: ignore[assignment]
    if responses:
        lines.append(
            "responses: "
            + " ".join(
                f"{status}={count}"
                for status, count in sorted(responses.items())
            )
        )
    latency: dict[str, dict[str, float]] = snap.get("latency_by_route") or {}  # type: ignore[assignment]
    for route, summary in sorted(latency.items()):
        if summary["count"]:
            lines.append(
                f"  {route}: n={summary['count']:.0f} "
                f"p50={summary['p50_s'] * 1e3:.2f}ms "
                f"p99={summary['p99_s'] * 1e3:.2f}ms"
            )
    return DashboardSection("network serving", tuple(lines))


def cluster_section(cluster) -> DashboardSection:
    """Cluster plane health: roles, replication lag, ring spread, failovers.

    Duck-typed over ``cluster.snapshot()`` for the same reason as
    :func:`network_section` — ``repro.cluster`` is a top of the DAG, so
    the dashboard renders its exported state, never its types. One line
    per node answers the on-call questions in order: who leads each
    shard, is anyone dead, how far behind is each follower (records and
    seconds), and has the ring's key ownership stayed balanced.
    """
    snap = cluster.snapshot()
    coordinator: dict[str, object] = snap["coordinator"]  # type: ignore[assignment]
    transport: dict[str, object] = snap.get("transport") or {}  # type: ignore[assignment]
    shards: dict[str, dict] = coordinator["shards"]  # type: ignore[assignment]
    lines = [
        f"shards={len(shards)} route_version={coordinator['route_version']} "
        f"failovers={coordinator['failovers']} "
        f"reconfigures={coordinator['reconfigures']}",
    ]
    for record in coordinator["nodes"]:  # type: ignore[union-attr]
        state = "alive" if record["alive"] else "DEAD"
        line = (
            f"  {record['node_id']} [{record['role']}/{state}] "
            f"shard={record['shard_id']}"
        )
        if record["role"] == "follower" and record["alive"]:
            line += (
                f" lag={record['lag_records']}rec"
                f"/{record['lag_seconds'] * 1e3:.0f}ms"
            )
        lines.append(line)
    spread: dict[str, float] = coordinator.get("ring_spread") or {}  # type: ignore[assignment]
    if spread:
        fractions = sorted(spread.values())
        lines.append(
            "ring spread: "
            + " ".join(
                f"{member}={fraction:.1%}"
                for member, fraction in sorted(spread.items())
            )
            + f" (max/min={fractions[-1] / fractions[0]:.2f})"
        )
    if transport:
        lines.append(
            f"transport: requests={transport['requests']} "
            f"unreachable={transport['unreachable']} "
            f"dropped={transport['dropped']} "
            f"partitions={len(transport.get('partitions') or [])}"
        )
    return DashboardSection("cluster", tuple(lines))


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def telemetry_section(
    registry: MetricsRegistry, max_series_per_metric: int = 4
) -> DashboardSection:
    """Registry-driven view over every series the deployment registered.

    This section is computed purely from
    :meth:`~repro.runtime.telemetry.MetricsRegistry.collect` — the same
    source of truth behind the Prometheus (``to_prometheus``) and JSON
    (``to_json``) exporters — so a metric any plane registers appears
    here with zero dashboard changes. One line per metric name with its
    type and series count; up to ``max_series_per_metric`` labelled
    series are itemized (counters/gauges by value, histograms by
    ``n/p50/p99``).
    """
    by_name: dict[str, list[tuple[dict[str, str], object]]] = {}
    for name, labels, metric in registry.collect():
        by_name.setdefault(name, []).append((labels, metric))
    lines: list[str] = []
    for name in sorted(by_name):
        series = sorted(
            by_name[name], key=lambda item: tuple(sorted(item[0].items()))
        )
        kind = (
            "counter"
            if isinstance(series[0][1], Counter)
            else "gauge"
            if isinstance(series[0][1], Gauge)
            else "histogram"
        )
        lines.append(f"{name} ({kind}, {len(series)} series)")
        for labels, metric in series[:max_series_per_metric]:
            label_text = _format_labels(labels) or "(no labels)"
            if isinstance(metric, LatencyHistogram):
                summary = metric.summary()
                lines.append(
                    f"  {label_text}: n={summary['count']:.0f} "
                    f"p50={summary['p50_s']:.6f}s p99={summary['p99_s']:.6f}s"
                )
            elif isinstance(metric, Gauge):
                lines.append(
                    f"  {label_text}: {metric.value} (peak {metric.peak})"
                )
            else:
                lines.append(f"  {label_text}: {metric.value}")
        if len(series) > max_series_per_metric:
            lines.append(f"  ... {len(series) - max_series_per_metric} more")
    if not lines:
        lines = ["no metrics registered"]
    return DashboardSection("telemetry", tuple(lines))


def services_section(root: "Service") -> DashboardSection:
    """Runtime health: one line per service under ``root``.

    ``root`` is any :class:`~repro.runtime.Service`; a
    :class:`~repro.runtime.ServiceGroup` nests its members' health
    records, which are flattened here in start order — the quickest
    answer to "what exactly is still running?".
    """
    lines: list[str] = []

    def walk(record: dict[str, object], depth: int) -> None:
        threads = record.get("threads")
        thread_text = f" threads={len(threads)}" if threads else ""  # type: ignore[arg-type]
        marker = "ok" if record.get("healthy") else "DOWN"
        lines.append(
            f"{'  ' * depth}{record['name']}: {record['state']} "
            f"[{marker}]{thread_text}"
        )
        for child in record.get("services", ()):  # type: ignore[union-attr]
            walk(child, depth + 1)

    walk(root.health(), 0)
    return DashboardSection("services", tuple(lines))


def render_dashboard(
    store: FeatureStore,
    log: AlertLog,
    embeddings: EmbeddingStore | None = None,
    now: float | None = None,
    gateway: "ServingGateway | None" = None,
    bus: "BusMetrics | None" = None,
    bus_consumer: "Consumer | None" = None,
    vectors: "VectorService | None" = None,
    registry: MetricsRegistry | None = None,
    services: "Service | None" = None,
) -> str:
    """Render the full status pane as one string."""
    sections = [
        alert_section(log),
        freshness_section(store, now=now),
    ]
    if embeddings is not None:
        sections.append(embedding_section(embeddings, store))
    if store.compiler_stats:
        sections.append(compiler_section(store))
    sections.append(model_section(store))
    if gateway is not None:
        sections.append(serving_section(gateway))
    if bus is not None:
        sections.append(bus_section(bus, consumer=bus_consumer))
    if vectors is not None:
        sections.append(vector_section(vectors))
    if registry is not None:
        sections.append(telemetry_section(registry))
    if services is not None:
        sections.append(services_section(services))
    return "\n\n".join(section.render() for section in sections)
