"""Model and feature monitoring.

Paper section 2.2.3: feature stores "support critical model metrics such as
training-deployment data skew and near real-time outlier and input drift
detection. These metrics allow users to be informed of potential 'gremlins'
in the system."

* :mod:`repro.monitoring.detectors` — statistical drift detectors (PSI, KS,
  KL, chi-square) and outlier detectors (z-score, MAD).
* :mod:`repro.monitoring.skew` — training/serving skew reports built from
  quality profiles.
* :mod:`repro.monitoring.monitor` — windowed monitors plus the alert log.
* :mod:`repro.monitoring.embedding_drift` — embedding-aware monitors
  (section 3.1: "existing FS metrics such as null value count do not capture
  drifts or changes in embeddings").
"""

from repro.monitoring.dashboard import (
    DashboardSection,
    bus_section,
    cluster_section,
    compiler_section,
    network_section,
    render_dashboard,
    services_section,
    serving_section,
    telemetry_section,
    vector_section,
)
from repro.monitoring.detectors import (
    DriftResult,
    chi_square_drift,
    kl_divergence,
    ks_drift,
    mad_outliers,
    population_stability_index,
    psi_drift,
    zscore_outliers,
)
from repro.monitoring.embedding_drift import (
    EmbeddingDriftMonitor,
    EmbeddingDriftReport,
    null_count_monitor_misses_embedding_drift,
)
from repro.monitoring.monitor import (
    Alert,
    AlertLog,
    FeatureMonitor,
    FreshnessMonitor,
    MonitorConfig,
)
from repro.monitoring.retraining import RetrainDecision, RetrainingPolicy
from repro.monitoring.sequential import CusumDetector, PageHinkley
from repro.monitoring.skew import SkewReport, training_serving_skew

__all__ = [
    "Alert",
    "AlertLog",
    "CusumDetector",
    "DashboardSection",
    "DriftResult",
    "EmbeddingDriftMonitor",
    "EmbeddingDriftReport",
    "FeatureMonitor",
    "FreshnessMonitor",
    "MonitorConfig",
    "PageHinkley",
    "RetrainDecision",
    "RetrainingPolicy",
    "SkewReport",
    "bus_section",
    "cluster_section",
    "compiler_section",
    "network_section",
    "chi_square_drift",
    "kl_divergence",
    "ks_drift",
    "mad_outliers",
    "null_count_monitor_misses_embedding_drift",
    "population_stability_index",
    "psi_drift",
    "render_dashboard",
    "services_section",
    "serving_section",
    "telemetry_section",
    "training_serving_skew",
    "vector_section",
    "zscore_outliers",
]
