"""Sequential (per-event) change detectors.

The windowed monitors in :mod:`repro.monitoring.monitor` test batches; the
paper's "near real-time outlier and input drift detection" (section 2.2.3)
also needs *sequential* detectors that process one value at a time with
O(1) state and flag a change the moment cumulative evidence crosses a
threshold:

* :class:`PageHinkley` — the classic sequential mean-shift test.
* :class:`CusumDetector` — two-sided CUSUM with reference drift allowance.

Both are calibrated on a reference sample (mean/std) and report the event
index at which they fired, so benchmarks can measure detection delay.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MonitoringError


class PageHinkley:
    """Page-Hinkley test for an upward or downward mean shift.

    Maintains the cumulative deviation of observations from the reference
    mean (minus a per-step allowance ``delta``); fires when the deviation
    exceeds ``threshold`` standardized units in either direction.

    Defaults are calibrated for *standardized* inputs (each step has unit
    variance): ``delta=0.3`` pulls the stationary random walk down hard
    enough that ``threshold=20`` yields a very long average run length
    while still detecting a 3-sigma shift within ~10 observations.
    """

    def __init__(
        self,
        reference: np.ndarray,
        threshold: float = 20.0,
        delta: float = 0.3,
    ) -> None:
        reference = np.asarray(reference, dtype=float)
        reference = reference[~np.isnan(reference)]
        if len(reference) < 10:
            raise MonitoringError("Page-Hinkley needs >= 10 reference values")
        if threshold <= 0 or delta < 0:
            raise MonitoringError("threshold must be > 0 and delta >= 0")
        self.mean = float(reference.mean())
        self.std = float(reference.std()) or 1e-12
        self.threshold = threshold
        self.delta = delta
        self.reset()

    def reset(self) -> None:
        self._sum_up = 0.0
        self._min_up = 0.0
        self._sum_down = 0.0
        self._max_down = 0.0
        self.n_observed = 0
        self.fired_at: int | None = None

    @property
    def fired(self) -> bool:
        return self.fired_at is not None

    def update(self, value: float) -> bool:
        """Consume one value; returns True at the moment of detection."""
        if self.fired:
            return False
        if np.isnan(value):
            return False
        self.n_observed += 1
        standardized = (value - self.mean) / self.std

        self._sum_up += standardized - self.delta
        self._min_up = min(self._min_up, self._sum_up)
        self._sum_down += standardized + self.delta
        self._max_down = max(self._max_down, self._sum_down)

        up = self._sum_up - self._min_up
        down = self._max_down - self._sum_down
        if up > self.threshold or down > self.threshold:
            self.fired_at = self.n_observed
            return True
        return False

    def process(self, values: np.ndarray) -> int | None:
        """Feed a sequence; return the 1-based detection index, if any."""
        for value in np.asarray(values, dtype=float):
            if self.update(float(value)):
                return self.fired_at
        return self.fired_at


class CusumDetector:
    """Two-sided CUSUM with slack ``k`` (in reference sigmas).

    Standard parametrization: with slack ``k`` and decision interval ``h``,
    detects mean shifts larger than ~``2k`` sigmas with average run length
    controlled by ``h``; the ``h=10`` default keeps false alarms rare over
    thousands of stationary observations.
    """

    def __init__(
        self,
        reference: np.ndarray,
        k: float = 0.5,
        h: float = 10.0,
    ) -> None:
        reference = np.asarray(reference, dtype=float)
        reference = reference[~np.isnan(reference)]
        if len(reference) < 10:
            raise MonitoringError("CUSUM needs >= 10 reference values")
        if k < 0 or h <= 0:
            raise MonitoringError("k must be >= 0 and h > 0")
        self.mean = float(reference.mean())
        self.std = float(reference.std()) or 1e-12
        self.k = k
        self.h = h
        self.reset()

    def reset(self) -> None:
        self._high = 0.0
        self._low = 0.0
        self.n_observed = 0
        self.fired_at: int | None = None

    @property
    def fired(self) -> bool:
        return self.fired_at is not None

    def update(self, value: float) -> bool:
        if self.fired:
            return False
        if np.isnan(value):
            return False
        self.n_observed += 1
        standardized = (value - self.mean) / self.std
        self._high = max(0.0, self._high + standardized - self.k)
        self._low = max(0.0, self._low - standardized - self.k)
        if self._high > self.h or self._low > self.h:
            self.fired_at = self.n_observed
            return True
        return False

    def process(self, values: np.ndarray) -> int | None:
        for value in np.asarray(values, dtype=float):
            if self.update(float(value)):
                return self.fired_at
        return self.fired_at
