"""A small declarative query layer over offline tables.

Paper section 2.2.1: users author features as "a definition SQL query".
This module provides the warehouse-side query shape that definition relies
on, without a SQL parser: a fluent builder with time-range pushdown (only
overlapping partitions are scanned), column predicates, projections, and
per-entity aggregation.

    >>> q = (Query(table)
    ...      .between(day1, day2)
    ...      .where("city", "==", 3)
    ...      .where("fare", ">", 10.0))
    >>> q.count()
    >>> q.aggregate("fare", "mean")
    >>> q.group_by_entity("fare", "sum")

Execution is **vectorized**: predicates compile to numpy boolean masks over
the offline table's per-partition column frames (NULL-mask semantics
preserved — NULL never satisfies a comparison, including ``!=``), and
``count``/``values``/``aggregate``/``group_by_entity`` run on arrays. The
engine falls back to the row-at-a-time path only where numpy gains nothing:
``in``/ordering predicates on string columns, and ``limit`` queries (which
stop early). Both paths are held to identical results by the parity suite.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.storage.offline import OfflineTable

_OPERATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "in": lambda a, b: a in b,
}

# Ops that cannot be vectorized on string/object columns: `in` would fall
# back to element-wise python anyway, and ordering comparisons explode on
# None payloads inside object arrays.
_STRING_ROW_PATH_OPS = {"in", "<", "<=", ">", ">="}

_AGGREGATES = {
    "mean": np.mean,
    "sum": np.sum,
    "min": np.min,
    "max": np.max,
    "count": len,
    "std": np.std,
}

_VALUE_DTYPES = {"float": np.float64, "int": np.int64, "string": object}


@dataclass(frozen=True)
class Predicate:
    """One column filter. NULL values never satisfy a comparison."""

    column: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS and self.op != "not_null":
            raise ValidationError(
                f"unknown operator {self.op!r}; allowed "
                f"{sorted(_OPERATORS) + ['not_null']}"
            )

    def matches(self, row: dict[str, object]) -> bool:
        value = row.get(self.column)
        if self.op == "not_null":
            return value is not None
        if value is None:
            return False
        return bool(_OPERATORS[self.op](value, self.value))

    def mask(self, values: np.ndarray, null: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`matches` over a column slice.

        ``values``/``null`` are a column frame slice; NULL positions are
        masked out for every operator except ``not_null``.
        """
        if self.op == "not_null":
            return ~null
        if self.op == "in":
            hit = np.isin(values, np.asarray(list(self.value)))  # type: ignore[arg-type]
        else:
            with np.errstate(invalid="ignore"):
                hit = _OPERATORS[self.op](values, self.value)
        hit = np.asarray(hit, dtype=bool)
        if hit.shape != values.shape:  # incomparable scalar -> numpy collapses
            hit = np.full(values.shape, bool(hit), dtype=bool)
        return hit & ~null


@dataclass
class Query:
    """Immutable-ish fluent query over one offline table.

    Builder methods return ``self`` for chaining; a query can be executed
    multiple times (it re-scans the table, so it sees new appends).
    """

    table: OfflineTable
    _predicates: list[Predicate] = field(default_factory=list)
    _start: float | None = None
    _end: float | None = None
    _columns: tuple[str, ...] | None = None
    _limit: int | None = None

    def _known_columns(self) -> set[str]:
        return set(self.table.schema.columns) | {"entity_id", "timestamp"}

    def where(self, column: str, op: str, value: object = None) -> "Query":
        """Add a predicate; comparisons against NULL are always false."""
        if column not in self._known_columns():
            raise ValidationError(
                f"table {self.table.name!r} has no column {column!r}"
            )
        self._predicates.append(Predicate(column=column, op=op, value=value))
        return self

    def between(self, start: float | None, end: float | None) -> "Query":
        """Restrict to ``start <= timestamp < end`` (partition pushdown)."""
        self._start = start
        self._end = end
        return self

    def select(self, *columns: str) -> "Query":
        unknown = set(columns) - self._known_columns()
        if unknown:
            raise ValidationError(f"unknown columns {sorted(unknown)}")
        self._columns = columns
        return self

    def limit(self, n: int) -> "Query":
        if n < 0:
            raise ValidationError(f"limit must be >= 0 ({n=})")
        self._limit = n
        return self

    # -- execution planning ---------------------------------------------------

    def _vectorizable(self) -> bool:
        """True when every predicate compiles to a numpy mask.

        ``limit`` queries stay on the row path: they stop scanning early,
        which the streaming row iterator already does optimally.
        """
        if self._limit is not None:
            return False
        for predicate in self._predicates:
            kind = self.table.schema.column_kind(predicate.column)
            if kind == "string" and predicate.op in _STRING_ROW_PATH_OPS:
                return False
        return True

    def _frame_masks(self) -> Iterator[tuple[object, int, int, np.ndarray]]:
        """Yield ``(frame, lo, hi, mask)`` per overlapping partition.

        ``mask`` is boolean over the ``[lo, hi)`` time slice, the conjunction
        of all compiled predicates.
        """
        for frame, lo, hi in self.table.scan_frames(self._start, self._end):
            mask = np.ones(hi - lo, dtype=bool)
            for predicate in self._predicates:
                if not mask.any():
                    break
                values, null = frame.column(predicate.column)
                mask &= predicate.mask(values[lo:hi], null[lo:hi])
            yield frame, lo, hi, mask

    # -- row-path execution (fallback + parity reference) ----------------------

    def _matching(self) -> Iterator[dict[str, object]]:
        emitted = 0
        for row in self.table.scan(start=self._start, end=self._end):
            if all(p.matches(row) for p in self._predicates):
                yield row
                emitted += 1
                if self._limit is not None and emitted >= self._limit:
                    return

    def _count_rowpath(self) -> int:
        return sum(1 for __ in self._matching())

    def _values_rowpath(self, column: str) -> np.ndarray:
        collected = [
            row[column] for row in self._matching() if row.get(column) is not None
        ]
        dtype = _VALUE_DTYPES[self.table.schema.column_kind(column)]
        return np.asarray(collected, dtype=dtype)

    def _group_by_entity_rowpath(self, column: str, agg: str) -> dict[int, float]:
        grouped: dict[int, list[float]] = {}
        for row in self._matching():
            value = row.get(column)
            if value is None:
                continue
            grouped.setdefault(int(row["entity_id"]), []).append(float(value))  # type: ignore[arg-type]
        return {
            entity: float(_AGGREGATES[agg](np.asarray(values)))
            for entity, values in grouped.items()
        }

    # -- public execution ------------------------------------------------------

    def rows(self) -> list[dict[str, object]]:
        """Materialize matching rows (projected if ``select`` was used)."""
        out = []
        for row in self._matching():
            if self._columns is None:
                out.append(dict(row))
            else:
                out.append({c: row.get(c) for c in self._columns})
        return out

    def count(self) -> int:
        if not self._vectorizable():
            return self._count_rowpath()
        return sum(int(mask.sum()) for __, __, __, mask in self._frame_masks())

    def values(self, column: str) -> np.ndarray:
        """Non-NULL values of one column across matching rows.

        The array dtype follows the column: float64 for float columns,
        int64 for int columns (and ``entity_id``), object for strings.
        """
        if column not in self._known_columns():
            raise ValidationError(f"unknown column {column!r}")
        if not self._vectorizable():
            return self._values_rowpath(column)
        kind = self.table.schema.column_kind(column)
        pieces: list[np.ndarray] = []
        for frame, lo, hi, mask in self._frame_masks():
            values, null = frame.column(column)
            keep = mask & ~null[lo:hi]
            if keep.any():
                pieces.append(values[lo:hi][keep])
        if not pieces:
            return np.array([], dtype=_VALUE_DTYPES[kind])
        return np.concatenate(pieces)

    def aggregate(self, column: str, agg: str) -> float | None:
        """Scalar aggregate over matching non-NULL values.

        ``None`` when nothing matches (``count`` returns 0.0 instead).
        String columns are rejected with :class:`ValidationError` — scalar
        aggregates are numeric.
        """
        if agg not in _AGGREGATES:
            raise ValidationError(
                f"unknown aggregate {agg!r}; allowed {sorted(_AGGREGATES)}"
            )
        if column in self._known_columns() and (
            self.table.schema.column_kind(column) == "string"
        ):
            raise ValidationError(
                f"cannot aggregate string column {column!r}; aggregates "
                "require a numeric column (use count() or rows() instead)"
            )
        values = self.values(column)
        if len(values) == 0:
            return 0.0 if agg == "count" else None
        return float(_AGGREGATES[agg](values))

    def group_by_entity(self, column: str, agg: str) -> dict[int, float]:
        """Per-entity aggregate of one column over matching rows.

        String columns are rejected with :class:`ValidationError`.
        """
        if agg not in _AGGREGATES:
            raise ValidationError(
                f"unknown aggregate {agg!r}; allowed {sorted(_AGGREGATES)}"
            )
        if column in self._known_columns() and (
            self.table.schema.column_kind(column) == "string"
        ):
            raise ValidationError(
                f"cannot aggregate string column {column!r}; aggregates "
                "require a numeric column"
            )
        if not self._vectorizable():
            return self._group_by_entity_rowpath(column, agg)
        # Accumulate per-entity value chunks across partitions, then apply
        # the aggregate once per entity over the concatenated array.
        chunks: dict[int, list[np.ndarray]] = {}
        for frame, lo, hi, mask in self._frame_masks():
            values, null = frame.column(column)
            keep = mask & ~null[lo:hi]
            if not keep.any():
                continue
            entities = frame.entity_ids[lo:hi][keep]
            kept = values[lo:hi][keep].astype(np.float64, copy=False)
            order = np.argsort(entities, kind="stable")
            sorted_entities = entities[order]
            sorted_values = kept[order]
            boundaries = np.flatnonzero(np.diff(sorted_entities)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [len(sorted_entities)]))
            for s, e in zip(starts, ends):
                chunks.setdefault(int(sorted_entities[s]), []).append(
                    sorted_values[s:e]
                )
        return {
            entity: float(_AGGREGATES[agg](np.concatenate(parts)))
            for entity, parts in chunks.items()
        }
