"""A small declarative query layer over offline tables.

Paper section 2.2.1: users author features as "a definition SQL query".
This module provides the warehouse-side query shape that definition relies
on, without a SQL parser: a fluent builder with time-range pushdown (only
overlapping partitions are scanned), column predicates, projections, and
per-entity aggregation.

    >>> q = (Query(table)
    ...      .between(day1, day2)
    ...      .where("city", "==", 3)
    ...      .where("fare", ">", 10.0))
    >>> q.count()
    >>> q.aggregate("fare", "mean")
    >>> q.group_by_entity("fare", "sum")
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.storage.offline import OfflineTable

_OPERATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "in": lambda a, b: a in b,
}

_AGGREGATES = {
    "mean": np.mean,
    "sum": np.sum,
    "min": np.min,
    "max": np.max,
    "count": len,
    "std": np.std,
}


@dataclass(frozen=True)
class Predicate:
    """One column filter. NULL values never satisfy a comparison."""

    column: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS and self.op != "not_null":
            raise ValidationError(
                f"unknown operator {self.op!r}; allowed "
                f"{sorted(_OPERATORS) + ['not_null']}"
            )

    def matches(self, row: dict[str, object]) -> bool:
        value = row.get(self.column)
        if self.op == "not_null":
            return value is not None
        if value is None:
            return False
        return bool(_OPERATORS[self.op](value, self.value))


@dataclass
class Query:
    """Immutable-ish fluent query over one offline table.

    Builder methods return ``self`` for chaining; a query can be executed
    multiple times (it re-scans the table, so it sees new appends).
    """

    table: OfflineTable
    _predicates: list[Predicate] = field(default_factory=list)
    _start: float | None = None
    _end: float | None = None
    _columns: tuple[str, ...] | None = None
    _limit: int | None = None

    def _known_columns(self) -> set[str]:
        return set(self.table.schema.columns) | {"entity_id", "timestamp"}

    def where(self, column: str, op: str, value: object = None) -> "Query":
        """Add a predicate; comparisons against NULL are always false."""
        if column not in self._known_columns():
            raise ValidationError(
                f"table {self.table.name!r} has no column {column!r}"
            )
        self._predicates.append(Predicate(column=column, op=op, value=value))
        return self

    def between(self, start: float | None, end: float | None) -> "Query":
        """Restrict to ``start <= timestamp < end`` (partition pushdown)."""
        self._start = start
        self._end = end
        return self

    def select(self, *columns: str) -> "Query":
        unknown = set(columns) - self._known_columns()
        if unknown:
            raise ValidationError(f"unknown columns {sorted(unknown)}")
        self._columns = columns
        return self

    def limit(self, n: int) -> "Query":
        if n < 0:
            raise ValidationError(f"limit must be >= 0 ({n=})")
        self._limit = n
        return self

    # -- execution -----------------------------------------------------------

    def _matching(self) -> Iterator[dict[str, object]]:
        emitted = 0
        for row in self.table.scan(start=self._start, end=self._end):
            if all(p.matches(row) for p in self._predicates):
                yield row
                emitted += 1
                if self._limit is not None and emitted >= self._limit:
                    return

    def rows(self) -> list[dict[str, object]]:
        """Materialize matching rows (projected if ``select`` was used)."""
        out = []
        for row in self._matching():
            if self._columns is None:
                out.append(dict(row))
            else:
                out.append({c: row.get(c) for c in self._columns})
        return out

    def count(self) -> int:
        return sum(1 for __ in self._matching())

    def values(self, column: str) -> np.ndarray:
        """Non-NULL values of one column across matching rows."""
        if column not in self._known_columns():
            raise ValidationError(f"unknown column {column!r}")
        collected = [
            row[column] for row in self._matching() if row.get(column) is not None
        ]
        return np.asarray(collected, dtype=float)

    def aggregate(self, column: str, agg: str) -> float | None:
        """Scalar aggregate over matching non-NULL values.

        ``None`` when nothing matches (``count`` returns 0.0 instead).
        """
        if agg not in _AGGREGATES:
            raise ValidationError(
                f"unknown aggregate {agg!r}; allowed {sorted(_AGGREGATES)}"
            )
        values = self.values(column)
        if len(values) == 0:
            return 0.0 if agg == "count" else None
        return float(_AGGREGATES[agg](values))

    def group_by_entity(self, column: str, agg: str) -> dict[int, float]:
        """Per-entity aggregate of one column over matching rows."""
        if agg not in _AGGREGATES:
            raise ValidationError(
                f"unknown aggregate {agg!r}; allowed {sorted(_AGGREGATES)}"
            )
        grouped: dict[int, list[float]] = {}
        for row in self._matching():
            value = row.get(column)
            if value is None:
                continue
            grouped.setdefault(int(row["entity_id"]), []).append(float(value))  # type: ignore[arg-type]
        return {
            entity: float(_AGGREGATES[agg](np.asarray(values)))
            for entity, values in grouped.items()
        }
