"""Storage substrates: the feature store's dual datastore plus a model store.

The paper (section 2.2.2) describes feature stores as "typically a dual
datastore: one for offline training (e.g., SQL warehouse) and for online
serving (e.g., in-memory DBMS)", with model storage integrated for
provenance and reproducibility. This package implements all three halves
in pure Python/numpy:

* :mod:`repro.storage.offline` — append-only, date-partitioned event tables
  with time-travel scans and as-of lookups (the warehouse stand-in).
* :mod:`repro.storage.online` — an in-memory KV store with per-key event
  times and TTL freshness contracts (the serving stand-in).
* :mod:`repro.storage.models` — a ModelDB/ModelKB-style store of model
  versions, parameters, metrics and lineage.
"""

from repro.storage.models import ModelRecord, ModelStore
from repro.storage.offline import OfflineStore, OfflineTable, TableSchema
from repro.storage.online import FreshnessPolicy, OnlineStore
from repro.storage.query import Predicate, Query
from repro.storage.scan import SharedScan

__all__ = [
    "FreshnessPolicy",
    "ModelRecord",
    "ModelStore",
    "OfflineStore",
    "OfflineTable",
    "OnlineStore",
    "Predicate",
    "Query",
    "SharedScan",
    "TableSchema",
]

# repro.storage.persistence is imported lazily by callers; it depends on
# repro.core and importing it here would create a package cycle.
