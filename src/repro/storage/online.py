"""Online store: low-latency in-memory feature serving.

The serving half of the dual datastore (paper section 2.2.2): deployed
models read the *latest* feature vector per entity with O(1) lookups, and
every value carries its event time so freshness (TTL) contracts can be
enforced — "models can become stale if not given the most up-to-date
features".

Thread safety
-------------
All public methods are safe to call concurrently: an internal
:class:`threading.RLock` guards namespace mutation, value upserts and the
read/write bookkeeping counters, so a multi-threaded serving tier (see
:mod:`repro.serving`) cannot corrupt state or lose counter increments.
Write listeners (used by the gateway cache for write-path invalidation)
are invoked *outside* the lock so a slow listener never blocks readers.
"""

from __future__ import annotations

import enum
import threading
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.clock import Clock, WallClock
from repro.errors import NotRegisteredError, ServingError, StaleFeatureError


class FreshnessPolicy(enum.Enum):
    """What to do when a key's value is older than the namespace TTL."""

    SERVE_ANYWAY = "serve_anyway"
    RETURN_NONE = "return_none"
    RAISE = "raise"


@dataclass(frozen=True)
class OnlineValue:
    """A stored feature vector with its event- and write-times."""

    values: dict[str, object]
    event_time: float
    write_time: float


@dataclass
class _Namespace:
    ttl: float | None
    data: dict[int, OnlineValue]


WriteListener = Callable[[str, int], None]
"""Callback ``(namespace, entity_id)`` invoked after a successful write."""


class OnlineStore:
    """Dict-backed KV store: ``(namespace, entity_id) -> feature dict``.

    Namespaces correspond to feature views; each has an optional TTL.
    Reads and writes are counted so benchmarks can report op volumes.
    All operations are thread-safe (see module docstring).
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock or WallClock()
        self._namespaces: dict[str, _Namespace] = {}
        self._lock = threading.RLock()
        self._write_listeners: list[WriteListener] = []
        self.read_count = 0
        self.write_count = 0

    @property
    def clock(self) -> Clock:
        """The store's time source (read-only; sinks use it for freshness lag)."""
        return self._clock

    def create_namespace(self, name: str, ttl: float | None = None) -> None:
        """Create (or reconfigure the TTL of) a namespace.

        TTL-reconfigure semantics: the TTL is a property of the *namespace*,
        evaluated lazily on every :meth:`read` / :meth:`expire` against the
        stored value's event time. Reconfiguring therefore applies the new
        TTL to **all** entries, including ones written before the change —
        a live entry whose age exceeds a newly tightened TTL becomes stale
        immediately (no grandfathering under the TTL it was written under),
        and a loosened TTL instantly revives entries the old TTL would have
        rejected. ``ttl=None`` disables freshness enforcement entirely.
        """
        if ttl is not None and ttl <= 0:
            raise ServingError(f"ttl must be positive or None ({ttl=})")
        with self._lock:
            existing = self._namespaces.get(name)
            if existing is not None:
                existing.ttl = ttl
            else:
                self._namespaces[name] = _Namespace(ttl=ttl, data={})

    def namespaces(self) -> list[str]:
        with self._lock:
            return sorted(self._namespaces)

    def ttl(self, name: str) -> float | None:
        """The namespace's current TTL (None = no freshness enforcement)."""
        with self._lock:
            return self._namespace(name).ttl

    def _namespace(self, name: str) -> _Namespace:
        # Callers hold self._lock.
        if name not in self._namespaces:
            raise NotRegisteredError(
                f"no online namespace {name!r}; have {sorted(self._namespaces)}"
            )
        return self._namespaces[name]

    # -- write-path hooks ----------------------------------------------------

    def add_write_listener(self, listener: WriteListener) -> None:
        """Register a callback fired after every *accepted* write.

        The serving gateway uses this for write-path cache invalidation:
        any writer (materializer, stream processor, backfill) that lands a
        new value automatically invalidates the gateway's cached copy.
        Dropped writes (older event time than stored) do not fire.
        """
        with self._lock:
            self._write_listeners.append(listener)

    def remove_write_listener(self, listener: WriteListener) -> None:
        with self._lock:
            self._write_listeners.remove(listener)

    def write(
        self,
        namespace: str,
        entity_id: int,
        values: dict[str, object],
        event_time: float,
    ) -> None:
        """Upsert the feature dict for an entity.

        Writes carrying an *older* event time than the stored value are
        dropped (last-event-time-wins), which makes backfills and
        out-of-order stream delivery safe.
        """
        with self._lock:
            ns = self._namespace(namespace)
            current = ns.data.get(entity_id)
            if current is not None and current.event_time > event_time:
                return
            ns.data[entity_id] = OnlineValue(
                values=dict(values),
                event_time=event_time,
                write_time=self._clock.now(),
            )
            self.write_count += 1
            listeners = list(self._write_listeners)
        for listener in listeners:  # outside the lock: see module docstring
            listener(namespace, entity_id)

    def write_many(
        self,
        namespace: str,
        rows: Sequence[tuple[int, dict[str, object], float]],
    ) -> int:
        """Bulk upsert: ``rows`` is ``(entity_id, values, event_time)`` tuples.

        Takes the store lock **once** for the whole batch (the write-path
        analogue of :meth:`read_many` — this is what the ingestion bus's
        sinks and the stream processor's emit path amortize), applies the
        same last-event-time-wins drop rule per row, and fires write
        listeners *outside* the lock in write order, exactly as a sequence
        of :meth:`write` calls would. Returns the number of accepted
        (non-dropped) writes.
        """
        accepted: list[int] = []
        with self._lock:
            ns = self._namespace(namespace)
            write_time = self._clock.now()
            for entity_id, values, event_time in rows:
                current = ns.data.get(entity_id)
                if current is not None and current.event_time > event_time:
                    continue
                ns.data[entity_id] = OnlineValue(
                    values=dict(values),
                    event_time=event_time,
                    write_time=write_time,
                )
                self.write_count += 1
                accepted.append(entity_id)
            listeners = list(self._write_listeners)
        for entity_id in accepted:  # outside the lock: see module docstring
            for listener in listeners:
                listener(namespace, entity_id)
        return len(accepted)

    def read(
        self,
        namespace: str,
        entity_id: int,
        policy: FreshnessPolicy = FreshnessPolicy.SERVE_ANYWAY,
    ) -> dict[str, object] | None:
        """Read the latest feature dict for an entity, honouring freshness.

        Returns ``None`` when the key is absent, or when the value is stale
        and the policy is ``RETURN_NONE``.
        """
        with self._lock:
            self.read_count += 1
            return self._read_locked(namespace, entity_id, policy)

    def _read_locked(
        self,
        namespace: str,
        entity_id: int,
        policy: FreshnessPolicy,
    ) -> dict[str, object] | None:
        ns = self._namespace(namespace)
        stored = ns.data.get(entity_id)
        if stored is None:
            return None
        if ns.ttl is not None:
            age = self._clock.now() - stored.event_time
            if age > ns.ttl:
                if policy is FreshnessPolicy.RAISE:
                    raise StaleFeatureError(
                        f"{namespace!r}/{entity_id}: value age {age:.1f}s exceeds "
                        f"ttl {ns.ttl:.1f}s"
                    )
                if policy is FreshnessPolicy.RETURN_NONE:
                    return None
        return dict(stored.values)

    def read_many(
        self,
        namespace: str,
        entity_ids: list[int],
        policy: FreshnessPolicy = FreshnessPolicy.SERVE_ANYWAY,
    ) -> list[dict[str, object] | None]:
        """Batch read preserving input order.

        Takes the store lock once for the whole batch — this is the
        amortization the serving gateway's micro-batcher exploits.
        """
        with self._lock:
            self.read_count += len(entity_ids)
            return [
                self._read_locked(namespace, e, policy) for e in entity_ids
            ]

    def event_time(self, namespace: str, entity_id: int) -> float | None:
        """Event time of the stored value, or None if absent."""
        with self._lock:
            stored = self._namespace(namespace).data.get(entity_id)
            return None if stored is None else stored.event_time

    def staleness(self, namespace: str, entity_id: int) -> float | None:
        """Seconds since the stored value's event time (None if absent)."""
        with self._lock:
            stored = self._namespace(namespace).data.get(entity_id)
            if stored is None:
                return None
            return self._clock.now() - stored.event_time

    def entity_ids(self, namespace: str) -> list[int]:
        with self._lock:
            return sorted(self._namespace(namespace).data)

    def size(self, namespace: str) -> int:
        with self._lock:
            return len(self._namespace(namespace).data)

    def expire(self, namespace: str) -> int:
        """Evict all entries older than the namespace TTL; return count.

        Uses the namespace's *current* TTL — after a reconfigure, entries
        written under a looser TTL are evaluated (and evicted) under the
        new one, consistent with :meth:`create_namespace` semantics.
        """
        with self._lock:
            ns = self._namespace(namespace)
            if ns.ttl is None:
                return 0
            now = self._clock.now()
            stale = [k for k, v in ns.data.items() if now - v.event_time > ns.ttl]
            for key in stale:
                del ns.data[key]
            return len(stale)
