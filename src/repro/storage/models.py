"""Model store: versioned model artifacts with provenance.

Paper section 2.2.2: "Once a model is trained, relevant parameters and
artifacts need to be stored for provenance and reproducibility. ... some FSs
do support model management by integrating a separate model store
[ModelKB, ModelDB]." This module is that integrated store: each record keeps
the model object, its hyperparameters, evaluation metrics, and — crucially
for the embedding-ecosystem experiments — the *feature-set and embedding
versions it was trained against*, so the serving path can detect
embedding/model version mismatches (experiment E9).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.clock import Clock, WallClock
from repro.errors import NotRegisteredError, ProvenanceError


@dataclass(frozen=True)
class ModelRecord:
    """One immutable model version."""

    name: str
    version: int
    model: object
    hyperparameters: dict[str, object] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    feature_set: str | None = None
    embedding_versions: dict[str, int] = field(default_factory=dict)
    created_at: float = 0.0
    tags: tuple[str, ...] = ()

    @property
    def key(self) -> str:
        return f"{self.name}:v{self.version}"


class ModelStore:
    """Append-only registry of :class:`ModelRecord` versions."""

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock or WallClock()
        self._records: dict[str, list[ModelRecord]] = {}

    def register(
        self,
        name: str,
        model: object,
        hyperparameters: dict[str, object] | None = None,
        metrics: dict[str, float] | None = None,
        feature_set: str | None = None,
        embedding_versions: dict[str, int] | None = None,
        tags: tuple[str, ...] = (),
    ) -> ModelRecord:
        """Store a new version of ``name``; versions start at 1.

        The model object is deep-copied so later in-place mutation of the
        live model cannot silently alter the stored artifact.
        """
        versions = self._records.setdefault(name, [])
        record = ModelRecord(
            name=name,
            version=len(versions) + 1,
            model=copy.deepcopy(model),
            hyperparameters=dict(hyperparameters or {}),
            metrics=dict(metrics or {}),
            feature_set=feature_set,
            embedding_versions=dict(embedding_versions or {}),
            created_at=self._clock.now(),
            tags=tuple(tags),
        )
        versions.append(record)
        return record

    def get(self, name: str, version: int | None = None) -> ModelRecord:
        """Fetch a version (latest when ``version`` is None)."""
        versions = self._records.get(name)
        if not versions:
            raise NotRegisteredError(
                f"no model named {name!r}; have {sorted(self._records)}"
            )
        if version is None:
            return versions[-1]
        if not 1 <= version <= len(versions):
            raise NotRegisteredError(
                f"model {name!r} has versions 1..{len(versions)}, not {version}"
            )
        return versions[version - 1]

    def latest_version(self, name: str) -> int:
        return self.get(name).version

    def model_names(self) -> list[str]:
        return sorted(self._records)

    def versions(self, name: str) -> list[ModelRecord]:
        if name not in self._records:
            raise NotRegisteredError(f"no model named {name!r}")
        return list(self._records[name])

    def record_metrics(
        self, name: str, version: int, metrics: dict[str, float]
    ) -> ModelRecord:
        """Attach (merge) evaluation metrics onto an existing version."""
        record = self.get(name, version)
        merged = {**record.metrics, **metrics}
        updated = ModelRecord(
            name=record.name,
            version=record.version,
            model=record.model,
            hyperparameters=record.hyperparameters,
            metrics=merged,
            feature_set=record.feature_set,
            embedding_versions=record.embedding_versions,
            created_at=record.created_at,
            tags=record.tags,
        )
        self._records[name][version - 1] = updated
        return updated

    def compare(
        self, name: str, version_a: int, version_b: int, metric: str
    ) -> float:
        """Return ``metrics[metric]`` of b minus a (positive = b better)."""
        a = self.get(name, version_a)
        b = self.get(name, version_b)
        if metric not in a.metrics or metric not in b.metrics:
            raise ProvenanceError(
                f"metric {metric!r} missing on {a.key} or {b.key}"
            )
        return b.metrics[metric] - a.metrics[metric]

    def consumers_of_embedding(self, embedding_name: str) -> list[ModelRecord]:
        """Latest model versions whose lineage pins ``embedding_name``.

        This answers the paper's section 3.1.3 question — which downstream
        models are affected by a quality issue in a given embedding?
        """
        out: list[ModelRecord] = []
        for versions in self._records.values():
            latest = versions[-1]
            if embedding_name in latest.embedding_versions:
                out.append(latest)
        return sorted(out, key=lambda r: r.name)
