"""Durable persistence for stores.

Paper section 2.2.2: model and embedding artifacts "need to be stored for
provenance and reproducibility". In-memory stores are enough for
experiments; this module adds directory-backed snapshots so a registry
outlives the process:

* :func:`save_embedding_store` / :func:`load_embedding_store` — every
  version's matrix as ``.npy`` plus a JSON manifest with provenance,
  metrics, tags and compatibility marks.
* :func:`save_model_store` / :func:`load_model_store` — model objects via
  pickle (they are plain numpy-parameter containers) plus a JSON manifest.

Layout under the target directory::

    embeddings/<name>/v<k>.npy      one matrix per version
    embeddings/manifest.json        provenance + metrics + compatibility
    models/<name>_v<k>.pkl          pickled model objects
    models/manifest.json            hyperparameters, metrics, lineage
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

import numpy as np

from repro.clock import Clock
from repro.core.embedding_store import EmbeddingStore, Provenance
from repro.embeddings.base import EmbeddingMatrix
from repro.errors import StorageError
from repro.storage.models import ModelRecord, ModelStore


def save_embedding_store(store: EmbeddingStore, directory: str | Path) -> Path:
    """Snapshot every version of every embedding to ``directory``."""
    root = Path(directory) / "embeddings"
    root.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, object] = {"names": {}, "compatible": sorted(
        [list(item) for item in store._compatible]
    )}
    for name in store.names():
        entries = []
        name_dir = root / name
        name_dir.mkdir(exist_ok=True)
        for record in store.versions(name):
            matrix_path = name_dir / f"v{record.version}.npy"
            np.save(matrix_path, record.embedding.vectors)
            entries.append(
                {
                    "version": record.version,
                    "created_at": record.created_at,
                    "metrics": record.metrics,
                    "tags": list(record.tags),
                    "provenance": {
                        "trainer": record.provenance.trainer,
                        "config": record.provenance.config,
                        "data_snapshot": record.provenance.data_snapshot,
                        "seed": record.provenance.seed,
                        "parent_version": record.provenance.parent_version,
                    },
                }
            )
        manifest["names"][name] = entries  # type: ignore[index]
    (root / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return root


def load_embedding_store(
    directory: str | Path, clock: Clock | None = None
) -> EmbeddingStore:
    """Rebuild an :class:`EmbeddingStore` from a snapshot directory.

    Versions are re-registered in order; stored metrics, timestamps and
    compatibility marks are restored verbatim (re-deriving metrics would be
    wasted work and could differ if defaults changed).
    """
    root = Path(directory) / "embeddings"
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        raise StorageError(f"no embedding snapshot at {root}")
    manifest = json.loads(manifest_path.read_text())

    from repro.core.embedding_store import EmbeddingVersion

    store = EmbeddingStore(clock=clock)
    for name, entries in manifest["names"].items():
        for entry in sorted(entries, key=lambda e: e["version"]):
            vectors = np.load(root / name / f"v{entry['version']}.npy")
            p = entry["provenance"]
            # Restore the recorded state directly rather than re-registering:
            # register() would recompute the O(n^2) quality metrics only for
            # them to be overwritten by the stored values.
            restored = EmbeddingVersion(
                name=name,
                version=entry["version"],
                embedding=EmbeddingMatrix(vectors=vectors),
                provenance=Provenance(
                    trainer=p["trainer"],
                    config=p["config"],
                    data_snapshot=p["data_snapshot"],
                    seed=p["seed"],
                    parent_version=p["parent_version"],
                ),
                created_at=entry["created_at"],
                metrics=entry["metrics"],
                tags=tuple(entry["tags"]),
            )
            store._versions.setdefault(name, []).append(restored)
    for name, model_version, serve_version in manifest.get("compatible", []):
        store.mark_compatible(name, model_version, serve_version)
    return store


def save_model_store(store: ModelStore, directory: str | Path) -> Path:
    """Snapshot every model version to ``directory``."""
    root = Path(directory) / "models"
    root.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, list[dict[str, object]]] = {}
    for name in store.model_names():
        entries = []
        for record in store.versions(name):
            artifact = root / f"{name}_v{record.version}.pkl"
            with open(artifact, "wb") as handle:
                pickle.dump(record.model, handle)
            entries.append(
                {
                    "version": record.version,
                    "hyperparameters": record.hyperparameters,
                    "metrics": record.metrics,
                    "feature_set": record.feature_set,
                    "embedding_versions": record.embedding_versions,
                    "created_at": record.created_at,
                    "tags": list(record.tags),
                }
            )
        manifest[name] = entries
    (root / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return root


def load_model_store(
    directory: str | Path, clock: Clock | None = None
) -> ModelStore:
    """Rebuild a :class:`ModelStore` from a snapshot directory.

    Only load snapshots you wrote yourself: model artifacts are pickled.
    """
    root = Path(directory) / "models"
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        raise StorageError(f"no model snapshot at {root}")
    manifest = json.loads(manifest_path.read_text())

    store = ModelStore(clock=clock)
    for name, entries in manifest.items():
        for entry in sorted(entries, key=lambda e: e["version"]):
            artifact = root / f"{name}_v{entry['version']}.pkl"
            with open(artifact, "rb") as handle:
                model = pickle.load(handle)
            store.register(
                name,
                model,
                hyperparameters=entry["hyperparameters"],
                metrics=entry["metrics"],
                feature_set=entry["feature_set"],
                embedding_versions={
                    k: int(v) for k, v in entry["embedding_versions"].items()
                },
                tags=tuple(entry["tags"]),
            )
            # Restore the original creation timestamp.
            record = store.get(name, entry["version"])
            store._records[name][entry["version"] - 1] = ModelRecord(
                name=record.name,
                version=record.version,
                model=record.model,
                hyperparameters=record.hyperparameters,
                metrics=record.metrics,
                feature_set=record.feature_set,
                embedding_versions=record.embedding_versions,
                created_at=entry["created_at"],
                tags=record.tags,
            )
    return store
