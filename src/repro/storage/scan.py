"""Shared physical scans: one pass over a table, many consumers.

The fusion substrate of the pipeline compiler (``repro.compiler``): when N
feature views read the same ``(table, time range)``, the compiler builds a
single :class:`SharedScan` and points every view's operators at it instead
of running N scans. The scan

* touches only partitions overlapping the range (partition pruning via
  :meth:`OfflineTable.scan_frames` / :meth:`ColumnFrame.time_slice`),
* decodes a column **once** on first request and serves the cached arrays
  to every consumer (projection pruning happens upstream: consumers only
  ask for columns they reference),
* exposes a per-entity segment index (stable sort by entity, time order
  preserved within each segment) so as-of and window operators are
  ``searchsorted`` slices instead of per-row loops.

Rows across partition frames concatenate into global ``(timestamp,
insertion)`` order because partitions cover disjoint time ranges and each
frame is already time-sorted — the same order :meth:`OfflineTable.scan`
yields, which is what keeps fused execution byte-identical to per-view
scans.
"""

from __future__ import annotations

import numpy as np

from repro.storage.offline import ColumnFrame, OfflineTable


class SharedScan:
    """One physical pass over ``table`` rows with ``start <= ts < end``.

    ``start``/``end`` may be ``None`` (unbounded). Column decodes and the
    entity segment index are cached, so any number of consumers pay each
    cost once. ``columns_decoded`` / ``rows_scanned`` / ``rows_pruned``
    feed the compiler's optimizer accounting.
    """

    def __init__(
        self,
        table: OfflineTable,
        start: float | None = None,
        end: float | None = None,
    ) -> None:
        self.table = table
        self.start = start
        self.end = end
        self._slices: list[tuple[ColumnFrame, int, int]] = list(
            table.scan_frames(start, end)
        )
        lengths = [hi - lo for __, lo, hi in self._slices]
        self.rows_scanned = int(sum(lengths))
        self.rows_pruned = len(table) - self.rows_scanned
        self.partitions_scanned = len(self._slices)
        # Global position p maps into slice k where offsets[k] <= p < offsets[k+1].
        self._offsets = np.concatenate(
            ([0], np.cumsum(np.asarray(lengths, dtype=np.int64)))
        )
        if self._slices:
            self.timestamps = np.concatenate(
                [frame.timestamps[lo:hi] for frame, lo, hi in self._slices]
            )
            self.entity_ids = np.concatenate(
                [frame.entity_ids[lo:hi] for frame, lo, hi in self._slices]
            )
        else:
            self.timestamps = np.empty(0, dtype=np.float64)
            self.entity_ids = np.empty(0, dtype=np.int64)
        self._columns: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._segments: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None

    def __len__(self) -> int:
        return self.rows_scanned

    @property
    def columns_decoded(self) -> int:
        """Distinct columns decoded so far (the projection actually paid for)."""
        return len(self._columns)

    def column(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """``(values, null_mask)`` of one column over the scanned rows.

        Decoded once per column per scan, whatever the number of consumers.
        ``timestamp`` / ``entity_id`` are served from the precomputed arrays.
        """
        if name == "timestamp":
            return self.timestamps, np.zeros(self.rows_scanned, dtype=bool)
        if name == "entity_id":
            return self.entity_ids, np.zeros(self.rows_scanned, dtype=bool)
        cached = self._columns.get(name)
        if cached is not None:
            return cached
        kind = self.table.schema.column_kind(name)  # KeyError on unknown
        if self._slices:
            pieces = [frame.column(name) for frame, __, __ in self._slices]
            values = np.concatenate(
                [piece[0][lo:hi] for piece, (__, lo, hi) in zip(pieces, self._slices)]
            )
            null = np.concatenate(
                [piece[1][lo:hi] for piece, (__, lo, hi) in zip(pieces, self._slices)]
            )
        else:
            values = np.empty(0, dtype=object if kind == "string" else np.float64)
            null = np.empty(0, dtype=bool)
        built = (values, null)
        self._columns[name] = built
        return built

    def row_at(self, position: int) -> dict[str, object]:
        """The stored row dict at a global scan position (object identity)."""
        k = int(np.searchsorted(self._offsets, position, side="right")) - 1
        frame, lo, __ = self._slices[k]
        return frame.rows[lo + (position - int(self._offsets[k]))]

    def entity_segments(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(order, starts, ends, entities)`` — the per-entity segment index.

        ``order`` is a permutation of global positions stably sorted by
        entity id; ``order[starts[k]:ends[k]]`` are entity ``entities[k]``'s
        rows in ``(timestamp, insertion)`` order. Cached.
        """
        if self._segments is None:
            order = np.argsort(self.entity_ids, kind="stable")
            sorted_entities = self.entity_ids[order]
            boundaries = np.flatnonzero(np.diff(sorted_entities)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [len(sorted_entities)]))
            entities = (
                sorted_entities[starts]
                if len(sorted_entities)
                else np.empty(0, dtype=np.int64)
            )
            self._segments = (order, starts, ends, entities)
        return self._segments

    def segment_of(self, entity_id: int) -> np.ndarray:
        """Global positions of one entity's rows, in time order (may be empty)."""
        order, starts, ends, entities = self.entity_segments()
        k = int(np.searchsorted(entities, entity_id))
        if k >= len(entities) or int(entities[k]) != entity_id:
            return np.empty(0, dtype=np.int64)
        return order[int(starts[k]) : int(ends[k])]
