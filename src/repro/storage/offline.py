"""Offline store: append-only, date-partitioned event tables.

This is the SQL-warehouse half of the feature store's dual datastore (paper
section 2.2.2). Tables are partitioned on date ("FSs support this workflow
by partitioning features on date") and support the two access paths the
store needs:

* **range scans** over partitions for batch materialization and metrics, and
* **as-of lookups** — the latest value per entity at or before a timestamp —
  which are the building block of point-in-time-correct training joins.

Rows are plain dicts validated against a :class:`TableSchema`. ``None``
encodes NULL for any column type.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.clock import SECONDS_PER_DAY, partition_key
from repro.errors import (
    AlreadyRegisteredError,
    NotRegisteredError,
    PartitionNotFoundError,
    SchemaMismatchError,
    ValidationError,
)

_ALLOWED_TYPES = {"float", "int", "string"}


@dataclass(frozen=True)
class TableSchema:
    """Column names and types for an offline table.

    ``entity_id`` (int) and ``timestamp`` (float) columns are implicit and
    must not be redeclared. ``columns`` maps name -> one of
    ``{"float", "int", "string"}``.
    """

    columns: dict[str, str]

    def __post_init__(self) -> None:
        for name, kind in self.columns.items():
            if name in ("entity_id", "timestamp"):
                raise ValidationError(f"column {name!r} is implicit, do not declare it")
            if kind not in _ALLOWED_TYPES:
                raise ValidationError(
                    f"column {name!r} has unknown type {kind!r}; "
                    f"allowed: {sorted(_ALLOWED_TYPES)}"
                )

    def validate_row(self, row: dict[str, object]) -> None:
        """Raise :class:`SchemaMismatchError` unless ``row`` fits the schema."""
        if "entity_id" not in row or "timestamp" not in row:
            raise SchemaMismatchError(
                f"row must carry entity_id and timestamp, got keys {sorted(row)}"
            )
        for name, kind in self.columns.items():
            if name not in row:
                raise SchemaMismatchError(f"row missing column {name!r}")
            value = row[name]
            if value is None:
                continue
            if kind == "float" and not isinstance(value, (int, float)):
                raise SchemaMismatchError(f"column {name!r} expects float, got {value!r}")
            if kind == "int" and not isinstance(value, (int, np.integer)):
                raise SchemaMismatchError(f"column {name!r} expects int, got {value!r}")
            if kind == "string" and not isinstance(value, str):
                raise SchemaMismatchError(f"column {name!r} expects str, got {value!r}")
        extras = set(row) - set(self.columns) - {"entity_id", "timestamp"}
        if extras:
            raise SchemaMismatchError(f"row has undeclared columns {sorted(extras)}")


@dataclass
class _Partition:
    """One date partition: rows plus a timestamp-sorted order."""

    rows: list[dict[str, object]] = field(default_factory=list)

    def append(self, row: dict[str, object]) -> None:
        self.rows.append(row)

    def sorted_rows(self) -> list[dict[str, object]]:
        return sorted(self.rows, key=lambda r: r["timestamp"])


class OfflineTable:
    """A single append-only event table.

    Maintains a per-entity ``(timestamp, row)`` index kept sorted on insert,
    so as-of lookups are O(log n) per entity even when events arrive out of
    order.
    """

    def __init__(
        self,
        name: str,
        schema: TableSchema,
        partition_granularity: float = SECONDS_PER_DAY,
    ) -> None:
        if partition_granularity <= 0:
            raise ValidationError("partition_granularity must be positive")
        self.name = name
        self.schema = schema
        self.partition_granularity = partition_granularity
        self._partitions: dict[int, _Partition] = {}
        self._by_entity: dict[int, list[tuple[float, int]]] = {}
        self._rows: list[dict[str, object]] = []

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def partitions(self) -> list[int]:
        """Sorted partition keys that currently hold data."""
        return sorted(self._partitions)

    def append(self, rows: Iterable[dict[str, object]]) -> int:
        """Validate and append rows; return the number appended."""
        count = 0
        for row in rows:
            self.schema.validate_row(row)
            stored = dict(row)
            row_index = len(self._rows)
            self._rows.append(stored)
            key = partition_key(float(stored["timestamp"]), self.partition_granularity)
            self._partitions.setdefault(key, _Partition()).append(stored)
            entity = int(stored["entity_id"])  # type: ignore[arg-type]
            insort(
                self._by_entity.setdefault(entity, []),
                (float(stored["timestamp"]), row_index),  # type: ignore[arg-type]
            )
            count += 1
        return count

    def scan(
        self,
        start: float | None = None,
        end: float | None = None,
        entity_ids: set[int] | None = None,
    ) -> Iterator[dict[str, object]]:
        """Yield rows with ``start <= timestamp < end``, in time order.

        Only partitions overlapping the range are touched.
        """
        for key in self.partitions:
            part_start = key * self.partition_granularity
            part_end = part_start + self.partition_granularity
            if start is not None and part_end <= start:
                continue
            if end is not None and part_start >= end:
                continue
            for row in self._partitions[key].sorted_rows():
                ts = float(row["timestamp"])  # type: ignore[arg-type]
                if start is not None and ts < start:
                    continue
                if end is not None and ts >= end:
                    continue
                if entity_ids is not None and int(row["entity_id"]) not in entity_ids:  # type: ignore[arg-type]
                    continue
                yield row

    def read_partition(self, key: int) -> list[dict[str, object]]:
        """All rows of one partition, time-sorted."""
        if key not in self._partitions:
            raise PartitionNotFoundError(
                f"table {self.name!r} has no partition {key}; have {self.partitions}"
            )
        return self._partitions[key].sorted_rows()

    def latest_before(
        self, entity_id: int, timestamp: float
    ) -> dict[str, object] | None:
        """Latest row for ``entity_id`` with ``row.timestamp <= timestamp``.

        This is the point-in-time lookup: training joins must never see
        feature values from the future. Among rows sharing the maximal
        timestamp, the most recently appended one wins (upsert semantics).
        """
        index = self._by_entity.get(entity_id)
        if not index:
            return None
        # Find rightmost event with ts <= timestamp. Use +inf row index as
        # tiebreaker so events exactly at `timestamp` are included.
        position = bisect_right(index, (timestamp, float("inf")))
        if position == 0:
            return None
        __, row_index = index[position - 1]
        return self._rows[row_index]

    def events_between(
        self, entity_id: int, start: float, end: float
    ) -> list[dict[str, object]]:
        """Time-sorted events for one entity with ``start < timestamp <= end``.

        The interval is open at the start and closed at the end, matching the
        trailing-window semantics of feature aggregations evaluated *as of*
        ``end``.
        """
        index = self._by_entity.get(entity_id)
        if not index:
            return []
        lo = bisect_right(index, (start, float("inf")))
        hi = bisect_right(index, (end, float("inf")))
        return [self._rows[row_index] for __, row_index in index[lo:hi]]

    def column_array(
        self,
        column: str,
        start: float | None = None,
        end: float | None = None,
    ) -> np.ndarray:
        """A column as a numpy array over a time range (NULL -> NaN for
        float, -1 for int; string columns return an object array)."""
        if column not in self.schema.columns and column not in ("entity_id", "timestamp"):
            raise KeyError(f"table {self.name!r} has no column {column!r}")
        values = [row.get(column) for row in self.scan(start, end)]
        kind = self.schema.columns.get(column, "float" if column == "timestamp" else "int")
        if kind == "float":
            return np.array(
                [np.nan if v is None else float(v) for v in values], dtype=float
            )
        if kind == "int":
            return np.array([-1 if v is None else int(v) for v in values], dtype=np.int64)
        return np.array(values, dtype=object)

    def truncate_before(self, timestamp: float) -> int:
        """Drop all whole partitions that end at or before ``timestamp``.

        Retention for append-only event tables: only *complete* partitions
        older than the cutoff are removed (rows in a partition that straddles
        the cutoff are kept), so as-of reads at or after ``timestamp``
        are unaffected. Returns the number of rows dropped.
        """
        doomed_keys = [
            key
            for key in self._partitions
            if (key + 1) * self.partition_granularity <= timestamp
        ]
        if not doomed_keys:
            return 0
        doomed_rows = {
            id(row)
            for key in doomed_keys
            for row in self._partitions[key].rows
        }
        for key in doomed_keys:
            del self._partitions[key]

        dropped = 0
        survivors: list[dict[str, object]] = []
        old_index_of: dict[int, int] = {}
        for index, row in enumerate(self._rows):
            if id(row) in doomed_rows:
                dropped += 1
                continue
            old_index_of[index] = len(survivors)
            survivors.append(row)
        self._rows = survivors
        rebuilt: dict[int, list[tuple[float, int]]] = {}
        for entity, pairs in self._by_entity.items():
            kept = [
                (ts, old_index_of[row_index])
                for ts, row_index in pairs
                if row_index in old_index_of
            ]
            if kept:
                rebuilt[entity] = kept
        self._by_entity = rebuilt
        return dropped

    def entity_ids(self) -> list[int]:
        """All distinct entity ids seen so far, sorted."""
        return sorted(self._by_entity)

    def last_event_time(self) -> float | None:
        """Timestamp of the newest row, or None if the table is empty."""
        if not self._rows:
            return None
        return max(float(r["timestamp"]) for r in self._rows)  # type: ignore[arg-type]


class OfflineStore:
    """A namespace of :class:`OfflineTable` objects."""

    def __init__(self, partition_granularity: float = SECONDS_PER_DAY) -> None:
        self._tables: dict[str, OfflineTable] = {}
        self._partition_granularity = partition_granularity

    def create_table(self, name: str, schema: TableSchema) -> OfflineTable:
        if name in self._tables:
            raise AlreadyRegisteredError(f"offline table {name!r} already exists")
        table = OfflineTable(name, schema, self._partition_granularity)
        self._tables[name] = table
        return table

    def table(self, name: str) -> OfflineTable:
        if name not in self._tables:
            raise NotRegisteredError(
                f"no offline table {name!r}; have {sorted(self._tables)}"
            )
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise NotRegisteredError(f"no offline table {name!r}")
        del self._tables[name]
