"""Offline store: append-only, date-partitioned event tables.

This is the SQL-warehouse half of the feature store's dual datastore (paper
section 2.2.2). Tables are partitioned on date ("FSs support this workflow
by partitioning features on date") and support the two access paths the
store needs:

* **range scans** over partitions for batch materialization and metrics, and
* **as-of lookups** — the latest value per entity at or before a timestamp —
  which are the building block of point-in-time-correct training joins.

Rows are plain dicts validated against a :class:`TableSchema`. ``None``
encodes NULL for any column type.

Execution model (the columnar engine)
-------------------------------------
The *row-level API* (dict in, dict out) is the contract; the *execution
path* underneath is columnar, the way a warehouse would run it:

* each :class:`_Partition` lazily materializes a :class:`ColumnFrame` — a
  time-sorted columnar image of its rows (numpy value arrays plus null
  masks), invalidated by a dirty flag on append instead of re-sorting
  O(n log n) on every ``scan``;
* the per-entity as-of index is a pair of parallel numpy arrays
  ``(timestamps, row_indices)`` sorted by ``(timestamp, insertion order)``,
  rebuilt lazily, so a lookup is one ``np.searchsorted``;
* batched kernels (:meth:`OfflineTable.latest_before_batch`,
  :meth:`OfflineTable.events_between_batch`) group queries by entity and
  resolve each group with a single vectorized ``searchsorted`` — the
  substrate of the vectorized point-in-time join in
  :mod:`repro.core.feature_store`;
* table-level column caches back :meth:`OfflineTable.gather_float`, a
  direct column gather by row index that assembles training-matrix columns
  without touching row dicts.

Semantics are bit-for-bit those of the original row-at-a-time engine: the
parity suite (``tests/storage/test_columnar_parity.py``) holds both paths
to identical results.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.clock import SECONDS_PER_DAY, partition_key
from repro.errors import (
    AlreadyRegisteredError,
    NotRegisteredError,
    PartitionNotFoundError,
    SchemaMismatchError,
    ValidationError,
)

_ALLOWED_TYPES = {"float", "int", "string"}


@dataclass(frozen=True)
class TableSchema:
    """Column names and types for an offline table.

    ``entity_id`` (int) and ``timestamp`` (float) columns are implicit and
    must not be redeclared. ``columns`` maps name -> one of
    ``{"float", "int", "string"}``.
    """

    columns: dict[str, str]

    def __post_init__(self) -> None:
        for name, kind in self.columns.items():
            if name in ("entity_id", "timestamp"):
                raise ValidationError(f"column {name!r} is implicit, do not declare it")
            if kind not in _ALLOWED_TYPES:
                raise ValidationError(
                    f"column {name!r} has unknown type {kind!r}; "
                    f"allowed: {sorted(_ALLOWED_TYPES)}"
                )

    def column_kind(self, name: str) -> str:
        """Type of a column, including the implicit ones.

        Raises ``KeyError`` for unknown columns.
        """
        if name == "entity_id":
            return "int"
        if name == "timestamp":
            return "float"
        return self.columns[name]

    def validate_row(self, row: dict[str, object]) -> None:
        """Raise :class:`SchemaMismatchError` unless ``row`` fits the schema."""
        if "entity_id" not in row or "timestamp" not in row:
            raise SchemaMismatchError(
                f"row must carry entity_id and timestamp, got keys {sorted(row)}"
            )
        for name, kind in self.columns.items():
            if name not in row:
                raise SchemaMismatchError(f"row missing column {name!r}")
            value = row[name]
            if value is None:
                continue
            if kind == "float" and not isinstance(value, (int, float)):
                raise SchemaMismatchError(f"column {name!r} expects float, got {value!r}")
            if kind == "int" and not isinstance(value, (int, np.integer)):
                raise SchemaMismatchError(f"column {name!r} expects int, got {value!r}")
            if kind == "string" and not isinstance(value, str):
                raise SchemaMismatchError(f"column {name!r} expects str, got {value!r}")
        extras = set(row) - set(self.columns) - {"entity_id", "timestamp"}
        if extras:
            raise SchemaMismatchError(f"row has undeclared columns {sorted(extras)}")


class ColumnFrame:
    """A time-sorted, columnar image of one partition's rows.

    ``rows`` holds the *same* dict objects the table stores, ordered by
    ``(timestamp, insertion order)`` — the order ``scan`` yields. Column
    arrays are materialized lazily per column and cached; ``null_mask``
    distinguishes SQL NULL (``None``) from an actual NaN payload.

    Encoding per column kind:

    * ``float`` — float64 values with ``np.nan`` at NULL positions,
    * ``int`` — int64 values with ``0`` at NULL positions (masked),
    * ``string`` — object array with ``None`` at NULL positions.
    """

    __slots__ = ("rows", "timestamps", "entity_ids", "_schema", "_columns")

    def __init__(
        self,
        rows_sorted: list[dict[str, object]],
        timestamps_sorted: np.ndarray,
        schema: TableSchema,
    ) -> None:
        self.rows = rows_sorted
        self.timestamps = timestamps_sorted
        self.entity_ids = np.fromiter(
            (int(r["entity_id"]) for r in rows_sorted),  # type: ignore[arg-type]
            dtype=np.int64,
            count=len(rows_sorted),
        )
        self._schema = schema
        self._columns: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """``(values, null_mask)`` for one column, in frame (time) order."""
        if name == "timestamp":
            return self.timestamps, np.zeros(len(self.rows), dtype=bool)
        if name == "entity_id":
            return self.entity_ids, np.zeros(len(self.rows), dtype=bool)
        cached = self._columns.get(name)
        if cached is not None:
            return cached
        kind = self._schema.column_kind(name)
        built = _encode_column(
            [row.get(name) for row in self.rows], kind
        )
        self._columns[name] = built
        return built

    def time_slice(self, start: float | None, end: float | None) -> tuple[int, int]:
        """Index bounds ``[lo, hi)`` of rows with ``start <= ts < end``."""
        lo = 0 if start is None else int(
            np.searchsorted(self.timestamps, start, side="left")
        )
        hi = len(self.rows) if end is None else int(
            np.searchsorted(self.timestamps, end, side="left")
        )
        return lo, max(lo, hi)


def _encode_column(
    raw: list[object], kind: str
) -> tuple[np.ndarray, np.ndarray]:
    """Encode python values into ``(values, null_mask)`` arrays."""
    n = len(raw)
    null = np.fromiter((v is None for v in raw), dtype=bool, count=n)
    if kind == "float":
        values = np.fromiter(
            (np.nan if v is None else float(v) for v in raw),  # type: ignore[arg-type]
            dtype=np.float64,
            count=n,
        )
    elif kind == "int":
        values = np.fromiter(
            (0 if v is None else int(v) for v in raw),  # type: ignore[arg-type]
            dtype=np.int64,
            count=n,
        )
    else:
        values = np.array(raw, dtype=object)
    return values, null


class _Partition:
    """One date partition: rows plus a cached, lazily-sorted columnar frame.

    The frame (and therefore the sort) is recomputed only when the dirty
    flag says an append happened since the last build — previously every
    ``scan``/``read_partition`` re-sorted the partition O(n log n).
    """

    __slots__ = ("rows", "_schema", "_frame", "_dirty")

    def __init__(self, schema: TableSchema) -> None:
        self.rows: list[dict[str, object]] = []
        self._schema = schema
        self._frame: ColumnFrame | None = None
        self._dirty = False

    def append(self, row: dict[str, object]) -> None:
        self.rows.append(row)
        self._dirty = True

    def frame(self) -> ColumnFrame:
        """The partition's time-sorted columnar frame (cached)."""
        if self._frame is None or self._dirty:
            timestamps = np.fromiter(
                (float(r["timestamp"]) for r in self.rows),  # type: ignore[arg-type]
                dtype=np.float64,
                count=len(self.rows),
            )
            order = np.argsort(timestamps, kind="stable")
            rows_sorted = [self.rows[i] for i in order]
            self._frame = ColumnFrame(rows_sorted, timestamps[order], self._schema)
            self._dirty = False
        return self._frame

    def sorted_rows(self) -> list[dict[str, object]]:
        return list(self.frame().rows)


class _EntityIndex:
    """Per-entity as-of index: parallel ``(timestamps, row_indices)`` arrays.

    Appends go to plain python lists (O(1)); the numpy arrays — sorted by
    ``(timestamp, insertion order)`` so the *latest appended* row wins among
    equal timestamps — are rebuilt lazily on first lookup after a write.
    """

    __slots__ = ("_ts", "_rows", "_sorted_ts", "_sorted_rows", "_dirty")

    def __init__(self) -> None:
        self._ts: list[float] = []
        self._rows: list[int] = []
        self._sorted_ts: np.ndarray | None = None
        self._sorted_rows: np.ndarray | None = None
        self._dirty = False

    def __len__(self) -> int:
        return len(self._ts)

    def add(self, timestamp: float, row_index: int) -> None:
        self._ts.append(timestamp)
        self._rows.append(row_index)
        self._dirty = True

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(timestamps, row_indices)`` sorted by (timestamp, insertion)."""
        if self._sorted_ts is None or self._dirty:
            ts = np.asarray(self._ts, dtype=np.float64)
            rows = np.asarray(self._rows, dtype=np.int64)
            # Stable sort on timestamps == sort by (ts, insertion order),
            # because row indices are appended in increasing order.
            order = np.argsort(ts, kind="stable")
            self._sorted_ts = ts[order]
            self._sorted_rows = rows[order]
            self._dirty = False
        return self._sorted_ts, self._sorted_rows  # type: ignore[return-value]


class OfflineTable:
    """A single append-only event table.

    Maintains a per-entity ``(timestamps, row_indices)`` as-of index (numpy,
    lazily sorted) so as-of lookups are one ``searchsorted`` per entity even
    when events arrive out of order, plus batched kernels that resolve many
    ``(entity, timestamp)`` probes with one ``searchsorted`` per distinct
    entity.
    """

    def __init__(
        self,
        name: str,
        schema: TableSchema,
        partition_granularity: float = SECONDS_PER_DAY,
    ) -> None:
        if partition_granularity <= 0:
            raise ValidationError("partition_granularity must be positive")
        self.name = name
        self.schema = schema
        self.partition_granularity = partition_granularity
        self._partitions: dict[int, _Partition] = {}
        self._by_entity: dict[int, _EntityIndex] = {}
        self._rows: list[dict[str, object]] = []
        self._max_event_time: float | None = None
        # Table-level column cache over all rows in append order, keyed by
        # column name; valid only while the row count matches.
        self._column_cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._column_cache_rows = 0

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def partitions(self) -> list[int]:
        """Sorted partition keys that currently hold data."""
        return sorted(self._partitions)

    # -- writes ---------------------------------------------------------------

    def append(self, rows: Iterable[dict[str, object]]) -> int:
        """Validate and append rows; return the number appended."""
        count = 0
        for row in rows:
            self.schema.validate_row(row)
            stored = dict(row)
            row_index = len(self._rows)
            self._rows.append(stored)
            timestamp = float(stored["timestamp"])  # type: ignore[arg-type]
            key = partition_key(timestamp, self.partition_granularity)
            partition = self._partitions.get(key)
            if partition is None:
                partition = self._partitions[key] = _Partition(self.schema)
            partition.append(stored)
            entity = int(stored["entity_id"])  # type: ignore[arg-type]
            index = self._by_entity.get(entity)
            if index is None:
                index = self._by_entity[entity] = _EntityIndex()
            index.add(timestamp, row_index)
            if self._max_event_time is None or timestamp > self._max_event_time:
                self._max_event_time = timestamp
            count += 1
        return count

    # -- scans ----------------------------------------------------------------

    def scan(
        self,
        start: float | None = None,
        end: float | None = None,
        entity_ids: set[int] | None = None,
    ) -> Iterator[dict[str, object]]:
        """Yield rows with ``start <= timestamp < end``, in time order.

        Only partitions overlapping the range are touched; within a
        partition the range bounds are found by binary search on the cached
        sorted frame instead of filtering row by row.
        """
        for frame, lo, hi in self.scan_frames(start, end):
            if entity_ids is None:
                yield from frame.rows[lo:hi]
            else:
                hits = np.flatnonzero(
                    np.isin(frame.entity_ids[lo:hi], list(entity_ids))
                )
                for offset in hits:
                    yield frame.rows[lo + int(offset)]

    def scan_frames(
        self, start: float | None = None, end: float | None = None
    ) -> Iterator[tuple[ColumnFrame, int, int]]:
        """Columnar scan: yield ``(frame, lo, hi)`` per overlapping partition.

        ``frame.rows[lo:hi]`` (equivalently any column array sliced the same
        way) are exactly the rows ``scan(start, end)`` would yield for that
        partition, in the same order. This is the pushdown surface the
        vectorized query layer executes on.
        """
        for key in self.partitions:
            part_start = key * self.partition_granularity
            part_end = part_start + self.partition_granularity
            if start is not None and part_end <= start:
                continue
            if end is not None and part_start >= end:
                continue
            frame = self._partitions[key].frame()
            lo, hi = frame.time_slice(start, end)
            if lo < hi:
                yield frame, lo, hi

    def read_partition(self, key: int) -> list[dict[str, object]]:
        """All rows of one partition, time-sorted."""
        if key not in self._partitions:
            raise PartitionNotFoundError(
                f"table {self.name!r} has no partition {key}; have {self.partitions}"
            )
        return self._partitions[key].sorted_rows()

    # -- as-of lookups ---------------------------------------------------------

    def latest_before(
        self, entity_id: int, timestamp: float
    ) -> dict[str, object] | None:
        """Latest row for ``entity_id`` with ``row.timestamp <= timestamp``.

        This is the point-in-time lookup: training joins must never see
        feature values from the future. Among rows sharing the maximal
        timestamp, the most recently appended one wins (upsert semantics).
        """
        index = self._by_entity.get(entity_id)
        if index is None or len(index) == 0:
            return None
        ts, rows = index.arrays()
        position = int(np.searchsorted(ts, timestamp, side="right"))
        if position == 0:
            return None
        return self._rows[int(rows[position - 1])]

    def events_between(
        self, entity_id: int, start: float, end: float
    ) -> list[dict[str, object]]:
        """Time-sorted events for one entity with ``start < timestamp <= end``.

        The interval is open at the start and closed at the end, matching the
        trailing-window semantics of feature aggregations evaluated *as of*
        ``end``.
        """
        index = self._by_entity.get(entity_id)
        if index is None or len(index) == 0:
            return []
        ts, rows = index.arrays()
        lo = int(np.searchsorted(ts, start, side="right"))
        hi = int(np.searchsorted(ts, end, side="right"))
        return [self._rows[int(i)] for i in rows[lo:hi]]

    # -- batched as-of kernels -------------------------------------------------

    def latest_before_index_batch(
        self,
        entity_ids: Sequence[int] | np.ndarray,
        timestamps: Sequence[float] | np.ndarray,
    ) -> np.ndarray:
        """Row indices of :meth:`latest_before` for many probes at once.

        Probes are grouped by entity and each group is resolved with a
        single vectorized ``np.searchsorted`` against that entity's as-of
        index. Returns an int64 array aligned with the inputs; ``-1`` marks
        probes with no eligible row. Use :meth:`row_at`/:meth:`gather_float`
        /:meth:`gather_values` to dereference.
        """
        eids = np.asarray(entity_ids, dtype=np.int64)
        ts = np.asarray(timestamps, dtype=np.float64)
        if eids.shape != ts.shape:
            raise ValidationError(
                f"entity_ids and timestamps must align "
                f"({eids.shape} vs {ts.shape})"
            )
        out = np.full(eids.shape, -1, dtype=np.int64)
        if eids.size == 0:
            return out
        order = np.argsort(eids, kind="stable")
        sorted_eids = eids[order]
        boundaries = np.flatnonzero(np.diff(sorted_eids)) + 1
        for group in np.split(order, boundaries):
            index = self._by_entity.get(int(eids[group[0]]))
            if index is None or len(index) == 0:
                continue
            idx_ts, idx_rows = index.arrays()
            positions = np.searchsorted(idx_ts, ts[group], side="right")
            hit = positions > 0
            out[group[hit]] = idx_rows[positions[hit] - 1]
        return out

    def latest_before_batch(
        self,
        entity_ids: Sequence[int] | np.ndarray,
        timestamps: Sequence[float] | np.ndarray,
    ) -> list[dict[str, object] | None]:
        """Batched :meth:`latest_before`: one result per ``(entity, ts)`` probe."""
        indices = self.latest_before_index_batch(entity_ids, timestamps)
        return [None if i < 0 else self._rows[int(i)] for i in indices]

    def events_between_index_batch(
        self,
        entity_ids: Sequence[int] | np.ndarray,
        starts: float | Sequence[float] | np.ndarray,
        ends: float | Sequence[float] | np.ndarray,
    ) -> list[np.ndarray]:
        """Row-index windows of :meth:`events_between` for many probes.

        ``starts``/``ends`` may be scalars (broadcast) or arrays aligned with
        ``entity_ids``. Each result is an int64 array of row indices in
        time order; one vectorized ``searchsorted`` pair per distinct entity.
        """
        eids = np.asarray(entity_ids, dtype=np.int64)
        lo_ts = np.broadcast_to(
            np.asarray(starts, dtype=np.float64), eids.shape
        )
        hi_ts = np.broadcast_to(np.asarray(ends, dtype=np.float64), eids.shape)
        empty = np.empty(0, dtype=np.int64)
        out: list[np.ndarray] = [empty] * eids.size
        if eids.size == 0:
            return out
        order = np.argsort(eids, kind="stable")
        boundaries = np.flatnonzero(np.diff(eids[order])) + 1
        for group in np.split(order, boundaries):
            index = self._by_entity.get(int(eids[group[0]]))
            if index is None or len(index) == 0:
                continue
            idx_ts, idx_rows = index.arrays()
            lo = np.searchsorted(idx_ts, lo_ts[group], side="right")
            hi = np.searchsorted(idx_ts, hi_ts[group], side="right")
            for probe, probe_lo, probe_hi in zip(group, lo, hi):
                if probe_lo < probe_hi:
                    out[int(probe)] = idx_rows[probe_lo:probe_hi]
        return out

    def events_between_batch(
        self,
        entity_ids: Sequence[int] | np.ndarray,
        starts: float | Sequence[float] | np.ndarray,
        ends: float | Sequence[float] | np.ndarray,
    ) -> list[list[dict[str, object]]]:
        """Batched :meth:`events_between` over many ``(entity, window)`` probes."""
        windows = self.events_between_index_batch(entity_ids, starts, ends)
        return [
            [self._rows[int(i)] for i in window] for window in windows
        ]

    # -- row / column gathers --------------------------------------------------

    def row_at(self, row_index: int) -> dict[str, object]:
        """The stored row dict at a batch-kernel row index."""
        return self._rows[row_index]

    def gather_values(
        self, column: str, row_indices: np.ndarray
    ) -> list[object]:
        """Column values at the given row indices (``None`` where ``-1``).

        Returns the exact stored python objects, preserving the row path's
        value identity for mixed-type consumers.
        """
        if column not in self.schema.columns and column not in (
            "entity_id", "timestamp",
        ):
            raise KeyError(f"table {self.name!r} has no column {column!r}")
        rows = self._rows
        return [
            None if i < 0 else rows[int(i)].get(column) for i in row_indices
        ]

    def gather_float(self, column: str, row_indices: np.ndarray) -> np.ndarray:
        """Float column gather by row index: NaN where ``-1`` or NULL.

        The vectorized training-join kernel: one fancy-index per feature
        column instead of a per-cell ``float(row.get(...))`` loop. Rejects
        string columns (training matrices are numeric).
        """
        kind = self.schema.column_kind(column)  # KeyError on unknown
        if kind == "string":
            raise ValidationError(
                f"column {column!r} of table {self.name!r} is a string column; "
                "gather_float requires a numeric column"
            )
        indices = np.asarray(row_indices, dtype=np.int64)
        out = np.full(indices.shape, np.nan, dtype=np.float64)
        valid = indices >= 0
        if not valid.any():
            return out
        values, null = self._column_data(column)
        taken = indices[valid]
        gathered = values[taken].astype(np.float64, copy=True)
        gathered[null[taken]] = np.nan
        out[valid] = gathered
        return out

    def gather_numeric(
        self, column: str, row_indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(values, null_mask)`` of a numeric column at arbitrary row indices.

        Unlike :meth:`gather_float` this keeps NULL separate from an actual
        NaN payload, which window aggregates need (NULL is *skipped*, a NaN
        payload participates). Rejects string columns. ``-1`` indices yield
        a NULL-masked slot.
        """
        kind = self.schema.column_kind(column)  # KeyError on unknown
        if kind == "string":
            raise ValidationError(
                f"column {column!r} of table {self.name!r} is a string column; "
                "gather_numeric requires a numeric column"
            )
        indices = np.asarray(row_indices, dtype=np.int64)
        values, null = self._column_data(column)
        out = np.zeros(indices.shape, dtype=values.dtype)
        out_null = np.ones(indices.shape, dtype=bool)
        valid = indices >= 0
        if valid.any():
            taken = indices[valid]
            out[valid] = values[taken]
            out_null[valid] = null[taken]
        return out, out_null

    def _column_data(self, column: str) -> tuple[np.ndarray, np.ndarray]:
        """Table-level ``(values, null_mask)`` over all rows in append order.

        Cached; invalidated whenever the row count changes (append or
        truncate), so batch kernels that probe a quiescent table pay the
        O(n) encode once.
        """
        if self._column_cache_rows != len(self._rows):
            self._column_cache.clear()
            self._column_cache_rows = len(self._rows)
        cached = self._column_cache.get(column)
        if cached is not None:
            return cached
        kind = self.schema.column_kind(column)
        built = _encode_column([row.get(column) for row in self._rows], kind)
        self._column_cache[column] = built
        return built

    def column_array(
        self,
        column: str,
        start: float | None = None,
        end: float | None = None,
    ) -> np.ndarray:
        """A column as a numpy array over a time range (NULL -> NaN for
        float, -1 for int; string columns return an object array)."""
        if column not in self.schema.columns and column not in ("entity_id", "timestamp"):
            raise KeyError(f"table {self.name!r} has no column {column!r}")
        kind = self.schema.columns.get(column, "float" if column == "timestamp" else "int")
        pieces: list[np.ndarray] = []
        for frame, lo, hi in self.scan_frames(start, end):
            values, null = frame.column(column)
            chunk = values[lo:hi]
            if kind == "float":
                pieces.append(chunk.astype(np.float64, copy=True))
            elif kind == "int":
                piece = chunk.astype(np.int64, copy=True)
                piece[null[lo:hi]] = -1
                pieces.append(piece)
            else:
                pieces.append(chunk.copy())
        if not pieces:
            if kind == "float":
                return np.array([], dtype=float)
            if kind == "int":
                return np.array([], dtype=np.int64)
            return np.array([], dtype=object)
        return np.concatenate(pieces)

    # -- retention -------------------------------------------------------------

    def truncate_before(self, timestamp: float) -> int:
        """Drop all whole partitions that end at or before ``timestamp``.

        Retention for append-only event tables: only *complete* partitions
        older than the cutoff are removed (rows in a partition that straddles
        the cutoff are kept), so as-of reads at or after ``timestamp``
        are unaffected. Returns the number of rows dropped.
        """
        doomed_keys = [
            key
            for key in self._partitions
            if (key + 1) * self.partition_granularity <= timestamp
        ]
        if not doomed_keys:
            return 0
        doomed_rows = {
            id(row)
            for key in doomed_keys
            for row in self._partitions[key].rows
        }
        for key in doomed_keys:
            del self._partitions[key]

        dropped = 0
        survivors: list[dict[str, object]] = []
        for row in self._rows:
            if id(row) in doomed_rows:
                dropped += 1
            else:
                survivors.append(row)
        self._rows = survivors
        # Rebuild entity indexes from scratch in (new) append order —
        # insertion-order ties keep the same relative order as before the
        # truncate, so upsert semantics are preserved.
        rebuilt: dict[int, _EntityIndex] = {}
        max_ts: float | None = None
        for row_index, row in enumerate(survivors):
            entity = int(row["entity_id"])  # type: ignore[arg-type]
            ts = float(row["timestamp"])  # type: ignore[arg-type]
            index = rebuilt.get(entity)
            if index is None:
                index = rebuilt[entity] = _EntityIndex()
            index.add(ts, row_index)
            if max_ts is None or ts > max_ts:
                max_ts = ts
        self._by_entity = rebuilt
        self._max_event_time = max_ts
        self._column_cache.clear()
        self._column_cache_rows = len(survivors)
        return dropped

    # -- metadata --------------------------------------------------------------

    def entity_ids(self) -> list[int]:
        """All distinct entity ids seen so far, sorted."""
        return sorted(self._by_entity)

    def last_event_time(self) -> float | None:
        """Timestamp of the newest row, or None if the table is empty.

        O(1): a running max is maintained by :meth:`append` and recomputed
        only by :meth:`truncate_before`.
        """
        return self._max_event_time


class OfflineStore:
    """A namespace of :class:`OfflineTable` objects."""

    def __init__(self, partition_granularity: float = SECONDS_PER_DAY) -> None:
        self._tables: dict[str, OfflineTable] = {}
        self._partition_granularity = partition_granularity

    def create_table(self, name: str, schema: TableSchema) -> OfflineTable:
        if name in self._tables:
            raise AlreadyRegisteredError(f"offline table {name!r} already exists")
        table = OfflineTable(name, schema, self._partition_granularity)
        self._tables[name] = table
        return table

    def table(self, name: str) -> OfflineTable:
        if name not in self._tables:
            raise NotRegisteredError(
                f"no offline table {name!r}; have {sorted(self._tables)}"
            )
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise NotRegisteredError(f"no offline table {name!r}")
        del self._tables[name]
