"""One-hidden-layer MLP classifier (pure numpy).

Mini-batch SGD with ReLU activation and softmax output. Seeded explicitly:
unlike :class:`repro.models.linear.LogisticRegression`, the MLP's own
initialization noise is a *controlled* variable — instability experiments
hold the model seed fixed while varying the embedding seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError, ValidationError


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class MLPClassifier:
    """ReLU MLP with one hidden layer."""

    def __init__(
        self,
        hidden: int = 32,
        learning_rate: float = 0.1,
        epochs: int = 60,
        batch_size: int = 64,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if hidden <= 0 or learning_rate <= 0 or epochs <= 0 or batch_size <= 0:
            raise ValidationError("hidden, learning_rate, epochs, batch_size must be positive")
        if l2 < 0:
            raise ValidationError(f"l2 must be non-negative ({l2=})")
        self.hidden = hidden
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self.w1: np.ndarray | None = None
        self.b1: np.ndarray | None = None
        self.w2: np.ndarray | None = None
        self.b2: np.ndarray | None = None
        self.n_classes: int = 0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MLPClassifier":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2 or len(features) != len(labels):
            raise ValidationError(
                f"bad shapes: features {features.shape}, labels {labels.shape}"
            )
        if not np.isfinite(features).all():
            raise TrainingError("features contain NaN/inf; impute before fitting")

        rng = np.random.default_rng(self.seed)
        n, d = features.shape
        self.n_classes = max(2, int(labels.max()) + 1)

        scale1 = np.sqrt(2.0 / d)
        scale2 = np.sqrt(2.0 / self.hidden)
        self.w1 = rng.normal(0.0, scale1, size=(d, self.hidden))
        self.b1 = np.zeros(self.hidden)
        self.w2 = rng.normal(0.0, scale2, size=(self.hidden, self.n_classes))
        self.b2 = np.zeros(self.n_classes)

        one_hot = np.zeros((n, self.n_classes))
        one_hot[np.arange(n), labels] = 1.0

        for epoch in range(self.epochs):
            order = rng.permutation(n)
            lr = self.learning_rate * (1.0 - 0.5 * epoch / self.epochs)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                x = features[batch]
                y = one_hot[batch]

                pre = x @ self.w1 + self.b1
                hidden = np.maximum(pre, 0.0)
                probs = _softmax(hidden @ self.w2 + self.b2)

                g_out = (probs - y) / len(batch)
                g_w2 = hidden.T @ g_out + self.l2 * self.w2
                g_b2 = g_out.sum(axis=0)
                g_hidden = (g_out @ self.w2.T) * (pre > 0)
                g_w1 = x.T @ g_hidden + self.l2 * self.w1
                g_b1 = g_hidden.sum(axis=0)

                self.w2 -= lr * g_w2
                self.b2 -= lr * g_b2
                self.w1 -= lr * g_w1
                self.b1 -= lr * g_b1
        return self

    def _check_fitted(self) -> None:
        if self.w1 is None:
            raise TrainingError("model not fitted; call fit() first")

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        features = np.asarray(features, dtype=float)
        hidden = np.maximum(features @ self.w1 + self.b1, 0.0)
        return _softmax(hidden @ self.w2 + self.b2)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)
