"""Feature preprocessing: imputation and scaling.

Training sets built by point-in-time joins legitimately contain NaNs (an
entity may predate any materialization); these transformers fit statistics
on training data only — fitting on serving data would itself be a
training/serving skew bug.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.errors import TrainingError, ValidationError


class MeanImputer:
    """Replace NaNs with per-column training means."""

    def __init__(self) -> None:
        self.means: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "MeanImputer":
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise ValidationError(f"expected (n, d) matrix, got {features.shape}")
        with warnings.catch_warnings():
            # All-NaN columns warn inside nanmean; they are handled below.
            warnings.simplefilter("ignore", RuntimeWarning)
            self.means = np.nanmean(features, axis=0)
        # Columns that are entirely NaN get 0.0.
        self.means = np.where(np.isnan(self.means), 0.0, self.means)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.means is None:
            raise TrainingError("imputer not fitted")
        features = np.asarray(features, dtype=float).copy()
        mask = np.isnan(features)
        features[mask] = np.broadcast_to(self.means, features.shape)[mask]
        return features

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


class StandardScaler:
    """Zero-mean unit-variance scaling (NaN-aware fit)."""

    def __init__(self) -> None:
        self.means: np.ndarray | None = None
        self.stds: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise ValidationError(f"expected (n, d) matrix, got {features.shape}")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            self.means = np.nanmean(features, axis=0)
            self.stds = np.nanstd(features, axis=0)
        self.means = np.where(np.isnan(self.means), 0.0, self.means)
        self.stds = np.where(
            np.isnan(self.stds) | (self.stds == 0), 1.0, self.stds
        )
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.means is None or self.stds is None:
            raise TrainingError("scaler not fitted")
        return (np.asarray(features, dtype=float) - self.means) / self.stds

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)
