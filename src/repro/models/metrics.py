"""Classification metrics, including the per-slice view monitoring needs."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def _check_lengths(y_true: np.ndarray, y_pred: np.ndarray) -> None:
    if len(y_true) != len(y_pred):
        raise ValidationError(f"length mismatch: {len(y_true)} vs {len(y_pred)}")
    if len(y_true) == 0:
        raise ValidationError("cannot score zero examples")


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    _check_lengths(y_true, y_pred)
    return float(np.mean(np.asarray(y_true) == np.asarray(y_pred)))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> np.ndarray:
    """``(n_classes, n_classes)`` matrix; rows = true, columns = predicted."""
    _check_lengths(y_true, y_pred)
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    k = n_classes if n_classes is not None else int(max(y_true.max(), y_pred.max())) + 1
    matrix = np.zeros((k, k), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, positive_class: int = 1
) -> tuple[float, float, float]:
    """Binary precision, recall and F1 for one positive class.

    Conventions: 0/0 precision or recall is 0.0.
    """
    _check_lengths(y_true, y_pred)
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    tp = float(np.sum((y_pred == positive_class) & (y_true == positive_class)))
    fp = float(np.sum((y_pred == positive_class) & (y_true != positive_class)))
    fn = float(np.sum((y_pred != positive_class) & (y_true == positive_class)))
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return precision, recall, f1


def f1_score(
    y_true: np.ndarray, y_pred: np.ndarray, average: str = "binary"
) -> float:
    """F1: ``binary`` (class 1), ``macro`` or ``micro`` over all classes."""
    _check_lengths(y_true, y_pred)
    if average == "binary":
        return precision_recall_f1(y_true, y_pred, positive_class=1)[2]
    classes = np.unique(np.concatenate([np.asarray(y_true), np.asarray(y_pred)]))
    if average == "macro":
        scores = [
            precision_recall_f1(y_true, y_pred, positive_class=int(c))[2]
            for c in classes
        ]
        return float(np.mean(scores))
    if average == "micro":
        return accuracy(y_true, y_pred)  # micro-F1 == accuracy for single-label
    raise ValidationError(f"unknown average {average!r}; use binary/macro/micro")


def slice_accuracies(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    slices: dict[str, np.ndarray],
    min_size: int = 1,
) -> dict[str, tuple[float, int]]:
    """Accuracy per named slice: ``name -> (accuracy, support)``.

    Slices smaller than ``min_size`` are dropped. This is the fine-grained
    view (paper section 3.1.3, Robustness Gym-style) that surfaces
    subpopulations where the model underperforms.
    """
    _check_lengths(y_true, y_pred)
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    out: dict[str, tuple[float, int]] = {}
    for name, mask in slices.items():
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != y_true.shape:
            raise ValidationError(f"slice {name!r} mask shape mismatch")
        support = int(mask.sum())
        if support < min_size:
            continue
        out[name] = (float(np.mean(y_true[mask] == y_pred[mask])), support)
    return out
