"""Downstream model substrate.

The paper's downstream systems (recommenders, rankers, NED products) are
stand-ins here: numpy logistic regression and MLP classifiers with a
sklearn-ish ``fit``/``predict``/``predict_proba`` interface, plus the
evaluation metrics (accuracy, F1, per-slice accuracy) the monitoring and
patching layers consume.
"""

from repro.models.linear import LogisticRegression
from repro.models.metrics import (
    accuracy,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
    slice_accuracies,
)
from repro.models.mlp import MLPClassifier
from repro.models.preprocess import MeanImputer, StandardScaler

__all__ = [
    "LogisticRegression",
    "MLPClassifier",
    "MeanImputer",
    "StandardScaler",
    "accuracy",
    "confusion_matrix",
    "f1_score",
    "precision_recall_f1",
    "slice_accuracies",
]
