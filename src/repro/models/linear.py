"""Multinomial logistic regression (pure numpy).

Full-batch gradient descent on the softmax cross-entropy with L2
regularization. Deterministic given the data (weights start at zero), which
matters for the reproduction: downstream *instability* must come from the
embeddings, not from the classifier's own training noise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError, ValidationError


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegression:
    """Softmax classifier with L2 regularization.

    Supports ``sample_weight`` in :meth:`fit`, which the weak-supervision
    patching path uses to train on probabilistic labels.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        epochs: int = 200,
        l2: float = 1e-4,
        tolerance: float = 1e-7,
    ) -> None:
        if learning_rate <= 0 or epochs <= 0:
            raise ValidationError("learning_rate and epochs must be positive")
        if l2 < 0:
            raise ValidationError(f"l2 must be non-negative ({l2=})")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.tolerance = tolerance
        self.weights: np.ndarray | None = None
        self.bias: np.ndarray | None = None
        self.n_classes: int = 0

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LogisticRegression":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2 or len(features) != len(labels):
            raise ValidationError(
                f"bad shapes: features {features.shape}, labels {labels.shape}"
            )
        if not np.isfinite(features).all():
            raise TrainingError(
                "features contain NaN/inf; impute before fitting "
                "(see repro.models.preprocess.MeanImputer)"
            )
        if labels.min() < 0:
            raise ValidationError("labels must be non-negative class ids")

        n, d = features.shape
        self.n_classes = int(labels.max()) + 1
        if self.n_classes < 2:
            self.n_classes = 2
        one_hot = np.zeros((n, self.n_classes))
        one_hot[np.arange(n), labels] = 1.0

        if sample_weight is None:
            sample_weight = np.ones(n)
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)
            if sample_weight.shape != (n,):
                raise ValidationError("sample_weight must be (n,)")
        weight_sum = sample_weight.sum()
        if weight_sum <= 0:
            raise ValidationError("sample_weight must have positive mass")

        self.weights = np.zeros((d, self.n_classes))
        self.bias = np.zeros(self.n_classes)
        previous_loss = np.inf
        for __ in range(self.epochs):
            probs = _softmax(features @ self.weights + self.bias)
            error = (probs - one_hot) * sample_weight[:, None] / weight_sum
            grad_w = features.T @ error + self.l2 * self.weights
            grad_b = error.sum(axis=0)
            self.weights -= self.learning_rate * grad_w
            self.bias -= self.learning_rate * grad_b

            loss = float(
                -(sample_weight @ np.log(probs[np.arange(n), labels] + 1e-12))
                / weight_sum
            )
            if abs(previous_loss - loss) < self.tolerance:
                break
            previous_loss = loss
        return self

    def _check_fitted(self) -> None:
        if self.weights is None:
            raise TrainingError("model not fitted; call fit() first")

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        features = np.asarray(features, dtype=float)
        return _softmax(features @ self.weights + self.bias)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Raw logits (useful for margin-based analyses)."""
        self._check_fitted()
        return np.asarray(features, dtype=float) @ self.weights + self.bias
