"""The retrying client: the other half of the wire contract.

:class:`FeatureClient` is what a deployed model process holds instead of
an in-process gateway reference. It speaks exactly the protocol
:mod:`repro.net.protocol` defines, and its retry loop is driven by the
server's own error envelope — not by guessing from HTTP status codes:

* a **retryable** envelope (throttled, overloaded, unavailable,
  transient_store, deadline_exceeded, backpressure) is retried with
  exponential backoff, waiting at least the server's ``Retry-After``
  hint when one is present — the server knows when capacity returns, the
  client only knows how long it has waited;
* a **terminal** envelope (not_found, invalid_argument, unauthenticated,
  …) is raised immediately as the *decoded* :mod:`repro.errors`
  exception class, so ``except NotRegisteredError:`` works identically
  against a remote gateway and a local one;
* a **transport** failure (connection refused/reset) is retryable by
  definition — with one free immediate reconnect when the failure hit a
  *reused* keep-alive connection, the classic stale-connection case.

Every attempt shares one request deadline: it is sent to the server as
``X-Deadline-Ms`` (recomputed per attempt from the *remaining* budget,
so a retry never asks the server for time the client no longer has) and
locally bounds the socket timeout. Connections are per-thread
(``http.client`` is not thread-safe), so one client instance can be
shared by a multi-threaded loadgen.
"""

from __future__ import annotations

import http.client
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.errors import DeadlineExceededError
from repro.net.protocol import (
    API_PREFIX,
    DEADLINE_HEADER,
    JSON_CONTENT_TYPE,
    PRIORITY_HEADER,
    TENANT_HEADER,
    decode_error,
    dump_json,
    is_retryable,
    parse_json_body,
)
from repro.runtime import Deadline, RetryPolicy


@dataclass(frozen=True)
class ClientConfig:
    """How one client talks to one server."""

    host: str = "127.0.0.1"
    port: int = 0
    token: str | None = None
    tenant: str | None = None
    priority: str | None = None  # "high" | "best_effort" | None (server default)
    default_deadline_s: float = 0.5
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_retries=3, backoff_s=0.01)
    )


class FeatureClient:
    """A thread-safe, retrying HTTP client for the ``repro.net`` surface."""

    def __init__(self, config: ClientConfig) -> None:
        self.config = config
        self._local = threading.local()
        self.attempts = 0  # total HTTP attempts (inspectable by tests/bench)
        self.retries = 0
        self._counter_lock = threading.Lock()

    @classmethod
    def for_server(cls, server, **overrides) -> "FeatureClient":
        """Convenience: a client pointed at a running FeatureServer."""
        host, port = server.address
        return cls(ClientConfig(host=host, port=port, **overrides))

    # -- endpoints ------------------------------------------------------------

    def get_features(
        self,
        namespace: str,
        entity_id: int,
        policy: str | None = None,
        deadline_s: float | None = None,
    ) -> dict | None:
        suffix = f"?policy={policy}" if policy else ""
        payload = self.request(
            "GET",
            f"/features/{namespace}/{entity_id}{suffix}",
            deadline_s=deadline_s,
        )
        return payload.get("features")

    def get_features_batch(
        self,
        namespace: str,
        entity_ids: list[int],
        policy: str | None = None,
        deadline_s: float | None = None,
    ) -> list[dict | None]:
        body: dict[str, object] = {"entity_ids": entity_ids}
        if policy:
            body["policy"] = policy
        payload = self.request(
            "POST", f"/features/{namespace}", body=body, deadline_s=deadline_s
        )
        return payload.get("features", [])

    def write_features(
        self,
        namespace: str,
        entity_id: int,
        values: dict,
        event_time: float | None = None,
        deadline_s: float | None = None,
    ) -> None:
        body: dict[str, object] = {"values": values}
        if event_time is not None:
            body["event_time"] = event_time
        self.request(
            "PUT",
            f"/features/{namespace}/{entity_id}",
            body=body,
            deadline_s=deadline_s,
        )

    def search_vectors(
        self,
        name: str,
        query: list[float],
        k: int = 10,
        version: int | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        body: dict[str, object] = {"query": list(query), "k": k}
        if version is not None:
            body["version"] = version
        return self.request(
            "POST", f"/vectors/{name}/search", body=body, deadline_s=deadline_s
        )

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self, json_format: bool = True) -> dict | str:
        headers = {"Accept": JSON_CONTENT_TYPE if json_format else "text/plain"}
        status, raw = self._send("GET", "/metrics", None, headers, 2.0)
        if status != 200:
            raise decode_error(parse_json_body(raw))
        return parse_json_body(raw) if json_format else raw.decode("utf-8")

    # -- the retry loop -------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        """One logical request: attempts until success, terminal error, or
        the shared deadline runs out."""
        deadline = Deadline.after(deadline_s or self.config.default_deadline_s)
        attempt = 0
        last_exc: BaseException | None = None
        while True:
            remaining = deadline.remaining()
            if remaining <= 0:
                raise DeadlineExceededError(
                    f"{method} {path}: client deadline exhausted after "
                    f"{attempt} attempt(s); last error: {last_exc!r}"
                ) from last_exc
            with self._counter_lock:
                self.attempts += 1
            try:
                status, raw = self._send(
                    method, path, body, self._headers(remaining), remaining
                )
            except (ConnectionError, socket.timeout, TimeoutError, OSError) as exc:
                last_exc = exc
            else:
                if status < 400:
                    return parse_json_body(raw)
                exc = decode_error(parse_json_body(raw))
                if not is_retryable(exc):
                    raise exc
                last_exc = exc
            attempt += 1
            if attempt > self.config.retry.max_retries:
                if getattr(last_exc, "code", None) is not None:
                    # a decoded envelope is the real failure — surface it
                    # (a non-retrying client sees ThrottledError, not a
                    # synthetic deadline wrapper)
                    raise last_exc  # type: ignore[misc]
                raise DeadlineExceededError(
                    f"{method} {path}: retries exhausted after {attempt} "
                    f"attempt(s); last error: {last_exc!r}"
                ) from last_exc
            with self._counter_lock:
                self.retries += 1
            pause = max(
                self.config.retry.backoff_for(attempt),
                float(getattr(last_exc, "retry_after_s", 0.0)),
            )
            deadline.sleep(min(pause, max(deadline.remaining(), 0.0)))

    def _headers(self, remaining_s: float) -> dict[str, str]:
        headers = {
            "Content-Type": JSON_CONTENT_TYPE,
            "Accept": JSON_CONTENT_TYPE,
            # per-attempt recomputation: the server only ever sees the
            # budget the client actually has left
            DEADLINE_HEADER: str(max(int(remaining_s * 1000), 1)),
        }
        if self.config.token:
            headers["Authorization"] = f"Bearer {self.config.token}"
        if self.config.tenant:
            headers[TENANT_HEADER] = self.config.tenant
        if self.config.priority:
            headers[PRIORITY_HEADER] = self.config.priority
        return headers

    # -- transport ------------------------------------------------------------

    def _connection(self, timeout_s: float) -> tuple[http.client.HTTPConnection, bool]:
        """The calling thread's keep-alive connection; (conn, was_reused)."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.config.host, self.config.port, timeout=timeout_s
            )
            self._local.conn = conn
            return conn, False
        conn.timeout = timeout_s
        if conn.sock is not None:
            conn.sock.settimeout(timeout_s)
        return conn, True

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def _send(
        self,
        method: str,
        path: str,
        body: dict | None,
        headers: dict[str, str],
        timeout_s: float,
    ) -> tuple[int, bytes]:
        payload = dump_json(body) if body is not None else None
        url = API_PREFIX + path
        for reconnect in (False, True):
            conn, reused = self._connection(timeout_s)
            try:
                if conn.sock is None:
                    conn.connect()
                    # request headers and body are separate send()s;
                    # Nagle would serialize them behind a delayed ACK
                    conn.sock.setsockopt(
                        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                    )
                conn.request(method, url, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                if response.getheader("Connection", "").lower() == "close":
                    self._drop_connection()
                return response.status, raw
            except (
                http.client.HTTPException,
                ConnectionError,
                socket.timeout,
                TimeoutError,
                OSError,
            ):
                self._drop_connection()
                # a dead *reused* keep-alive connection gets one free
                # immediate reconnect; a fresh connection failing is real
                if reconnect or not reused:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "FeatureClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
