"""Closed-loop Zipfian load generation over the network surface.

The serving-plane loadgen (:mod:`repro.serving.loadgen`) drives a Python
callable; this one drives real sockets through :class:`FeatureClient`
instances, which is what makes E21's claims *network* claims — every
measured latency includes JSON encode, TCP round trip, HTTP parse,
admission control and the envelope decode on the way back.

The E21-specific piece is the **priority mix**: ``high_fraction`` of the
clients declare ``X-Priority: high`` (a deployed ranking model), the
rest ``best_effort`` (a batch backfill). Per-class outcomes are reported
separately, because the whole point of watermark shedding is that those
two populations experience overload *differently*: past saturation the
best-effort class absorbs the 429/503s while the high class keeps its
deadline success rate.

Clients here are deliberately **non-retrying** (``max_retries=0``): the
loadgen measures what the *server* does under pressure, and retries
would both hide sheds (a retried request eventually succeeds) and
amplify offered load non-linearly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.datagen.workloads import ZipfianWorkloadConfig, generate_zipfian_keys
from repro.errors import ValidationError
from repro.net.client import ClientConfig, FeatureClient
from repro.net.protocol import OverloadedError, ThrottledError
from repro.runtime import RetryPolicy


@dataclass(frozen=True)
class NetLoadConfig:
    """Shape of one closed-loop network run."""

    host: str = "127.0.0.1"
    port: int = 0
    namespace: str = "profile"
    n_clients: int = 8
    requests_per_client: int = 100
    n_keys: int = 1000
    zipf_skew: float = 1.0
    #: fraction of clients sending X-Priority: high (the rest best_effort)
    high_fraction: float = 0.5
    deadline_s: float = 0.25
    tenant: str | None = None
    #: map a priority class to its own tenant (e.g. the batch backfill
    #: runs as "batch" so a per-tenant quota can rate-limit it without
    #: touching the ranking tenant); falls back to ``tenant``
    tenant_by_priority: dict[str, str] | None = None
    token: str | None = None
    seed: int = 0

    def validate(self) -> None:
        if self.n_clients < 1:
            raise ValidationError(f"n_clients must be >= 1 ({self.n_clients=})")
        if self.requests_per_client < 1:
            raise ValidationError(
                f"requests_per_client must be >= 1 "
                f"({self.requests_per_client=})"
            )
        if not 0.0 <= self.high_fraction <= 1.0:
            raise ValidationError(
                f"high_fraction must be in [0, 1] ({self.high_fraction=})"
            )
        if self.deadline_s <= 0:
            raise ValidationError(
                f"deadline_s must be positive ({self.deadline_s=})"
            )


@dataclass(frozen=True)
class ClassReport:
    """Outcomes for one priority class."""

    requests: int
    ok: int
    throttled: int
    shed: int
    deadline_exceeded: int
    other_errors: int
    p50_ms: float
    p99_ms: float

    @property
    def success_rate(self) -> float:
        return self.ok / self.requests if self.requests else 0.0

    @property
    def shed_rate(self) -> float:
        return (
            (self.throttled + self.shed) / self.requests
            if self.requests
            else 0.0
        )


@dataclass(frozen=True)
class NetLoadReport:
    """Merged results of a closed-loop network run."""

    total_requests: int
    duration_s: float
    qps: float
    p50_ms: float
    p99_ms: float
    by_priority: dict[str, ClassReport] = field(default_factory=dict)

    @property
    def shed_rate(self) -> float:
        shed = sum(c.throttled + c.shed for c in self.by_priority.values())
        return shed / self.total_requests if self.total_requests else 0.0

    def to_json(self) -> dict[str, object]:
        return {
            "total_requests": self.total_requests,
            "duration_s": round(self.duration_s, 4),
            "qps": round(self.qps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "shed_rate": round(self.shed_rate, 4),
            "by_priority": {
                name: {
                    "requests": c.requests,
                    "ok": c.ok,
                    "throttled": c.throttled,
                    "shed": c.shed,
                    "deadline_exceeded": c.deadline_exceeded,
                    "other_errors": c.other_errors,
                    "success_rate": round(c.success_rate, 4),
                    "shed_rate": round(c.shed_rate, 4),
                    "p50_ms": round(c.p50_ms, 3),
                    "p99_ms": round(c.p99_ms, 3),
                }
                for name, c in self.by_priority.items()
            },
        }


class _ClientStats:
    __slots__ = (
        "priority",
        "latencies",
        "ok",
        "throttled",
        "shed",
        "deadline_exceeded",
        "other_errors",
    )

    def __init__(self, priority: str) -> None:
        self.priority = priority
        self.latencies: list[float] = []
        self.ok = 0
        self.throttled = 0
        self.shed = 0
        self.deadline_exceeded = 0
        self.other_errors = 0


def run_network_load(config: NetLoadConfig) -> NetLoadReport:
    """Drive ``n_clients`` closed-loop HTTP clients; merge per-class stats.

    Every client owns its own socket (thread-local inside the shared
    :class:`FeatureClient` machinery) and issues its next request only
    after the previous response — offered load adapts to latency the way
    a blocking RPC fleet does.
    """
    config.validate()
    n_high = round(config.n_clients * config.high_fraction)
    stats = [
        _ClientStats("high" if client < n_high else "best_effort")
        for client in range(config.n_clients)
    ]
    key_streams = [
        generate_zipfian_keys(
            ZipfianWorkloadConfig(
                n_keys=config.n_keys,
                n_requests=config.requests_per_client,
                skew=config.zipf_skew,
            ),
            seed=config.seed + client,
        )
        for client in range(config.n_clients)
    ]
    barrier = threading.Barrier(config.n_clients + 1)

    def client_loop(client: int) -> None:
        record = stats[client]
        tenant = (config.tenant_by_priority or {}).get(
            record.priority, config.tenant
        )
        feature_client = FeatureClient(
            ClientConfig(
                host=config.host,
                port=config.port,
                token=config.token,
                tenant=tenant,
                priority=record.priority,
                default_deadline_s=config.deadline_s,
                retry=RetryPolicy(max_retries=0),
            )
        )
        barrier.wait()
        with feature_client:
            for key in key_streams[client]:
                start = time.perf_counter()
                try:
                    feature_client.get_features(config.namespace, int(key))
                    record.ok += 1
                except ThrottledError:
                    record.throttled += 1
                except OverloadedError:
                    record.shed += 1
                except Exception as exc:  # noqa: BLE001 - classified, not raised
                    code = getattr(exc, "code", "")
                    if code == "throttled":
                        record.throttled += 1
                    elif code in ("overloaded", "unavailable"):
                        record.shed += 1
                    elif code == "deadline_exceeded" or type(exc).__name__ == (
                        "DeadlineExceededError"
                    ):
                        record.deadline_exceeded += 1
                    else:
                        record.other_errors += 1
                record.latencies.append(time.perf_counter() - start)

    threads = [
        threading.Thread(target=client_loop, args=(client,), daemon=True)
        for client in range(config.n_clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started

    def class_report(priority: str) -> ClassReport:
        members = [s for s in stats if s.priority == priority]
        latencies = np.array(
            [lat for s in members for lat in s.latencies]
        )
        return ClassReport(
            requests=int(latencies.size),
            ok=sum(s.ok for s in members),
            throttled=sum(s.throttled for s in members),
            shed=sum(s.shed for s in members),
            deadline_exceeded=sum(s.deadline_exceeded for s in members),
            other_errors=sum(s.other_errors for s in members),
            p50_ms=(
                float(np.percentile(latencies, 50)) * 1e3
                if latencies.size
                else 0.0
            ),
            p99_ms=(
                float(np.percentile(latencies, 99)) * 1e3
                if latencies.size
                else 0.0
            ),
        )

    merged = np.array([lat for s in stats for lat in s.latencies])
    by_priority = {
        priority: class_report(priority)
        for priority in ("high", "best_effort")
        if any(s.priority == priority for s in stats)
    }
    return NetLoadReport(
        total_requests=int(merged.size),
        duration_s=duration,
        qps=merged.size / duration if duration > 0 else 0.0,
        p50_ms=float(np.percentile(merged, 50)) * 1e3 if merged.size else 0.0,
        p99_ms=float(np.percentile(merged, 99)) * 1e3 if merged.size else 0.0,
        by_priority=by_priority,
    )
