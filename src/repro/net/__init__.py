"""The network serving plane: HTTP/JSON over the gateway and vectors.

Until this package, every plane of the reproduction lived behind Python
function calls in one process. ``repro.net`` is the process boundary the
paper's serving thesis (§2.2.2, §3) implies and ROADMAP item 2 names:
features and embeddings served to *clients*, over sockets, with the
production teeth a real front end needs. Stdlib-only by design — the
interesting machinery is the policy, not the HTTP parsing.

Four modules, one request path:

* :mod:`repro.net.protocol` — versioned ``/v1`` routes, JSON codecs,
  the retryable-vs-terminal error envelope, bearer-token auth and
  ``X-Deadline-Ms`` → :class:`~repro.runtime.Deadline` propagation;
* :mod:`repro.net.admission` — per-tenant token-bucket quotas (429) and
  watermark load shedding by deadline class (503, best-effort first);
* :mod:`repro.net.server` — :class:`FeatureServer`, a threaded
  :class:`~repro.runtime.Service` over a
  :class:`~repro.serving.ServingGateway` (and its attached vector
  service) with graceful bounded drain under
  :class:`~repro.runtime.ServiceGroup` ordering, plus ``GET
  /v1/metrics`` serving the shared
  :class:`~repro.runtime.MetricsRegistry` in Prometheus or JSON form;
* :mod:`repro.net.client` / :mod:`repro.net.loadgen` —
  :class:`FeatureClient` (envelope-driven retries) and the Zipfian
  priority-mix loadgen behind bench E21.

Layering contract (rule 5 in ``tools/check_layering.py``): this package
imports serving, vecserve, runtime, datagen and errors — and *nothing*
inside ``repro`` imports it back. The network plane is the top of the
DAG; only benchmarks, examples and tests sit above it.
"""

from repro.net.admission import (
    Admission,
    AdmissionConfig,
    AdmissionController,
    Priority,
    QuotaConfig,
    TokenBucket,
    Verdict,
)
from repro.net.client import ClientConfig, FeatureClient
from repro.net.loadgen import (
    ClassReport,
    NetLoadConfig,
    NetLoadReport,
    run_network_load,
)
from repro.net.protocol import (
    API_PREFIX,
    AuthError,
    ERROR_SPECS,
    ErrorSpec,
    OverloadedError,
    PayloadTooLargeError,
    ThrottledError,
    decode_error,
    encode_error,
    is_retryable,
    spec_for,
)
from repro.net.server import FeatureServer, ServerConfig

__all__ = [
    "API_PREFIX",
    "Admission",
    "AdmissionConfig",
    "AdmissionController",
    "AuthError",
    "ClassReport",
    "ClientConfig",
    "ERROR_SPECS",
    "ErrorSpec",
    "FeatureClient",
    "FeatureServer",
    "NetLoadConfig",
    "NetLoadReport",
    "OverloadedError",
    "PayloadTooLargeError",
    "Priority",
    "QuotaConfig",
    "ServerConfig",
    "ThrottledError",
    "TokenBucket",
    "Verdict",
    "decode_error",
    "encode_error",
    "is_retryable",
    "run_network_load",
    "spec_for",
]
