"""Admission control: per-tenant token buckets, watermark load shedding.

A network front end fails differently from a library call: offered load
is unbounded, and the only way to keep p99 for well-behaved traffic flat
is to *refuse* work early and cheaply. This module is that refusal
policy, factored out of the server so it is unit-testable with a fake
clock:

* :class:`TokenBucket` — the per-tenant rate limiter: ``rate`` tokens/s
  refill up to ``burst``; an empty bucket reports how long until the
  next token so rejections carry an honest ``Retry-After``.
* :class:`AdmissionController` — the per-request gate. Order matters and
  encodes the shedding philosophy:

  1. **quota** (429 ``throttled``): a tenant above its contracted rate is
     rejected regardless of server health — one noisy tenant must not
     consume another's headroom;
  2. **hard cap** (503 ``overloaded``): ``max_inflight`` concurrent
     admitted requests bounds the work the process accepts at all;
  3. **watermark** (503 ``overloaded``): between ``shed_watermark`` and
     the hard cap only :attr:`Priority.HIGH` requests are admitted —
     best-effort traffic is shed *first*, which is what lets the E21
     bench keep ≥99% of high-priority requests inside their deadline
     while the plane is driven past saturation.

Admission and release bracket the request (``try_admit`` increments the
in-flight gauge, ``release`` decrements), so the watermark reads live
pressure, not a stale sample.
"""

from __future__ import annotations

import enum
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ValidationError
from repro.runtime import MetricsRegistry


class Priority(enum.Enum):
    """The deadline class a request declares via ``X-Priority``."""

    HIGH = "high"
    BEST_EFFORT = "best_effort"

    @classmethod
    def parse(cls, raw: str | None) -> "Priority":
        if raw is None or raw == "":
            return cls.HIGH
        try:
            return cls(str(raw).strip().lower())
        except ValueError:
            raise ValidationError(
                f"unknown priority {raw!r}; allowed "
                f"{sorted(p.value for p in cls)}"
            ) from None


@dataclass(frozen=True)
class QuotaConfig:
    """One tenant's contracted rate: ``rate`` requests/s, ``burst`` depth."""

    rate: float = math.inf
    burst: int = 64

    def validate(self) -> None:
        if self.rate <= 0:
            raise ValidationError(f"rate must be positive ({self.rate=})")
        if self.burst < 1:
            raise ValidationError(f"burst must be >= 1 ({self.burst=})")


class TokenBucket:
    """A thread-safe token bucket on a pluggable monotonic clock."""

    def __init__(self, quota: QuotaConfig, clock=time.monotonic) -> None:
        quota.validate()
        self.quota = quota
        self._clock = clock
        self._tokens = float(quota.burst)
        self._last_refill = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        if math.isinf(self.quota.rate):
            self._tokens = float(self.quota.burst)
        else:
            elapsed = max(now - self._last_refill, 0.0)
            self._tokens = min(
                self._tokens + elapsed * self.quota.rate,
                float(self.quota.burst),
            )
        self._last_refill = now

    def try_acquire(self, n: int = 1) -> bool:
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def retry_after_s(self, n: int = 1) -> float:
        """Seconds until ``n`` tokens will be available (0 if already)."""
        with self._lock:
            self._refill(self._clock())
            deficit = n - self._tokens
            if deficit <= 0:
                return 0.0
            if math.isinf(self.quota.rate):
                return 0.0
            return deficit / self.quota.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


@dataclass(frozen=True)
class AdmissionConfig:
    """The server's pressure envelope."""

    max_inflight: int = 64
    #: in-flight depth above which best-effort traffic is shed
    #: (default: half the hard cap)
    shed_watermark: int | None = None
    default_quota: QuotaConfig = field(default_factory=QuotaConfig)
    tenant_quotas: Mapping[str, QuotaConfig] = field(default_factory=dict)
    #: Retry-After hint for watermark/cap sheds (quota rejections compute
    #: an exact one from the bucket)
    shed_retry_after_s: float = 0.05

    def validate(self) -> None:
        if self.max_inflight < 1:
            raise ValidationError(
                f"max_inflight must be >= 1 ({self.max_inflight=})"
            )
        watermark = self.effective_watermark
        if not 1 <= watermark <= self.max_inflight:
            raise ValidationError(
                f"shed_watermark must be in [1, max_inflight] "
                f"({watermark=}, {self.max_inflight=})"
            )
        self.default_quota.validate()
        for quota in self.tenant_quotas.values():
            quota.validate()

    @property
    def effective_watermark(self) -> int:
        if self.shed_watermark is not None:
            return self.shed_watermark
        return max(self.max_inflight // 2, 1)


class Verdict(enum.Enum):
    ADMIT = "admit"
    THROTTLE = "throttle"  # per-tenant quota -> 429
    SHED = "shed"  # pressure (watermark or hard cap) -> 503


@dataclass(frozen=True)
class Admission:
    """One gate decision; ``release()`` must follow every ADMIT."""

    verdict: Verdict
    reason: str = ""
    retry_after_s: float = 0.0

    @property
    def admitted(self) -> bool:
        return self.verdict is Verdict.ADMIT


class AdmissionController:
    """The request gate: quota, hard cap, watermark — in that order."""

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        registry: MetricsRegistry | None = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config or AdmissionConfig()
        self.config.validate()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.inflight = self.registry.gauge("net_admission_inflight")
        self.admitted = self.registry.counter("net_admitted_total")
        self._shed = {
            priority: self.registry.counter(
                "net_shed_total", priority=priority.value
            )
            for priority in Priority
        }
        self.throttled = self.registry.counter("net_throttled_total")

    def bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                quota = self.config.tenant_quotas.get(
                    tenant, self.config.default_quota
                )
                bucket = self._buckets[tenant] = TokenBucket(
                    quota, clock=self._clock
                )
            return bucket

    def try_admit(self, tenant: str, priority: Priority) -> Admission:
        """Gate one request; on ADMIT the in-flight gauge is held until
        :meth:`release`."""
        bucket = self.bucket(tenant)
        if not bucket.try_acquire():
            self.throttled.inc()
            return Admission(
                Verdict.THROTTLE,
                reason=f"tenant {tenant!r} over quota "
                f"(rate={bucket.quota.rate}/s)",
                retry_after_s=max(
                    bucket.retry_after_s(), 1e-3
                ),
            )
        with self._lock:  # depth check + hold must be atomic: hard cap is hard
            depth = self.inflight.value
            if depth >= self.config.max_inflight:
                shed_reason = (
                    f"in-flight {depth} >= max_inflight "
                    f"{self.config.max_inflight}"
                )
            elif (
                priority is Priority.BEST_EFFORT
                and depth >= self.config.effective_watermark
            ):
                shed_reason = (
                    f"best-effort shed: in-flight {depth} >= "
                    f"watermark {self.config.effective_watermark}"
                )
            else:
                self.inflight.inc()
                self.admitted.inc()
                return Admission(Verdict.ADMIT)
        self._shed[priority].inc()
        return Admission(
            Verdict.SHED,
            reason=shed_reason,
            retry_after_s=self.config.shed_retry_after_s,
        )

    def release(self) -> None:
        self.inflight.dec()

    def shed_count(self, priority: Priority | None = None) -> int:
        if priority is not None:
            return self._shed[priority].value
        return sum(counter.value for counter in self._shed.values())

    def snapshot(self) -> dict[str, object]:
        return {
            "inflight": self.inflight.value,
            "inflight_peak": self.inflight.peak,
            "max_inflight": self.config.max_inflight,
            "shed_watermark": self.config.effective_watermark,
            "admitted": self.admitted.value,
            "throttled": self.throttled.value,
            "shed": {
                priority.value: counter.value
                for priority, counter in self._shed.items()
            },
            "tenants": sorted(self._buckets),
        }
