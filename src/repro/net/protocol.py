"""The wire protocol: versioned routes, JSON codecs, the error envelope.

Everything a request or response *is* lives here, with no dependency on
``http.server`` — the server and the client both consume these pure
codecs, so a byte sequence accepted by one side is by construction
parseable by the other. Three pieces:

* **the error envelope** — every failure crossing the wire is one JSON
  shape: ``{"error": {"code", "message", "retryable"}}``. The code/status/
  retryable triple is declared per :mod:`repro.errors` class in
  :data:`ERROR_SPECS`; :func:`encode_error` walks the exception's MRO so
  subclasses inherit their nearest registered ancestor's mapping, and
  :func:`decode_error` reconstructs the registered exception class on the
  client — the round trip the ``FeatureClient`` retry loop keys off
  (backoff on ``retryable``, fail fast otherwise).
* **header plumbing** — ``Authorization: Bearer`` token extraction,
  ``X-Deadline-Ms`` parsing into a :class:`repro.runtime.Deadline` (the
  ingress end of deadline propagation), and the ``X-Priority`` deadline
  class consumed by admission control.
* **body codecs** — bounded JSON decode (:func:`parse_json_body` raises
  the protocol's own 400/413 errors) and a numpy-tolerant
  :func:`dump_json` for responses.

Routes are versioned under ``/v1/`` (:data:`API_PREFIX`); an unknown
path or method is itself an envelope (``unknown_route`` /
``method_not_allowed``), so clients never have to parse free-form 404
pages.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

import repro.errors as errors
from repro.errors import (
    NotRegisteredError,
    ReproError,
    ServingError,
    ValidationError,
)
from repro.runtime import Deadline
from repro.runtime.lifecycle import LifecycleError

API_PREFIX = "/v1"

#: request headers the protocol understands
DEADLINE_HEADER = "X-Deadline-Ms"
PRIORITY_HEADER = "X-Priority"
TENANT_HEADER = "X-Tenant"
RETRY_AFTER_HEADER = "Retry-After"

JSON_CONTENT_TYPE = "application/json"
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class AuthError(ServingError):
    """The request carried no (or a wrong) bearer token."""


class ThrottledError(ServingError):
    """Admission control rejected the request on its tenant quota (429)."""


class OverloadedError(ServingError):
    """Admission control shed the request under load pressure (503)."""


class PayloadTooLargeError(ValidationError):
    """The request body exceeded the server's size limit (413)."""


@dataclass(frozen=True)
class ErrorSpec:
    """How one exception class crosses the wire."""

    code: str
    status: int
    retryable: bool


#: exception class -> wire mapping. Order does not matter — encoding
#: walks the exception's MRO and uses the *first* registered class, so a
#: subclass (LifecycleError < ValidationError) only needs its own entry
#: when its wire semantics differ from its parent's.
ERROR_SPECS: dict[type[BaseException], ErrorSpec] = {
    # protocol-level failures (defined above)
    AuthError: ErrorSpec("unauthenticated", 401, False),
    ThrottledError: ErrorSpec("throttled", 429, True),
    OverloadedError: ErrorSpec("overloaded", 503, True),
    PayloadTooLargeError: ErrorSpec("payload_too_large", 413, False),
    # the runtime kernel's drain signal: another replica can serve
    LifecycleError: ErrorSpec("unavailable", 503, True),
    # the repro.errors hierarchy
    errors.NotRegisteredError: ErrorSpec("not_found", 404, False),
    errors.AlreadyRegisteredError: ErrorSpec("already_exists", 409, False),
    errors.RegistryError: ErrorSpec("registry_error", 500, False),
    errors.ValidationError: ErrorSpec("invalid_argument", 400, False),
    errors.PartitionNotFoundError: ErrorSpec("partition_not_found", 404, False),
    errors.StaleFeatureError: ErrorSpec("stale_feature", 412, False),
    errors.SchemaMismatchError: ErrorSpec("schema_mismatch", 400, False),
    errors.TransientStoreError: ErrorSpec("transient_store", 503, True),
    errors.StorageError: ErrorSpec("storage_error", 500, False),
    errors.CompatibilityError: ErrorSpec("incompatible_embedding", 409, False),
    errors.ProvenanceError: ErrorSpec("provenance_error", 500, False),
    errors.DeadlineExceededError: ErrorSpec("deadline_exceeded", 504, True),
    errors.ServingError: ErrorSpec("serving_error", 500, False),
    errors.Backpressure: ErrorSpec("backpressure", 429, True),
    errors.CorruptRecordError: ErrorSpec("corrupt_record", 500, False),
    errors.BusError: ErrorSpec("bus_error", 500, False),
    # cluster plane: misdirected requests heal by re-routing (the caller
    # must refresh routes, so a blind retry is wrong); unreachable nodes
    # and under-replicated writes are transient — retry after failover
    errors.WrongOwnerError: ErrorSpec("wrong_owner", 421, False),
    errors.NodeUnreachableError: ErrorSpec("node_unreachable", 503, True),
    errors.ReplicationError: ErrorSpec("under_replicated", 503, True),
    errors.ClusterError: ErrorSpec("cluster_error", 500, False),
    errors.TrainingError: ErrorSpec("training_error", 500, False),
    errors.MonitoringError: ErrorSpec("monitoring_error", 500, False),
    errors.PipelineError: ErrorSpec("pipeline_error", 500, False),
    errors.ReproError: ErrorSpec("internal", 500, False),
}

#: wire code -> exception class, for client-side reconstruction. Built
#: from ERROR_SPECS plus the protocol codes the server raises before any
#: library call runs.
_CLASS_FOR_CODE: dict[str, type[BaseException]] = {
    spec.code: cls for cls, spec in ERROR_SPECS.items()
}
_CLASS_FOR_CODE.update(
    {
        "invalid_json": ValidationError,
        "unknown_route": NotRegisteredError,
        "method_not_allowed": ValidationError,
    }
)

_FALLBACK = ErrorSpec("internal", 500, False)


def spec_for(exc: BaseException) -> ErrorSpec:
    """The wire mapping for ``exc``: nearest registered class in its MRO."""
    for cls in type(exc).__mro__:
        spec = ERROR_SPECS.get(cls)
        if spec is not None:
            return spec
    return _FALLBACK


def encode_error(
    exc: BaseException, retry_after_s: float | None = None
) -> tuple[int, dict]:
    """``exc`` -> ``(http_status, envelope_payload)``."""
    spec = spec_for(exc)
    envelope: dict[str, object] = {
        # an instance-level code (e.g. invalid_json on a ValidationError)
        # refines the class mapping without needing its own class
        "code": getattr(exc, "code", None) or spec.code,
        "message": str(exc) or type(exc).__name__,
        "retryable": spec.retryable,
    }
    if retry_after_s is not None:
        envelope["retry_after_s"] = round(retry_after_s, 4)
    return spec.status, {"error": envelope}


def protocol_error(code: str, message: str, status: int) -> tuple[int, dict]:
    """An envelope for failures with no exception yet (bad JSON, 404s)."""
    retryable = code in ("throttled", "overloaded", "unavailable")
    return status, {
        "error": {"code": code, "message": message, "retryable": retryable}
    }


def decode_error(payload: dict) -> BaseException:
    """Envelope -> exception instance (the client's half of the round trip).

    A registered code reconstructs its exception class; an unknown code
    degrades to :class:`~repro.errors.ServingError` so a newer server
    never crashes an older client — the ``retryable`` flag still travels
    on the instance as ``exc.retryable``.
    """
    envelope = payload.get("error") if isinstance(payload, dict) else None
    if not isinstance(envelope, dict):
        exc: BaseException = ServingError(f"malformed error envelope: {payload!r}")
        exc.retryable = False  # type: ignore[attr-defined]
        return exc
    code = str(envelope.get("code", "internal"))
    message = str(envelope.get("message", ""))
    cls = _CLASS_FOR_CODE.get(code, ServingError)
    exc = cls(message or code)
    exc.retryable = bool(  # type: ignore[attr-defined]
        envelope.get("retryable", False)
    )
    exc.code = code  # type: ignore[attr-defined]
    retry_after = envelope.get("retry_after_s")
    if retry_after is not None:
        exc.retry_after_s = float(retry_after)  # type: ignore[attr-defined]
    return exc


def is_retryable(exc: BaseException) -> bool:
    """The client's retry predicate: the decoded flag when present
    (authoritative — it crossed the wire), the static table otherwise."""
    flag = getattr(exc, "retryable", None)
    if flag is not None:
        return bool(flag)
    return spec_for(exc).retryable


# -- headers ------------------------------------------------------------------


def bearer_token(headers) -> str | None:
    """Extract the ``Authorization: Bearer <token>`` credential, if any."""
    value = headers.get("Authorization")
    if not value:
        return None
    scheme, __, token = value.partition(" ")
    if scheme.lower() != "bearer" or not token.strip():
        return None
    return token.strip()


def parse_deadline(headers) -> Deadline | None:
    """``X-Deadline-Ms`` -> an ingress :class:`~repro.runtime.Deadline`.

    The budget starts counting the moment the header is parsed, so queue
    wait, admission and the downstream gateway call all burn the same
    clock. A malformed value raises ``ValidationError`` (a 400, not a
    silently unbounded request).
    """
    raw = headers.get(DEADLINE_HEADER)
    if raw is None:
        return None
    try:
        ms = float(raw)
    except (TypeError, ValueError):
        raise ValidationError(
            f"{DEADLINE_HEADER} must be a number of milliseconds ({raw!r})"
        ) from None
    if ms <= 0:
        raise ValidationError(
            f"{DEADLINE_HEADER} must be positive milliseconds ({raw!r})"
        )
    return Deadline.after(ms / 1000.0)


# -- bodies -------------------------------------------------------------------


def parse_json_body(raw: bytes) -> dict:
    """Bounded-size JSON decode with protocol-shaped failures."""
    if not raw:
        return {}
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        error = ValidationError(f"request body is not valid JSON: {exc}")
        error.code = "invalid_json"  # type: ignore[attr-defined]
        raise error from None
    if not isinstance(payload, dict):
        error = ValidationError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
        error.code = "invalid_json"  # type: ignore[attr-defined]
        raise error
    return payload


def _json_default(value):
    """Tolerate the numpy scalars/arrays the planes hand back."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


def dump_json(payload: dict) -> bytes:
    return json.dumps(payload, default=_json_default).encode("utf-8")


def search_result_payload(result) -> dict:
    """Serialize a (duck-typed) sharded search result for the wire."""
    return {
        "ids": np.asarray(result.ids).tolist(),
        "scores": [round(float(s), 6) for s in np.asarray(result.scores)],
        "partial": bool(getattr(result, "partial", False)),
        "shards_missed": int(getattr(result, "shards_missed", 0)),
    }
