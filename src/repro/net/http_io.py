"""Minimal HTTP/1.1 wire machinery for the selector-based front end.

When :class:`~repro.net.FeatureServer` moved off ``ThreadingHTTPServer``
onto the runtime's :mod:`repro.runtime.io` selector loop, it needed the
one thing the stdlib server kept hidden: an *incremental* request
parser that can be fed arbitrary socket chunks on the event-loop thread
and yields complete requests as they finish. This module is that — and
nothing more. No routing, no auth, no envelopes; those stay in
:mod:`repro.net.protocol` and the server.

* :class:`Headers` — the case-insensitive read-only mapping both
  :mod:`repro.net.protocol` helpers (``bearer_token``,
  ``parse_deadline``) and the server expect from ``headers.get(...)``;
* :class:`HttpRequest` — one parsed request: method, target, headers,
  body, and whether the client asked for ``Connection: close``;
* :class:`HttpRequestParser` — the incremental state machine: header
  block (bounded by ``MAX_HEADER_BYTES``), then exactly
  ``Content-Length`` body bytes. **Oversized bodies are refused at
  header time**: a ``Content-Length`` beyond ``max_body_bytes`` raises
  :class:`~repro.net.protocol.PayloadTooLargeError` before a single
  body byte is buffered — the fix for the old server's
  read-then-reject memory hole. Parse failures raise protocol-shaped
  exceptions the server turns into error envelopes (then closes, since
  the stream can no longer be resynchronized);
* :func:`serialize_response` — one response as bytes: status line,
  headers, ``Content-Length``-delimited body (keep-alive by default;
  the server appends ``Connection: close`` when it means it).

Chunked transfer encoding is deliberately unsupported (501-shaped
rejection): every client in this system sends ``Content-Length``
bodies, and refusing is safer than half-implementing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from http.client import responses as _REASONS

from repro.errors import ValidationError
from repro.net.protocol import PayloadTooLargeError

#: bound on the request line + header block, total
MAX_HEADER_BYTES = 65536

SERVER_NAME = "repro-net/2.0"

_CRLF2 = b"\r\n\r\n"


class Headers:
    """Case-insensitive, read-only header view (``get`` + ``in`` + iter)."""

    __slots__ = ("_items",)

    def __init__(self, items: list[tuple[str, str]]) -> None:
        self._items = {name.lower(): value for name, value in items}

    def get(self, name: str, default: str | None = None) -> str | None:
        return self._items.get(name.lower(), default)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._items

    def __iter__(self):
        return iter(self._items)

    def items(self):
        return self._items.items()

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"


@dataclass
class HttpRequest:
    """One complete request off the wire."""

    method: str
    target: str  #: the raw request target (path + optional ?query)
    headers: Headers
    body: bytes = b""
    close: bool = False  #: the client sent ``Connection: close``

    #: alias so the request duck-types where handler.path was used
    @property
    def path(self) -> str:
        return self.target


def _protocol_violation(message: str) -> ValidationError:
    error = ValidationError(message)
    error.code = "bad_request"  # type: ignore[attr-defined]
    return error


class HttpRequestParser:
    """Incremental HTTP/1.1 request parser for one connection.

    ``feed(chunk)`` absorbs bytes as they arrive (any split) and
    returns every request completed by the chunk, preserving pipeline
    order. Raises on protocol violations — after which the stream is
    poisoned and the caller must respond-and-close.
    """

    def __init__(self, max_body_bytes: int) -> None:
        self.max_body_bytes = max_body_bytes
        self._buf = bytearray()
        self._pending: HttpRequest | None = None  # headers done, body pending
        self._body_needed = 0

    def feed(self, chunk: bytes) -> list[HttpRequest]:
        self._buf += chunk
        complete: list[HttpRequest] = []
        while True:
            if self._pending is not None:
                if len(self._buf) < self._body_needed:
                    return complete
                request = self._pending
                request.body = bytes(self._buf[: self._body_needed])
                del self._buf[: self._body_needed]
                self._pending = None
                self._body_needed = 0
                complete.append(request)
                continue
            end = self._buf.find(_CRLF2)
            if end < 0:
                if len(self._buf) > MAX_HEADER_BYTES:
                    raise _protocol_violation(
                        f"header block exceeds {MAX_HEADER_BYTES} bytes"
                    )
                return complete
            head = bytes(self._buf[:end])
            del self._buf[: end + len(_CRLF2)]
            request, body_length = self._parse_head(head)
            if body_length:
                self._pending = request
                self._body_needed = body_length
            else:
                complete.append(request)

    def _parse_head(self, head: bytes) -> tuple[HttpRequest, int]:
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError as exc:  # latin-1 never fails; defensive
            raise _protocol_violation(f"undecodable header block: {exc}") from None
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _protocol_violation(f"malformed request line {lines[0]!r}")
        method, target, version = parts
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            raise _protocol_violation(f"unsupported protocol {version!r}")
        items: list[tuple[str, str]] = []
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep or not name.strip():
                raise _protocol_violation(f"malformed header line {line!r}")
            items.append((name.strip(), value.strip()))
        headers = Headers(items)
        if headers.get("Transfer-Encoding"):
            raise _protocol_violation(
                "chunked transfer encoding is not supported; send a "
                "Content-Length body"
            )
        raw_length = headers.get("Content-Length")
        if raw_length is None:
            body_length = 0
        else:
            try:
                body_length = int(raw_length)
            except ValueError:
                raise _protocol_violation(
                    f"malformed Content-Length {raw_length!r}"
                ) from None
            if body_length < 0:
                raise _protocol_violation(
                    f"negative Content-Length {raw_length!r}"
                )
        if body_length > self.max_body_bytes:
            # the satellite fix: refuse *here*, before buffering a byte
            raise PayloadTooLargeError(
                f"request body {body_length} bytes > limit "
                f"{self.max_body_bytes}"
            )
        connection = (headers.get("Connection") or "").lower()
        close = (
            "close" in connection
            if connection
            else version == "HTTP/1.0"
        )
        request = HttpRequest(
            method=method.upper(), target=target, headers=headers, close=close
        )
        return request, body_length

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)


def serialize_response(
    status: int,
    body: bytes,
    content_type: str,
    extra_headers: dict[str, str] | None = None,
    close: bool = False,
) -> bytes:
    """One full HTTP/1.1 response, keep-alive unless ``close``."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Server: {SERVER_NAME}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    if close:
        lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
