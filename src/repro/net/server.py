"""The HTTP front end: a threaded stdlib server over the serving gateway.

This is the process boundary the roadmap's "network serving surface"
item asks for: requests arrive as bytes on a socket, which is what makes
replicas, real clients and real load shedding possible. The server is
deliberately stdlib-only (``http.server`` + ``socketserver`` threading),
because the interesting engineering is not the HTTP parsing — it is the
three-stage request path every call walks:

1. **protocol** (:mod:`repro.net.protocol`): versioned routes, auth
   token check, ``X-Deadline-Ms`` → :class:`~repro.runtime.Deadline`,
   bounded JSON bodies, and the structured error envelope for every
   failure;
2. **admission** (:mod:`repro.net.admission`): per-tenant token buckets
   (429 + ``Retry-After``) and watermark shedding of best-effort traffic
   under pressure (503 + ``Retry-After``);
3. **dispatch**: the surviving request becomes a plain
   :class:`~repro.serving.ServingGateway` /
   ``VectorService``-via-gateway call with the *remaining* deadline
   budget — queue wait and admission burn the same clock the backend
   sees.

The server is a :class:`repro.runtime.Service`, so a
:class:`~repro.runtime.ServiceGroup` drains it *before* the gateway
behind it. Drain is graceful and bounded: ``stop()`` closes the accept
loop, requests already admitted run to completion (new requests on
kept-alive connections get a retryable 503 ``unavailable``), and the
server waits up to ``drain_deadline_s`` for in-flight work plus idle
keep-alive connections to clear before closing the listener — the E21
acceptance gate asserts zero dropped in-flight responses and zero leaked
threads under load.

Routes (all under ``/v1``):

====================================  =======================================
``GET  /v1/healthz``                  liveness + drain state (no auth)
``GET  /v1/metrics``                  registry export; ``Accept:
                                      application/json`` negotiates JSON,
                                      anything else Prometheus text
``GET  /v1/features/{ns}/{id}``       point feature lookup (``?policy=``)
``POST /v1/features/{ns}``            batch lookup ``{"entity_ids": [...]}``
``PUT  /v1/features/{ns}/{id}``       write-through ``{"values", "event_time"}``
``POST /v1/vectors/{name}/search``    top-k ``{"query", "k", "version"}``
====================================  =======================================
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping

from repro.errors import ValidationError
from repro.net.admission import AdmissionConfig, AdmissionController, Priority
from repro.net.protocol import (
    API_PREFIX,
    AuthError,
    DEADLINE_HEADER,
    JSON_CONTENT_TYPE,
    OverloadedError,
    PROMETHEUS_CONTENT_TYPE,
    PayloadTooLargeError,
    PRIORITY_HEADER,
    RETRY_AFTER_HEADER,
    TENANT_HEADER,
    ThrottledError,
    bearer_token,
    dump_json,
    encode_error,
    parse_deadline,
    parse_json_body,
    protocol_error,
    search_result_payload,
)
from repro.runtime import Deadline, MetricsRegistry, Service, await_condition
from repro.runtime.lifecycle import LifecycleError
from repro.serving import FreshnessPolicy


@dataclass(frozen=True)
class ServerConfig:
    """Everything tunable about the front end."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off server.port
    #: token -> tenant; empty mapping disables auth (tenant comes from
    #: the X-Tenant header, default "anonymous")
    auth_tokens: Mapping[str, str] = field(default_factory=dict)
    max_body_bytes: int = 1_000_000
    #: budget for in-flight requests + idle keep-alive connections to
    #: clear after the accept loop closes
    drain_deadline_s: float = 5.0
    #: deadline applied when a request carries no X-Deadline-Ms
    default_deadline_s: float = 0.25
    #: socket timeout for keep-alive reads — bounds how long an idle
    #: connection can hold its handler thread during drain
    keepalive_idle_s: float = 0.5
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)

    def validate(self) -> None:
        if self.max_body_bytes < 1:
            raise ValidationError(
                f"max_body_bytes must be >= 1 ({self.max_body_bytes=})"
            )
        if self.drain_deadline_s <= 0:
            raise ValidationError(
                f"drain_deadline_s must be positive ({self.drain_deadline_s=})"
            )
        if self.default_deadline_s <= 0:
            raise ValidationError(
                f"default_deadline_s must be positive "
                f"({self.default_deadline_s=})"
            )
        self.admission.validate()


class _HttpServer(ThreadingHTTPServer):
    """Per-connection threads; the FeatureServer drains them itself."""

    daemon_threads = True  # drain is explicit (inflight + connection gauges)
    block_on_close = False
    allow_reuse_address = True


class _Handler(BaseHTTPRequestHandler):
    """Thin shim: every verb lands in ``FeatureServer._handle``."""

    server_version = "repro-net/1.0"
    protocol_version = "HTTP/1.1"
    # response headers and body are separate send()s; without NODELAY,
    # Nagle + the peer's delayed ACK turns every response into ~40ms
    disable_nagle_algorithm = True
    net: "FeatureServer" = None  # type: ignore[assignment] # bound per server

    def setup(self) -> None:
        super().setup()
        self.timeout = self.net.config.keepalive_idle_s
        self.connection.settimeout(self.timeout)
        self.net._connections.inc()

    def finish(self) -> None:
        try:
            super().finish()
        finally:
            self.net._connections.dec()

    def do_GET(self) -> None:
        self.net._handle(self, "GET")

    def do_POST(self) -> None:
        self.net._handle(self, "POST")

    def do_PUT(self) -> None:
        self.net._handle(self, "PUT")

    def do_DELETE(self) -> None:
        self.net._handle(self, "DELETE")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # access logging is a metrics concern, not stderr noise


class FeatureServer(Service):
    """The HTTP/JSON serving surface over a gateway (and its vector plane).

    ``gateway`` is a :class:`~repro.serving.ServingGateway`; vector
    search routes through ``gateway.search_neighbors``, so attach a
    ``VectorService`` to the gateway to serve ``/v1/vectors``.
    ``registry`` defaults to the gateway's own metrics registry — which
    makes ``GET /v1/metrics`` export the *whole* plane (serving,
    vecserve, admission, net) through one scrape endpoint.

    Unlike the historical planes this service is **not** started by its
    constructor: binding a socket is an observable side effect, so the
    caller (usually a :class:`~repro.runtime.ServiceGroup`) decides when.
    """

    def __init__(
        self,
        gateway,
        config: ServerConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(name="net-server")
        self.config = config or ServerConfig()
        self.config.validate()
        self.gateway = gateway
        self.registry = (
            registry
            if registry is not None
            else gateway.metrics.registry
        )
        self.admission = AdmissionController(
            self.config.admission, registry=self.registry
        )
        self._httpd: _HttpServer | None = None
        self._draining = threading.Event()
        self._previous_handlers: dict[int, object] = {}
        self._signal_drains = 0
        self._connections = self.registry.gauge("net_open_connections")
        self._inflight = self.registry.gauge("net_inflight")
        self.requests = self.registry.counter("net_requests_total")
        self.completed = self.registry.counter("net_completed_total")

    # -- lifecycle ------------------------------------------------------------

    def _on_start(self) -> None:
        handler = type("BoundHandler", (_Handler,), {"net": self})
        self._httpd = _HttpServer(
            (self.config.host, self.config.port), handler
        )
        self._spawn(self._httpd.serve_forever, name="net-accept-loop")

    def _on_stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, then close."""
        httpd = self._httpd
        if httpd is None:
            return
        self._draining.set()
        httpd.shutdown()  # accept loop exits; admitted requests keep running
        deadline = Deadline.after(self.config.drain_deadline_s)
        await_condition(
            lambda: self._inflight.value == 0,
            timeout_s=max(deadline.remaining(), 0.0),
        )
        httpd.server_close()  # listener gone; idle keep-alives now error out
        await_condition(
            lambda: self._connections.value == 0,
            timeout_s=max(
                deadline.remaining(), self.config.keepalive_idle_s + 0.5
            ),
        )
        self._stop_event.set()
        self._join_workers()

    # -- signal-initiated drain -----------------------------------------------

    def install_signal_handlers(
        self, signals: tuple[int, ...] = (signal.SIGTERM,)
    ) -> None:
        """Route process signals into the graceful drain (SIGTERM by default).

        This is the supervisor contract: an orchestrator (systemd,
        Kubernetes) sends SIGTERM and expects the listener to stop
        accepting while admitted requests run to completion — exactly
        what :meth:`stop` already does. The handler fires on the main
        thread, so it hands the blocking drain to a helper thread and
        returns immediately; in-flight handler threads are untouched.

        CPython only allows installing handlers from the main thread —
        call this from ``main()`` after :meth:`start`. Previous handlers
        are remembered and restored by :meth:`uninstall_signal_handlers`.
        """
        for signum in signals:
            self._previous_handlers[signum] = signal.signal(
                signum, self._handle_signal
            )

    def uninstall_signal_handlers(self) -> None:
        """Restore whatever handlers were in place before installation."""
        for signum, previous in self._previous_handlers.items():
            try:
                signal.signal(signum, previous)  # type: ignore[arg-type]
            except ValueError:
                pass  # not on the main thread; the process is exiting anyway
        self._previous_handlers.clear()

    def _handle_signal(self, signum: int, frame) -> None:
        self._signal_drains += 1
        self._draining.set()  # healthz flips before the drain thread runs
        threading.Thread(
            target=self.stop, name="net-signal-drain", daemon=True
        ).start()

    @property
    def signal_drains(self) -> int:
        """How many times a signal initiated the drain (0 or 1 normally)."""
        return self._signal_drains

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise LifecycleError(f"{self.name}: not started, no bound port")
        return self._httpd.server_address[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.config.host, self.port)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def health(self) -> dict[str, object]:
        record = super().health()
        record["draining"] = self.draining
        record["inflight"] = self._inflight.value
        record["open_connections"] = self._connections.value
        if self._httpd is not None:
            record["address"] = list(self.address)
        return record

    # -- request path ---------------------------------------------------------

    def _handle(self, handler: _Handler, method: str) -> None:
        self.requests.inc()
        route = "unmatched"
        start = time.monotonic()
        status = 500
        try:
            route, status = self._route(handler, method)
        except Exception as exc:  # noqa: BLE001 - every failure is an envelope
            status, payload = encode_error(exc)
            self._respond(handler, status, payload)
        finally:
            self.registry.histogram(
                "net_request_latency_seconds", route=route
            ).record(time.monotonic() - start)
            self.registry.counter(
                "net_responses_total", status=str(status)
            ).inc()

    def _route(self, handler: _Handler, method: str) -> tuple[str, int]:
        """Match + dispatch; returns ``(route_label, http_status)``."""
        path = handler.path.split("?", 1)[0].rstrip("/")
        query = self._query(handler)
        if not path.startswith(API_PREFIX + "/"):
            return "unmatched", self._respond(
                handler,
                *protocol_error(
                    "unknown_route", f"no route for {path!r}", 404
                ),
            )
        parts = path[len(API_PREFIX) + 1 :].split("/")

        # unauthenticated liveness first: load balancers probe it
        if parts == ["healthz"] and method == "GET":
            return "healthz", self._respond(
                handler,
                200,
                {
                    "status": "draining" if self.draining else "ok",
                    "health": self.health(),
                },
            )

        tenant = self._authenticate(handler)

        if parts == ["metrics"] and method == "GET":
            return "metrics", self._serve_metrics(handler)

        priority = Priority.parse(handler.headers.get(PRIORITY_HEADER))
        deadline = parse_deadline(handler.headers) or Deadline.after(
            self.config.default_deadline_s
        )

        if self.draining:
            # a kept-alive connection racing the drain: refuse retryably,
            # and close so the client reconnects elsewhere
            status, payload = encode_error(
                LifecycleError("server is draining; retry another replica")
            )
            return "draining", self._respond(
                handler, status, payload, close=True
            )

        admission = self.admission.try_admit(tenant, priority)
        if not admission.admitted:
            exc: Exception = (
                ThrottledError(admission.reason)
                if admission.verdict.value == "throttle"
                else OverloadedError(admission.reason)
            )
            status, payload = encode_error(
                exc, retry_after_s=admission.retry_after_s
            )
            return "shed", self._respond(
                handler,
                status,
                payload,
                extra_headers={
                    RETRY_AFTER_HEADER: f"{admission.retry_after_s:.3f}"
                },
            )

        try:
            result = self._dispatch(
                handler, method, parts, query, deadline, priority
            )
            self.completed.inc()
            return result
        except Exception:
            self.completed.inc()  # an error envelope is still a response
            raise
        finally:
            self.admission.release()

    def _dispatch(
        self,
        handler: _Handler,
        method: str,
        parts: list[str],
        query: dict[str, str],
        deadline: Deadline,
        priority: Priority,
    ) -> tuple[str, int]:
        self._inflight.inc()
        try:
            if parts[0] == "features" and len(parts) == 2 and method == "POST":
                return "features_batch", self._serve_features_batch(
                    handler, parts[1], deadline
                )
            if parts[0] == "features" and len(parts) == 3 and method == "GET":
                return "features_get", self._serve_feature(
                    handler, parts[1], parts[2], query, deadline
                )
            if parts[0] == "features" and len(parts) == 3 and method == "PUT":
                return "features_write", self._serve_write(
                    handler, parts[1], parts[2]
                )
            if (
                parts[0] == "vectors"
                and len(parts) == 3
                and parts[2] == "search"
                and method == "POST"
            ):
                return "vector_search", self._serve_vector_search(
                    handler, parts[1], deadline
                )
            known_prefix = parts[0] in ("features", "vectors", "metrics", "healthz")
            if known_prefix:
                return "unmatched", self._respond(
                    handler,
                    *protocol_error(
                        "method_not_allowed",
                        f"{method} not allowed on {handler.path!r}",
                        405,
                    ),
                )
            return "unmatched", self._respond(
                handler,
                *protocol_error(
                    "unknown_route", f"no route for {handler.path!r}", 404
                ),
            )
        finally:
            self._inflight.dec()

    # -- endpoints ------------------------------------------------------------

    def _serve_feature(
        self,
        handler: _Handler,
        namespace: str,
        raw_id: str,
        query: dict[str, str],
        deadline: Deadline,
    ) -> int:
        entity_id = self._parse_entity_id(raw_id)
        policy = self._parse_policy(query.get("policy"))
        values = self.gateway.get_features(
            namespace,
            entity_id,
            policy=policy,
            deadline_s=max(deadline.remaining(), 0.0),
        )
        return self._respond(
            handler,
            200,
            {"namespace": namespace, "entity_id": entity_id, "features": values},
        )

    def _serve_features_batch(
        self, handler: _Handler, namespace: str, deadline: Deadline
    ) -> int:
        body = self._read_body(handler)
        entity_ids = body.get("entity_ids")
        if not isinstance(entity_ids, list):
            raise ValidationError(
                "POST /v1/features/{ns} body needs an 'entity_ids' list"
            )
        policy = self._parse_policy(body.get("policy"))
        values = self.gateway.get_features_batch(
            namespace,
            [self._parse_entity_id(e) for e in entity_ids],
            policy=policy,
            deadline_s=max(deadline.remaining(), 0.0),
        )
        return self._respond(
            handler, 200, {"namespace": namespace, "features": values}
        )

    def _serve_write(
        self, handler: _Handler, namespace: str, raw_id: str
    ) -> int:
        body = self._read_body(handler)
        values = body.get("values")
        if not isinstance(values, dict):
            raise ValidationError(
                "PUT /v1/features/{ns}/{id} body needs a 'values' object"
            )
        entity_id = self._parse_entity_id(raw_id)
        event_time = body.get("event_time")
        self.gateway.write_features(
            namespace,
            entity_id,
            values,
            event_time=float(event_time) if event_time is not None else time.time(),
        )
        return self._respond(
            handler, 200, {"namespace": namespace, "entity_id": entity_id, "written": True}
        )

    def _serve_vector_search(
        self, handler: _Handler, name: str, deadline: Deadline
    ) -> int:
        body = self._read_body(handler)
        query_vector = body.get("query")
        if not isinstance(query_vector, list) or not query_vector:
            raise ValidationError(
                "POST /v1/vectors/{name}/search body needs a non-empty "
                "'query' list"
            )
        k = int(body.get("k", 10))
        version = body.get("version")
        result = self.gateway.search_neighbors(
            name,
            [float(v) for v in query_vector],
            k=k,
            version=int(version) if version is not None else None,
            deadline_s=max(deadline.remaining(), 0.0),
        )
        return self._respond(
            handler, 200, {"name": name, **search_result_payload(result)}
        )

    def _serve_metrics(self, handler: _Handler) -> int:
        accept = handler.headers.get("Accept", "")
        if JSON_CONTENT_TYPE in accept:
            body = self.registry.to_json(indent=2).encode("utf-8")
            return self._respond_raw(handler, 200, body, JSON_CONTENT_TYPE)
        body = self.registry.to_prometheus().encode("utf-8")
        return self._respond_raw(handler, 200, body, PROMETHEUS_CONTENT_TYPE)

    # -- request plumbing -----------------------------------------------------

    def _authenticate(self, handler: _Handler) -> str:
        """Token check (when configured) and tenant resolution."""
        tokens = self.config.auth_tokens
        if tokens:
            token = bearer_token(handler.headers)
            if token is None:
                raise AuthError("missing bearer token")
            tenant = tokens.get(token)
            if tenant is None:
                raise AuthError("unrecognized bearer token")
            return tenant
        return handler.headers.get(TENANT_HEADER) or "anonymous"

    @staticmethod
    def _query(handler: _Handler) -> dict[str, str]:
        if "?" not in handler.path:
            return {}
        out: dict[str, str] = {}
        for pair in handler.path.split("?", 1)[1].split("&"):
            if pair:
                key, __, value = pair.partition("=")
                out[key] = value
        return out

    @staticmethod
    def _parse_entity_id(raw) -> int:
        try:
            return int(raw)
        except (TypeError, ValueError):
            raise ValidationError(
                f"entity id must be an integer ({raw!r})"
            ) from None

    @staticmethod
    def _parse_policy(raw) -> FreshnessPolicy:
        if raw is None or raw == "":
            return FreshnessPolicy.SERVE_ANYWAY
        try:
            return FreshnessPolicy(str(raw))
        except ValueError:
            raise ValidationError(
                f"unknown freshness policy {raw!r}; allowed "
                f"{sorted(p.value for p in FreshnessPolicy)}"
            ) from None

    def _read_body(self, handler: _Handler) -> dict:
        length = int(handler.headers.get("Content-Length") or 0)
        if length > self.config.max_body_bytes:
            # drain nothing: refuse before reading an oversized body
            handler.close_connection = True
            raise PayloadTooLargeError(
                f"request body {length} bytes > limit "
                f"{self.config.max_body_bytes}"
            )
        raw = handler.rfile.read(length) if length else b""
        return parse_json_body(raw)

    def _respond(
        self,
        handler: _Handler,
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None = None,
        close: bool = False,
    ) -> int:
        return self._respond_raw(
            handler,
            status,
            dump_json(payload),
            JSON_CONTENT_TYPE,
            extra_headers=extra_headers,
            close=close,
        )

    def _respond_raw(
        self,
        handler: _Handler,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: dict[str, str] | None = None,
        close: bool = False,
    ) -> int:
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", content_type)
            handler.send_header("Content-Length", str(len(body)))
            for key, value in (extra_headers or {}).items():
                handler.send_header(key, value)
            if close or self.draining:
                handler.send_header("Connection", "close")
                handler.close_connection = True
            handler.end_headers()
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError, TimeoutError):
            # the client hung up mid-response; the request still counts
            # as answered — nothing upstream can do better
            handler.close_connection = True
        return status

    # -- introspection --------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Operational state for the dashboard's network section."""
        responses = {
            labels["status"]: metric.value
            for name, labels, metric in self.registry.collect()
            if name == "net_responses_total"
        }
        latency = {
            labels["route"]: metric.summary()
            for name, labels, metric in self.registry.collect()
            if name == "net_request_latency_seconds"
        }
        return {
            "address": list(self.address) if self._httpd else None,
            "draining": self.draining,
            "signal_drains": self._signal_drains,
            "requests": self.requests.value,
            "completed": self.completed.value,
            "inflight": self._inflight.value,
            "inflight_peak": self._inflight.peak,
            "open_connections": self._connections.value,
            "responses_by_status": responses,
            "latency_by_route": latency,
            "admission": self.admission.snapshot(),
        }
