"""The HTTP front end: a selector-loop server over the serving gateway.

This is the process boundary the roadmap's "network serving surface"
item asks for: requests arrive as bytes on a socket, which is what makes
replicas, real clients and real load shedding possible. The server rides
the runtime kernel's I/O substrate (:mod:`repro.runtime.io`) — one
selector thread multiplexes every connection, so ten thousand idle
keep-alive clients cost ten thousand fds, not ten thousand threads —
because the interesting engineering is not connection plumbing but the
three-stage request path every call walks:

1. **protocol** (:mod:`repro.net.protocol` + :mod:`repro.net.http_io`):
   incremental HTTP/1.1 parsing on the loop thread (oversized
   ``Content-Length`` refused with 413 *before* buffering a body byte),
   versioned routes, auth token check, ``X-Deadline-Ms`` →
   :class:`~repro.runtime.Deadline`, and the structured error envelope
   for every failure;
2. **admission** (:mod:`repro.net.admission`): per-tenant token buckets
   (429 + ``Retry-After``) and watermark shedding of best-effort traffic
   under pressure (503 + ``Retry-After``);
3. **dispatch**: the surviving request becomes a plain
   :class:`~repro.serving.ServingGateway` /
   ``VectorService``-via-gateway call with the *remaining* deadline
   budget, run on a small fixed worker pool (gateway calls block on
   deadlines; the loop thread never does).

Concurrency shape: parse on the loop thread, dispatch on the pool, one
request in flight per connection (matching ``http.client``'s
non-pipelined keep-alive), responses flushed back through the loop's
buffered writer with write-interest toggling. Idle keep-alive
connections are reaped by the loop after ``keepalive_idle_s`` and
counted in ``connections_reaped`` — an abandoned client pins an fd for
half a second, not a thread forever.

The server is a :class:`repro.runtime.Service`, so a
:class:`~repro.runtime.ServiceGroup` drains it *before* the gateway
behind it. Drain is graceful and bounded: ``stop()`` closes the
listener, requests already admitted run to completion (new requests on
kept-alive connections get a retryable 503 ``unavailable`` and
``Connection: close``), idle connections are actively closed, and the
worker pool + loop shut down only when the last response has flushed —
the E21/E23 acceptance gates assert zero dropped in-flight responses
and zero leaked threads or fds under load.

Routes (all under ``/v1``):

====================================  =======================================
``GET  /v1/healthz``                  liveness + drain state (no auth)
``GET  /v1/metrics``                  registry export; ``Accept:
                                      application/json`` negotiates JSON,
                                      anything else Prometheus text
``GET  /v1/features/{ns}/{id}``       point feature lookup (``?policy=``)
``POST /v1/features/{ns}``            batch lookup ``{"entity_ids": [...]}``
``PUT  /v1/features/{ns}/{id}``       write-through ``{"values", "event_time"}``
``POST /v1/vectors/{name}/search``    top-k ``{"query", "k", "version"}``
====================================  =======================================
"""

from __future__ import annotations

import signal
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ValidationError
from repro.net.admission import AdmissionConfig, AdmissionController, Priority
from repro.net.http_io import (
    HttpRequest,
    HttpRequestParser,
    serialize_response,
)
from repro.net.protocol import (
    API_PREFIX,
    AuthError,
    JSON_CONTENT_TYPE,
    OverloadedError,
    PROMETHEUS_CONTENT_TYPE,
    PRIORITY_HEADER,
    RETRY_AFTER_HEADER,
    TENANT_HEADER,
    ThrottledError,
    bearer_token,
    dump_json,
    encode_error,
    parse_deadline,
    parse_json_body,
    protocol_error,
    search_result_payload,
)
from repro.runtime import Deadline, MetricsRegistry, Service, await_condition
from repro.runtime.io import Connection, IoLoop, Listener
from repro.runtime.lifecycle import LifecycleError
from repro.serving import FreshnessPolicy


@dataclass(frozen=True)
class ServerConfig:
    """Everything tunable about the front end."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off server.port
    #: token -> tenant; empty mapping disables auth (tenant comes from
    #: the X-Tenant header, default "anonymous")
    auth_tokens: Mapping[str, str] = field(default_factory=dict)
    #: max Content-Length accepted; larger requests get 413 *before*
    #: any body byte is buffered
    max_body_bytes: int = 1_000_000
    #: budget for in-flight requests + idle keep-alive connections to
    #: clear after the listener closes
    drain_deadline_s: float = 5.0
    #: deadline applied when a request carries no X-Deadline-Ms
    default_deadline_s: float = 0.25
    #: idle budget for keep-alive connections — the loop reaps quieter
    #: ones (counted in ``connections_reaped``)
    keepalive_idle_s: float = 0.5
    #: dispatch pool size: how many gateway calls may block concurrently
    worker_threads: int = 16
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)

    def validate(self) -> None:
        if self.max_body_bytes < 1:
            raise ValidationError(
                f"max_body_bytes must be >= 1 ({self.max_body_bytes=})"
            )
        if self.drain_deadline_s <= 0:
            raise ValidationError(
                f"drain_deadline_s must be positive ({self.drain_deadline_s=})"
            )
        if self.default_deadline_s <= 0:
            raise ValidationError(
                f"default_deadline_s must be positive "
                f"({self.default_deadline_s=})"
            )
        if self.worker_threads < 1:
            raise ValidationError(
                f"worker_threads must be >= 1 ({self.worker_threads=})"
            )
        self.admission.validate()


class _Exchange:
    """One request/response pair moving through the server.

    Presents the surface the route/dispatch code consumes (``method``,
    ``path``, ``headers``, already-buffered ``body``) and collects the
    response as bytes; the worker ships ``response_bytes`` through the
    connection's buffered writer when the handler returns.
    """

    __slots__ = (
        "method",
        "path",
        "headers",
        "body",
        "close_connection",
        "response_bytes",
    )

    def __init__(self, request: HttpRequest) -> None:
        self.method = request.method
        self.path = request.target
        self.headers = request.headers
        self.body = request.body
        self.close_connection = request.close
        self.response_bytes = b""


class FeatureServer(Service):
    """The HTTP/JSON serving surface over a gateway (and its vector plane).

    ``gateway`` is a :class:`~repro.serving.ServingGateway`; vector
    search routes through ``gateway.search_neighbors``, so attach a
    ``VectorService`` to the gateway to serve ``/v1/vectors``.
    ``registry`` defaults to the gateway's own metrics registry — which
    makes ``GET /v1/metrics`` export the *whole* plane (serving,
    vecserve, admission, net, io) through one scrape endpoint.

    Unlike the historical planes this service is **not** started by its
    constructor: binding a socket is an observable side effect, so the
    caller (usually a :class:`~repro.runtime.ServiceGroup`) decides when.
    """

    def __init__(
        self,
        gateway,
        config: ServerConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(name="net-server")
        self.config = config or ServerConfig()
        self.config.validate()
        self.gateway = gateway
        self.registry = (
            registry
            if registry is not None
            else gateway.metrics.registry
        )
        self.admission = AdmissionController(
            self.config.admission, registry=self.registry
        )
        self._loop: IoLoop | None = None
        self._listener: Listener | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._draining = threading.Event()
        self._previous_handlers: dict[int, object] = {}
        self._signal_drains = 0
        self._connections = self.registry.gauge("net_open_connections")
        self._inflight = self.registry.gauge("net_inflight")
        self.requests = self.registry.counter("net_requests_total")
        self.completed = self.registry.counter("net_completed_total")
        self.connections_reaped = self.registry.counter(
            "net_connections_reaped_total"
        )

    # -- lifecycle ------------------------------------------------------------

    def _on_start(self) -> None:
        self._loop = IoLoop(name="net-io", registry=self.registry)
        self._loop.start()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.worker_threads,
            thread_name_prefix="net-worker",
        )
        self._listener = self._loop.listen(
            self.config.host,
            self.config.port,
            self._on_accept,
            idle_timeout_s=self.config.keepalive_idle_s,
        )

    def _on_stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, then close.

        Order matters: listener first (no new connections), then wait
        for admitted requests (draining refusals carry ``Connection:
        close`` so their connections self-retire), then actively close
        idle keep-alives, and only then take down the pool and loop —
        every response flushes before its fd dies.
        """
        loop = self._loop
        if loop is None:
            return
        self._draining.set()
        if self._listener is not None:
            self._listener.close()
        deadline = Deadline.after(self.config.drain_deadline_s)
        await_condition(
            lambda: self._inflight.value == 0,
            timeout_s=max(deadline.remaining(), 0.0),
        )

        def _close_idle() -> None:
            for conn in loop.connections():
                if (
                    not getattr(conn, "busy", False)
                    and not getattr(conn, "queue", None)
                    and not conn.pending_out_bytes()
                ):
                    loop._close_connection(conn, "local")

        loop.run_on_loop(_close_idle)
        await_condition(
            lambda: self._connections.value == 0,
            timeout_s=max(
                deadline.remaining(), self.config.keepalive_idle_s + 0.5
            ),
        )
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        loop.stop()
        self._stop_event.set()
        self._join_workers()

    # -- signal-initiated drain -----------------------------------------------

    def install_signal_handlers(
        self, signals: tuple[int, ...] = (signal.SIGTERM,)
    ) -> None:
        """Route process signals into the graceful drain (SIGTERM by default).

        This is the supervisor contract: an orchestrator (systemd,
        Kubernetes) sends SIGTERM and expects the listener to stop
        accepting while admitted requests run to completion — exactly
        what :meth:`stop` already does. The handler fires on the main
        thread, so it hands the blocking drain to a helper thread and
        returns immediately; in-flight dispatch is untouched.

        CPython only allows installing handlers from the main thread —
        call this from ``main()`` after :meth:`start`. Previous handlers
        are remembered and restored by :meth:`uninstall_signal_handlers`.
        """
        for signum in signals:
            self._previous_handlers[signum] = signal.signal(
                signum, self._handle_signal
            )

    def uninstall_signal_handlers(self) -> None:
        """Restore whatever handlers were in place before installation."""
        for signum, previous in self._previous_handlers.items():
            try:
                signal.signal(signum, previous)  # type: ignore[arg-type]
            except ValueError:
                pass  # not on the main thread; the process is exiting anyway
        self._previous_handlers.clear()

    def _handle_signal(self, signum: int, frame) -> None:
        self._signal_drains += 1
        self._draining.set()  # healthz flips before the drain thread runs
        threading.Thread(
            target=self.stop, name="net-signal-drain", daemon=True
        ).start()

    @property
    def signal_drains(self) -> int:
        """How many times a signal initiated the drain (0 or 1 normally)."""
        return self._signal_drains

    @property
    def port(self) -> int:
        if self._listener is None:
            raise LifecycleError(f"{self.name}: not started, no bound port")
        return self._listener.port

    @property
    def address(self) -> tuple[str, int]:
        return (self.config.host, self.port)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def health(self) -> dict[str, object]:
        record = super().health()
        record["draining"] = self.draining
        record["inflight"] = self._inflight.value
        record["open_connections"] = self._connections.value
        if self._listener is not None:
            record["address"] = list(self.address)
        return record

    # -- connection plumbing (loop thread) -------------------------------------

    def _on_accept(self, conn: Connection) -> None:
        self._connections.inc()
        conn.parser = HttpRequestParser(  # type: ignore[attr-defined]
            max_body_bytes=self.config.max_body_bytes
        )
        conn.queue = deque()  # type: ignore[attr-defined]
        conn.busy = False  # type: ignore[attr-defined]
        conn.on_data = self._on_data
        conn.on_close = self._on_conn_close

    def _on_conn_close(self, conn: Connection, reason: str) -> None:
        self._connections.dec()
        if reason == "idle":
            self.connections_reaped.inc()

    def _on_data(self, conn: Connection, chunk: bytes) -> None:
        try:
            requests = conn.parser.feed(chunk)  # type: ignore[attr-defined]
        except Exception as exc:  # noqa: BLE001 - protocol violation
            # the stream cannot be resynchronized: envelope, then close
            self.requests.inc()
            status, payload = encode_error(exc)
            self.registry.counter(
                "net_responses_total", status=str(status)
            ).inc()
            conn.send(
                serialize_response(
                    status, dump_json(payload), JSON_CONTENT_TYPE, close=True
                )
            )
            conn.close_when_drained()
            return
        if requests:
            conn.queue.extend(requests)  # type: ignore[attr-defined]
            self._pump(conn)

    def _pump(self, conn: Connection) -> None:
        """Start the next queued request unless one is already running."""
        if conn.closed or conn.busy or not conn.queue:  # type: ignore[attr-defined]
            return
        request = conn.queue.popleft()  # type: ignore[attr-defined]
        conn.busy = True  # type: ignore[attr-defined]
        conn.reap_exempt = True  # never idle-reap mid-request
        pool = self._pool
        if pool is None:  # racing shutdown
            conn.close("shutdown")
            return
        pool.submit(self._work, conn, request)

    def _work(self, conn: Connection, request: HttpRequest) -> None:
        """Pool thread: run the request path, ship the response."""
        exchange = _Exchange(request)
        try:
            self._handle(exchange)
        except Exception as exc:  # noqa: BLE001 - belt and braces
            status, payload = encode_error(exc)
            exchange.response_bytes = serialize_response(
                status, dump_json(payload), JSON_CONTENT_TYPE, close=True
            )
            exchange.close_connection = True
        conn.send(exchange.response_bytes)
        if exchange.close_connection:
            conn.close_when_drained()
            return
        loop = self._loop

        def _request_done() -> None:
            conn.busy = False  # type: ignore[attr-defined]
            conn.reap_exempt = False
            conn.touch()
            self._pump(conn)

        if loop is not None:
            loop.call_soon(_request_done)

    # -- request path ---------------------------------------------------------

    def _handle(self, exchange: _Exchange) -> None:
        self.requests.inc()
        route = "unmatched"
        start = time.monotonic()
        status = 500
        try:
            route, status = self._route(exchange, exchange.method)
        except Exception as exc:  # noqa: BLE001 - every failure is an envelope
            status, payload = encode_error(exc)
            self._respond(exchange, status, payload)
        finally:
            self.registry.histogram(
                "net_request_latency_seconds", route=route
            ).record(time.monotonic() - start)
            self.registry.counter(
                "net_responses_total", status=str(status)
            ).inc()

    def _route(self, exchange: _Exchange, method: str) -> tuple[str, int]:
        """Match + dispatch; returns ``(route_label, http_status)``."""
        path = exchange.path.split("?", 1)[0].rstrip("/")
        query = self._query(exchange)
        if not path.startswith(API_PREFIX + "/"):
            return "unmatched", self._respond(
                exchange,
                *protocol_error(
                    "unknown_route", f"no route for {path!r}", 404
                ),
            )
        parts = path[len(API_PREFIX) + 1 :].split("/")

        # unauthenticated liveness first: load balancers probe it
        if parts == ["healthz"] and method == "GET":
            return "healthz", self._respond(
                exchange,
                200,
                {
                    "status": "draining" if self.draining else "ok",
                    "health": self.health(),
                },
            )

        tenant = self._authenticate(exchange)

        if parts == ["metrics"] and method == "GET":
            return "metrics", self._serve_metrics(exchange)

        priority = Priority.parse(exchange.headers.get(PRIORITY_HEADER))
        deadline = parse_deadline(exchange.headers) or Deadline.after(
            self.config.default_deadline_s
        )

        if self.draining:
            # a kept-alive connection racing the drain: refuse retryably,
            # and close so the client reconnects elsewhere
            status, payload = encode_error(
                LifecycleError("server is draining; retry another replica")
            )
            return "draining", self._respond(
                exchange, status, payload, close=True
            )

        admission = self.admission.try_admit(tenant, priority)
        if not admission.admitted:
            exc: Exception = (
                ThrottledError(admission.reason)
                if admission.verdict.value == "throttle"
                else OverloadedError(admission.reason)
            )
            status, payload = encode_error(
                exc, retry_after_s=admission.retry_after_s
            )
            return "shed", self._respond(
                exchange,
                status,
                payload,
                extra_headers={
                    RETRY_AFTER_HEADER: f"{admission.retry_after_s:.3f}"
                },
            )

        try:
            result = self._dispatch(
                exchange, method, parts, query, deadline, priority
            )
            self.completed.inc()
            return result
        except Exception:
            self.completed.inc()  # an error envelope is still a response
            raise
        finally:
            self.admission.release()

    def _dispatch(
        self,
        exchange: _Exchange,
        method: str,
        parts: list[str],
        query: dict[str, str],
        deadline: Deadline,
        priority: Priority,
    ) -> tuple[str, int]:
        self._inflight.inc()
        try:
            if parts[0] == "features" and len(parts) == 2 and method == "POST":
                return "features_batch", self._serve_features_batch(
                    exchange, parts[1], deadline
                )
            if parts[0] == "features" and len(parts) == 3 and method == "GET":
                return "features_get", self._serve_feature(
                    exchange, parts[1], parts[2], query, deadline
                )
            if parts[0] == "features" and len(parts) == 3 and method == "PUT":
                return "features_write", self._serve_write(
                    exchange, parts[1], parts[2]
                )
            if (
                parts[0] == "vectors"
                and len(parts) == 3
                and parts[2] == "search"
                and method == "POST"
            ):
                return "vector_search", self._serve_vector_search(
                    exchange, parts[1], deadline
                )
            known_prefix = parts[0] in ("features", "vectors", "metrics", "healthz")
            if known_prefix:
                return "unmatched", self._respond(
                    exchange,
                    *protocol_error(
                        "method_not_allowed",
                        f"{method} not allowed on {exchange.path!r}",
                        405,
                    ),
                )
            return "unmatched", self._respond(
                exchange,
                *protocol_error(
                    "unknown_route", f"no route for {exchange.path!r}", 404
                ),
            )
        finally:
            self._inflight.dec()

    # -- endpoints ------------------------------------------------------------

    def _serve_feature(
        self,
        exchange: _Exchange,
        namespace: str,
        raw_id: str,
        query: dict[str, str],
        deadline: Deadline,
    ) -> int:
        entity_id = self._parse_entity_id(raw_id)
        policy = self._parse_policy(query.get("policy"))
        values = self.gateway.get_features(
            namespace,
            entity_id,
            policy=policy,
            deadline_s=max(deadline.remaining(), 0.0),
        )
        return self._respond(
            exchange,
            200,
            {"namespace": namespace, "entity_id": entity_id, "features": values},
        )

    def _serve_features_batch(
        self, exchange: _Exchange, namespace: str, deadline: Deadline
    ) -> int:
        body = self._read_body(exchange)
        entity_ids = body.get("entity_ids")
        if not isinstance(entity_ids, list):
            raise ValidationError(
                "POST /v1/features/{ns} body needs an 'entity_ids' list"
            )
        policy = self._parse_policy(body.get("policy"))
        values = self.gateway.get_features_batch(
            namespace,
            [self._parse_entity_id(e) for e in entity_ids],
            policy=policy,
            deadline_s=max(deadline.remaining(), 0.0),
        )
        return self._respond(
            exchange, 200, {"namespace": namespace, "features": values}
        )

    def _serve_write(
        self, exchange: _Exchange, namespace: str, raw_id: str
    ) -> int:
        body = self._read_body(exchange)
        values = body.get("values")
        if not isinstance(values, dict):
            raise ValidationError(
                "PUT /v1/features/{ns}/{id} body needs a 'values' object"
            )
        entity_id = self._parse_entity_id(raw_id)
        event_time = body.get("event_time")
        self.gateway.write_features(
            namespace,
            entity_id,
            values,
            event_time=float(event_time) if event_time is not None else time.time(),
        )
        return self._respond(
            exchange, 200, {"namespace": namespace, "entity_id": entity_id, "written": True}
        )

    def _serve_vector_search(
        self, exchange: _Exchange, name: str, deadline: Deadline
    ) -> int:
        body = self._read_body(exchange)
        query_vector = body.get("query")
        if not isinstance(query_vector, list) or not query_vector:
            raise ValidationError(
                "POST /v1/vectors/{name}/search body needs a non-empty "
                "'query' list"
            )
        k = int(body.get("k", 10))
        version = body.get("version")
        result = self.gateway.search_neighbors(
            name,
            [float(v) for v in query_vector],
            k=k,
            version=int(version) if version is not None else None,
            deadline_s=max(deadline.remaining(), 0.0),
        )
        return self._respond(
            exchange, 200, {"name": name, **search_result_payload(result)}
        )

    def _serve_metrics(self, exchange: _Exchange) -> int:
        accept = exchange.headers.get("Accept", "") or ""
        if JSON_CONTENT_TYPE in accept:
            body = self.registry.to_json(indent=2).encode("utf-8")
            return self._respond_raw(exchange, 200, body, JSON_CONTENT_TYPE)
        body = self.registry.to_prometheus().encode("utf-8")
        return self._respond_raw(exchange, 200, body, PROMETHEUS_CONTENT_TYPE)

    # -- request plumbing -----------------------------------------------------

    def _authenticate(self, exchange: _Exchange) -> str:
        """Token check (when configured) and tenant resolution."""
        tokens = self.config.auth_tokens
        if tokens:
            token = bearer_token(exchange.headers)
            if token is None:
                raise AuthError("missing bearer token")
            tenant = tokens.get(token)
            if tenant is None:
                raise AuthError("unrecognized bearer token")
            return tenant
        return exchange.headers.get(TENANT_HEADER) or "anonymous"

    @staticmethod
    def _query(exchange: _Exchange) -> dict[str, str]:
        if "?" not in exchange.path:
            return {}
        out: dict[str, str] = {}
        for pair in exchange.path.split("?", 1)[1].split("&"):
            if pair:
                key, __, value = pair.partition("=")
                out[key] = value
        return out

    @staticmethod
    def _parse_entity_id(raw) -> int:
        try:
            return int(raw)
        except (TypeError, ValueError):
            raise ValidationError(
                f"entity id must be an integer ({raw!r})"
            ) from None

    @staticmethod
    def _parse_policy(raw) -> FreshnessPolicy:
        if raw is None or raw == "":
            return FreshnessPolicy.SERVE_ANYWAY
        try:
            return FreshnessPolicy(str(raw))
        except ValueError:
            raise ValidationError(
                f"unknown freshness policy {raw!r}; allowed "
                f"{sorted(p.value for p in FreshnessPolicy)}"
            ) from None

    def _read_body(self, exchange: _Exchange) -> dict:
        # size was enforced at header-parse time (413 before buffering);
        # here the bytes are already bounded
        return parse_json_body(exchange.body)

    def _respond(
        self,
        exchange: _Exchange,
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None = None,
        close: bool = False,
    ) -> int:
        return self._respond_raw(
            exchange,
            status,
            dump_json(payload),
            JSON_CONTENT_TYPE,
            extra_headers=extra_headers,
            close=close,
        )

    def _respond_raw(
        self,
        exchange: _Exchange,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: dict[str, str] | None = None,
        close: bool = False,
    ) -> int:
        if close or self.draining:
            exchange.close_connection = True
        exchange.response_bytes = serialize_response(
            status,
            body,
            content_type,
            extra_headers=extra_headers,
            close=exchange.close_connection,
        )
        return status

    # -- introspection --------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Operational state for the dashboard's network section."""
        responses = {
            labels["status"]: metric.value
            for name, labels, metric in self.registry.collect()
            if name == "net_responses_total"
        }
        latency = {
            labels["route"]: metric.summary()
            for name, labels, metric in self.registry.collect()
            if name == "net_request_latency_seconds"
        }
        return {
            "address": list(self.address) if self._listener else None,
            "draining": self.draining,
            "signal_drains": self._signal_drains,
            "requests": self.requests.value,
            "completed": self.completed.value,
            "inflight": self._inflight.value,
            "inflight_peak": self._inflight.peak,
            "open_connections": self._connections.value,
            "connections_reaped": self.connections_reaped.value,
            "responses_by_status": responses,
            "latency_by_route": latency,
            "admission": self.admission.snapshot(),
        }
