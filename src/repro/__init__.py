"""repro: an embedding-enhanced feature store.

A complete, laptop-scale reproduction of the system envisioned in
"Managing ML Pipelines: Feature Stores and the Coming Wave of Embedding
Ecosystems" (Orr, Sanyal, Ling, Goel, Leszczynski — VLDB 2021).

The library has two centers of gravity:

* :class:`repro.FeatureStore` — the classic tabular feature store: a
  versioned registry of published feature views, a dual offline/online
  datastore, cadence-driven materialization, point-in-time-correct training
  sets, online serving with freshness contracts, and quality/drift/skew
  monitoring.
* :class:`repro.EmbeddingStore` — embeddings as first-class citizens:
  versioning, provenance chains, per-version quality metrics, vector search
  (brute/LSH/IVF/HNSW), model/embedding compatibility enforcement, and
  patching tools that fix tail-entity rows once for every downstream
  consumer.

See README.md for a quickstart and DESIGN.md / EXPERIMENTS.md for the
paper-reproduction map.
"""

from repro.bus import (
    BusRecord,
    Consumer,
    FsyncConfig,
    FsyncPolicy,
    Producer,
    SegmentLog,
)
from repro.clock import SimClock, WallClock
from repro.core import (
    ColumnRef,
    EmbeddingStore,
    EmbeddingVersion,
    EntityDef,
    Feature,
    FeatureRegistry,
    FeatureSetSpec,
    FeatureStore,
    FeatureView,
    MaterializationResult,
    Provenance,
    RowTransform,
    TrainingSet,
    WindowAggregate,
)
from repro.embeddings import EmbeddingMatrix
from repro.errors import (
    CompatibilityError,
    ReproError,
    StaleFeatureError,
    ValidationError,
)
from repro.runtime import (
    MetricsRegistry,
    PeriodicTask,
    Service,
    ServiceGroup,
    ServiceState,
)
from repro.serving import GatewayConfig, ServingGateway
from repro.vecserve import VectorService, VectorUpsertSink
from repro.storage import (
    FreshnessPolicy,
    ModelStore,
    OfflineStore,
    OnlineStore,
    TableSchema,
)

__version__ = "1.0.0"

__all__ = [
    "BusRecord",
    "ColumnRef",
    "CompatibilityError",
    "Consumer",
    "EmbeddingMatrix",
    "EmbeddingStore",
    "EmbeddingVersion",
    "EntityDef",
    "Feature",
    "FeatureRegistry",
    "FeatureSetSpec",
    "FeatureStore",
    "FeatureView",
    "FreshnessPolicy",
    "FsyncConfig",
    "FsyncPolicy",
    "GatewayConfig",
    "MaterializationResult",
    "MetricsRegistry",
    "ModelStore",
    "OfflineStore",
    "OnlineStore",
    "PeriodicTask",
    "Producer",
    "Provenance",
    "SegmentLog",
    "ReproError",
    "RowTransform",
    "Service",
    "ServiceGroup",
    "ServiceState",
    "ServingGateway",
    "SimClock",
    "StaleFeatureError",
    "TableSchema",
    "TrainingSet",
    "ValidationError",
    "VectorService",
    "VectorUpsertSink",
    "WallClock",
    "WindowAggregate",
    "__version__",
]
